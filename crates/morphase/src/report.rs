//! Human-readable reports of Morphase runs.

use std::fmt::Write as _;

use crate::maintain::MaintainStats;
use crate::pipeline::MorphaseRun;

/// Render a run as a small text report: stage timings, program sizes and
/// execution statistics. Used by the examples and the benchmark harness.
pub fn render_report(run: &MorphaseRun) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Morphase run ==");
    let _ = writeln!(
        out,
        "input clauses: {} (of which {} auto-generated from meta-data)",
        run.input_clauses, run.generated_clauses
    );
    let _ = writeln!(
        out,
        "snf: {} atoms -> {} atoms ({} fresh variables)",
        run.snf.atoms_before, run.snf.atoms_after, run.snf.fresh_vars
    );
    let _ = writeln!(
        out,
        "normal form: {} clauses, size {}",
        run.normal.len(),
        run.normal.size()
    );
    let _ = writeln!(out, "stage timings:");
    let t = &run.timings;
    for (name, duration) in [
        ("metadata", t.metadata),
        ("validate", t.validate),
        ("snf", t.snf),
        ("normalize", t.normalize),
        ("compile->CPL", t.compile),
        ("ingest", t.ingest),
        ("execute", t.execute),
        ("verify", t.verify),
    ] {
        let _ = writeln!(out, "  {name:<14} {:>10.3?}", duration);
    }
    let _ = writeln!(out, "  total compile  {:>10.3?}", t.compile_time());
    let _ = writeln!(out, "  total          {:>10.3?}", t.total());
    let _ = writeln!(
        out,
        "execution: {} rows scanned, {} rows produced, {} index probes, {} objects written",
        run.exec.rows_scanned,
        run.exec.rows_produced,
        run.exec.index_probes,
        run.exec.objects_written
    );
    let _ = writeln!(
        out,
        "peak operator output: {} rows (max_intermediate_rows)",
        run.exec.max_intermediate_rows
    );
    if run.exec.pushed_filters > 0 || run.exec.provider_rows_in > 0 {
        let _ = writeln!(
            out,
            "pushdown: {} filters pushed, provider rows {} -> {}",
            run.exec.pushed_filters, run.exec.provider_rows_in, run.exec.provider_rows_out
        );
    }
    if !run.columnar.is_empty() {
        let _ = writeln!(
            out,
            "columnar: {} pipelines, {} batch rows, {} chunks",
            run.columnar.pipelines, run.columnar.batch_rows, run.columnar.chunks
        );
    }
    if !run.shard_stats.is_empty() {
        let _ = writeln!(
            out,
            "parallel shards ({} worker threads, per-shard share of the parallel operators):",
            run.threads
        );
        for (shard, stats) in run.shard_stats.iter().enumerate() {
            let _ = writeln!(
                out,
                "  shard {shard}: {} rows, {} probes, {} cache hits",
                stats.rows_produced, stats.index_probes, stats.probe_cache_hits
            );
        }
    }
    if !run.query_stats.is_empty() {
        let stages = run.query_stats.iter().map(|q| q.stage).max().unwrap_or(0) + 1;
        let _ = writeln!(
            out,
            "query schedule ({stages} stage(s); per-query eval/apply):"
        );
        for q in &run.query_stats {
            let overlap = if q.overlapped { ", overlapped" } else { "" };
            let _ = writeln!(
                out,
                "  [stage {}] {}: {} rows, eval {:.3?}, apply {:.3?}{overlap}",
                q.stage, q.query, q.rows_output, q.eval, q.apply
            );
        }
    }
    let estimated: u64 = run.estimated_rows.iter().sum();
    let _ = writeln!(
        out,
        "planner estimate: {} output rows (actual {})",
        estimated, run.exec.rows_output
    );
    if !run.join_stats.is_empty() {
        let _ = writeln!(out, "join estimates (estimated -> actual rows):");
        for join in &run.join_stats {
            let _ = writeln!(
                out,
                "  [{}] {}: est {} actual {} (error {:.1}x)",
                join.query,
                join.kind,
                join.estimated,
                join.actual,
                join.error_ratio()
            );
        }
    }
    if let Some(d) = &run.durability {
        let reset = if d.reset { ", journal reset" } else { "" };
        let torn = if d.recovered_torn_tail {
            ", torn tail discarded"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "durability: resumed at query {} ({} skipped, {} journaled{reset}{torn})",
            d.completed_before, d.skipped, d.journaled
        );
    }
    let _ = writeln!(out, "target: {} objects", run.target.len());
    out
}

/// Render cumulative maintenance statistics as a small text report. Used by
/// the E11 benchmark harness and the soak suites.
pub fn render_maintenance_report(stats: &MaintainStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Materialized pipeline ==");
    let _ = writeln!(
        out,
        "batches: {} ({} in-place, {} rebuilds, {} full re-runs)",
        stats.batches, stats.inplace_batches, stats.rebuild_batches, stats.full_reruns
    );
    let _ = writeln!(
        out,
        "rows: {} swept, {} replayed; {} objects repaired",
        stats.rows_removed, stats.rows_added, stats.objects_repaired
    );
    if stats.constraints_checked + stats.constraints_skipped + stats.rejected_batches > 0 {
        let _ = writeln!(
            out,
            "constraints: {} checked, {} skipped, {} probes over {} objects; {} violations, {} batches rejected",
            stats.constraints_checked,
            stats.constraints_skipped,
            stats.constraint_probes,
            stats.constraint_objects,
            stats.constraint_violations,
            stats.rejected_batches
        );
    }
    let _ = writeln!(
        out,
        "delta execution: {} rows scanned, {} rows produced, {} restricted scans",
        stats.delta_exec.rows_scanned,
        stats.delta_exec.rows_produced,
        stats.delta_exec.restricted_scans
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{JoinStat, Morphase};
    use workloads::cities::{generate_euro, CitiesWorkload};

    #[test]
    fn report_contains_the_key_metrics() {
        let w = CitiesWorkload::new();
        let source = generate_euro(2, 2, 1);
        let run = Morphase::new()
            .transform(&w.euro_program(), &[&source][..])
            .unwrap();
        let report = render_report(&run);
        assert!(report.contains("Morphase run"));
        assert!(report.contains("normal form:"));
        assert!(report.contains("total compile"));
        assert!(report.contains("index probes"));
        assert!(report.contains("objects written"));
        assert!(report.contains("max_intermediate_rows"));
        assert!(report.contains("planner estimate:"));
    }

    /// Pins the per-join estimate-vs-actual report format, so regressions in
    /// estimate quality stay visible in test output (and log scrapers keep
    /// working). The exact line shape is part of the contract.
    #[test]
    fn report_pins_the_join_estimate_format() {
        let w = CitiesWorkload::new();
        let source = generate_euro(2, 2, 1);
        let mut run = Morphase::new()
            .transform(&w.euro_program(), &[&source][..])
            .unwrap();
        // A real execution traced at least one join with a sane estimate.
        assert!(!run.join_stats.is_empty(), "no joins were traced");
        // Pin the exact rendering on fixed values.
        run.join_stats = vec![
            JoinStat {
                query: "T2".to_string(),
                kind: "HashJoin".to_string(),
                estimated: 10,
                actual: 40,
            },
            JoinStat {
                query: "T3".to_string(),
                kind: "NestedLoopJoin".to_string(),
                estimated: 7,
                actual: 7,
            },
        ];
        let report = render_report(&run);
        assert!(report.contains("join estimates (estimated -> actual rows):"));
        assert!(report.contains("  [T2] HashJoin: est 10 actual 40 (error 4.0x)"));
        assert!(report.contains("  [T3] NestedLoopJoin: est 7 actual 7 (error 1.0x)"));
    }

    /// Pins the per-shard report format: a parallel run surfaces each
    /// worker's share of the partitioned operators; a sequential run prints
    /// no shard section at all.
    #[test]
    fn report_surfaces_per_shard_stats_for_parallel_runs() {
        use cpl::exec::ExecStats;
        let w = CitiesWorkload::new();
        let source = generate_euro(2, 2, 1);
        let mut run = Morphase::new()
            .transform(&w.euro_program(), &[&source][..])
            .unwrap();
        // Sequential (or below-threshold) runs have no shard breakdown.
        run.shard_stats = Vec::new();
        assert!(!render_report(&run).contains("parallel shards"));
        // Pin the exact rendering on fixed values.
        run.threads = 2;
        run.shard_stats = vec![
            ExecStats {
                rows_produced: 10,
                index_probes: 3,
                probe_cache_hits: 2,
                ..ExecStats::default()
            },
            ExecStats {
                rows_produced: 7,
                index_probes: 1,
                probe_cache_hits: 0,
                ..ExecStats::default()
            },
        ];
        let report = render_report(&run);
        assert!(report.contains(
            "parallel shards (2 worker threads, per-shard share of the parallel operators):"
        ));
        assert!(report.contains("  shard 0: 10 rows, 3 probes, 2 cache hits"));
        assert!(report.contains("  shard 1: 7 rows, 1 probes, 0 cache hits"));
    }

    /// Pins the columnar-executor report line: a run whose plans took the
    /// batch-at-a-time path surfaces how much work it covered; a run with
    /// the columnar path disabled (or no qualifying plan) prints no line.
    #[test]
    fn report_pins_the_columnar_format() {
        use cpl::ColumnarStats;
        let w = CitiesWorkload::new();
        let source = generate_euro(2, 2, 1);
        let mut run = Morphase::new()
            .transform(&w.euro_program(), &[&source][..])
            .unwrap();
        run.columnar = ColumnarStats::default();
        assert!(!render_report(&run).contains("columnar:"));
        run.columnar = ColumnarStats {
            pipelines: 3,
            batch_rows: 4096,
            chunks: 8,
        };
        assert!(render_report(&run).contains("columnar: 3 pipelines, 4096 batch rows, 8 chunks"));
    }

    /// Pins the pushdown report line: a federated run whose planning pushed
    /// filters into backend providers surfaces the predicate count and the
    /// provider row accounting; a plain (or pushdown-off, provider-free) run
    /// prints no line.
    #[test]
    fn report_pins_the_pushdown_format() {
        let w = CitiesWorkload::new();
        let source = generate_euro(2, 2, 1);
        let mut run = Morphase::new()
            .transform(&w.euro_program(), &[&source][..])
            .unwrap();
        assert_eq!(run.exec.pushed_filters, 0);
        assert!(!render_report(&run).contains("pushdown:"));
        // Pin the exact rendering on fixed values.
        run.exec.pushed_filters = 3;
        run.exec.provider_rows_in = 50_000;
        run.exec.provider_rows_out = 1_200;
        assert!(
            render_report(&run).contains("pushdown: 3 filters pushed, provider rows 50000 -> 1200")
        );
        // A pushdown-off federated run still accounts provider rows.
        run.exec.pushed_filters = 0;
        run.exec.provider_rows_in = 50_000;
        run.exec.provider_rows_out = 50_000;
        assert!(render_report(&run)
            .contains("pushdown: 0 filters pushed, provider rows 50000 -> 50000"));
    }

    /// Pins the per-query schedule/timing breakdown format: stage index,
    /// rows, eval/apply durations and the overlap marker. The exact line
    /// shape is part of the contract, like the join-estimate section.
    #[test]
    fn report_pins_the_per_query_timing_format() {
        use crate::pipeline::QueryStat;
        use std::time::Duration;
        let w = CitiesWorkload::new();
        let source = generate_euro(2, 2, 1);
        let mut run = Morphase::new()
            .transform(&w.euro_program(), &[&source][..])
            .unwrap();
        // A real execution produced one stat per compiled query, in order.
        assert_eq!(run.query_stats.len(), run.plans.len());
        // Pin the exact rendering on fixed values.
        run.query_stats = vec![
            QueryStat {
                query: "T1+C3".to_string(),
                stage: 0,
                overlapped: true,
                rows_output: 40,
                eval: Duration::from_micros(1200),
                apply: Duration::from_micros(300),
            },
            QueryStat {
                query: "T2".to_string(),
                stage: 1,
                overlapped: false,
                rows_output: 7,
                eval: Duration::from_micros(450),
                apply: Duration::ZERO,
            },
        ];
        let report = render_report(&run);
        assert!(report.contains("query schedule (2 stage(s); per-query eval/apply):"));
        assert!(report
            .contains("  [stage 0] T1+C3: 40 rows, eval 1.200ms, apply 300.000µs, overlapped"));
        assert!(report.contains("  [stage 1] T2: 7 rows, eval 450.000µs, apply 0.000ns"));
        // Compile-only runs print no schedule section.
        run.query_stats = Vec::new();
        assert!(!render_report(&run).contains("query schedule"));
    }

    /// Pins the durability report line: a durable run surfaces where it
    /// resumed and what it journalled; a plain run prints no such line.
    #[test]
    fn report_pins_the_durability_format() {
        use crate::pipeline::DurabilityStats;
        let w = CitiesWorkload::new();
        let source = generate_euro(2, 2, 1);
        let mut run = Morphase::new()
            .transform(&w.euro_program(), &[&source][..])
            .unwrap();
        assert!(run.durability.is_none());
        assert!(!render_report(&run).contains("durability:"));
        run.durability = Some(DurabilityStats {
            resumed: true,
            completed_before: 2,
            skipped: 2,
            journaled: 3,
            reset: false,
            recovered_torn_tail: true,
        });
        let report = render_report(&run);
        assert!(report.contains(
            "durability: resumed at query 2 (2 skipped, 3 journaled, torn tail discarded)"
        ));
        run.durability = Some(DurabilityStats {
            reset: true,
            ..DurabilityStats::default()
        });
        assert!(render_report(&run)
            .contains("durability: resumed at query 0 (0 skipped, 0 journaled, journal reset)"));
    }

    /// Pins the maintenance-report format, like the other report sections.
    #[test]
    fn report_pins_the_maintenance_format() {
        use crate::maintain::MaintainStats;
        use cpl::exec::ExecStats;
        let stats = MaintainStats {
            batches: 12,
            inplace_batches: 9,
            rebuild_batches: 2,
            full_reruns: 1,
            rows_removed: 4,
            rows_added: 31,
            objects_repaired: 27,
            delta_exec: ExecStats {
                rows_scanned: 500,
                rows_produced: 120,
                restricted_scans: 18,
                ..ExecStats::default()
            },
            ..MaintainStats::default()
        };
        let report = render_maintenance_report(&stats);
        assert!(report.contains("== Materialized pipeline =="));
        assert!(report.contains("batches: 12 (9 in-place, 2 rebuilds, 1 full re-runs)"));
        assert!(report.contains("rows: 4 swept, 31 replayed; 27 objects repaired"));
        // No constraint checking ran: the constraint line is absent.
        assert!(!report.contains("constraints:"));
        assert!(report
            .contains("delta execution: 500 rows scanned, 120 rows produced, 18 restricted scans"));
    }

    /// Pins the constraint line of the maintenance report: present exactly
    /// when per-batch constraint checking did any work.
    #[test]
    fn report_pins_the_constraint_line() {
        use crate::maintain::MaintainStats;
        let stats = MaintainStats {
            batches: 5,
            constraints_checked: 7,
            constraints_skipped: 8,
            constraint_objects: 90,
            constraint_probes: 40,
            constraint_violations: 2,
            rejected_batches: 1,
            ..MaintainStats::default()
        };
        let report = render_maintenance_report(&stats);
        assert!(report.contains(
            "constraints: 7 checked, 8 skipped, 40 probes over 90 objects; 2 violations, 1 batches rejected"
        ));
    }

    #[test]
    fn join_stat_error_ratio_is_symmetric_and_clamped() {
        let over = JoinStat {
            query: "q".into(),
            kind: "HashJoin".into(),
            estimated: 100,
            actual: 25,
        };
        let under = JoinStat {
            query: "q".into(),
            kind: "HashJoin".into(),
            estimated: 25,
            actual: 100,
        };
        assert_eq!(over.error_ratio(), 4.0);
        assert_eq!(under.error_ratio(), 4.0);
        let empty = JoinStat {
            query: "q".into(),
            kind: "HashJoin".into(),
            estimated: 0,
            actual: 0,
        };
        assert_eq!(empty.error_ratio(), 1.0);
    }
}
