//! Genome warehouse load: the ACe22DB → Chr22DB style transformation.
//!
//! Generates a synthetic ACeDB-like store of sparsely populated clone and
//! marker objects (standing in for ACe22DB at the Sanger Centre), imports it
//! through the tagged-tree adapter, runs the partial-clause WOL program that
//! loads it into the relational-style warehouse schema (standing in for
//! Chr22DB), and finally dumps one warehouse class back out as CSV — the
//! heterogeneous round trip the paper's trials performed between Sybase and
//! ACeDB.
//!
//! ```text
//! cargo run --example genome_warehouse
//! ```

use wol_repro::morphase::{render_report, Morphase};
use wol_repro::storage::{csv, relational};
use wol_repro::wol_model::ClassName;
use wol_repro::workloads::genome::{self, GenomeParams};

fn main() {
    let params = GenomeParams {
        clones: 15,
        markers: 40,
        density: 0.55,
        seed: 22,
    };
    let store = genome::generate_ace_store(&params);
    println!(
        "ACeDB-style source: {} objects ({} clones, {} markers)",
        store.len(),
        store.of_class("Clone").len(),
        store.of_class("Marker").len()
    );

    let source = genome::generate_source(&params);
    let program = genome::program();
    println!();
    println!("== Warehouse-load WOL program ==");
    println!("{}", genome::program_text());
    println!();

    let run = Morphase::new()
        .transform(&program, &[&source][..])
        .expect("warehouse load runs");
    println!("{}", render_report(&run));

    let markers_with_position = run
        .target
        .objects(&ClassName::new("MarkerD"))
        .filter(|(_, v)| v.project("position").is_some())
        .count();
    println!(
        "Warehouse: {} clones, {} markers ({} markers have a position — the rest are sparse)",
        run.target.extent_size(&ClassName::new("CloneD")),
        run.target.extent_size(&ClassName::new("MarkerD")),
        markers_with_position
    );

    // Dump the clone table back out as CSV (the relational side of the round trip).
    let table = relational::dump_class(&run.target, &ClassName::new("CloneD"), "name")
        .expect("clones dump to a flat table");
    println!();
    println!("== CloneD as CSV ==");
    print!("{}", csv::to_csv(&table));
}
