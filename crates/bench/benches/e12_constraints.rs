//! Experiment E12 — constraint-dominated traffic over the constrained
//! workload.
//!
//! PR 9 adds incremental, certificate-carrying constraint checking: a
//! mutation batch is validated against the source constraints by read-set
//! analysis (skip untouched constraints, probe maintained attribute indexes
//! for key constraints, seed-match the rest from the delta), escalating to a
//! canonical full re-check only when the delta looks dirty. Every check
//! emits a [`wol_engine::ConstraintCertificate`] that an independent
//! `recheck` replays against a snapshot. This bench reports:
//!
//! * the full `check_constraints` rescan cost (criterion-measured) — the
//!   baseline every incremental batch avoids;
//! * per-batch incremental `check_batch` latency (p50/p99) over a clean
//!   stream, and the summed incremental-vs-full ratio (the ≥5× release
//!   guard lives in `tests/perf_regression.rs`);
//! * an enforcing-pipeline phase: clean batches commit with certificates
//!   that round-trip the codec and replay via `recheck`, while an injected
//!   merge-key violation is rejected wholesale.
//!
//! Results land in `BENCH_e12.json`.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use morphase::{BatchConstraintMode, MaterializedPipeline, PipelineOptions};
use wol_engine::{check_batch, check_constraints, recheck, ConstraintCertificate, Databases};
use wol_lang::Clause;
use wol_model::Parallelism;
use workloads::constrained::{self, ConstrainedParams};

const BATCH_OPS: usize = 6;
const STREAM_BATCHES: usize = 120;
const PIPELINE_BATCHES: usize = 40;

fn percentile(sorted: &[Duration], pct: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[(sorted.len() * pct / 100).min(sorted.len() - 1)]
}

fn bench_constraints(c: &mut Criterion) {
    let params = ConstrainedParams::scaled(4); // 1600 users, 2400 profiles, 1600 accounts
    let source = constrained::generate_source(&params);
    let program = constrained::program();

    // The clause list under test is exactly what the standing pipeline
    // enforces: the augmented program's source constraints, in order.
    let seed_pipeline =
        MaterializedPipeline::new(&program, vec![source.clone()], PipelineOptions::default())
            .expect("constrained pipeline builds");
    let clauses: Vec<Clause> = seed_pipeline.constraints().to_vec();
    let clause_refs: Vec<&Clause> = clauses.iter().collect();
    drop(seed_pipeline);

    // Criterion baseline: the full rescan every incremental batch avoids.
    let mut group = c.benchmark_group("e12_constraints");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));
    {
        let insts = [&source];
        let dbs = Databases::new(&insts);
        group.bench_function("full_rescan", |b| {
            b.iter(|| check_constraints(&clause_refs, &dbs).expect("rescan runs"))
        });
    }
    group.finish();

    // Engine-level stream: per-batch incremental latencies measured by hand
    // (a criterion `b.iter` over `check_batch` would need a fixed delta and
    // miss the op mix), each compared against the rescan on the same state.
    let mut inst = source.clone();
    let mut gen = constrained::ConstrainedGen::new(&source, 42);
    let no_suspects = BTreeSet::new();
    let mut incr_lat: Vec<Duration> = Vec::with_capacity(STREAM_BATCHES);
    let mut full_total = Duration::ZERO;
    let mut probes = 0u64;
    let mut objects = 0u64;
    for _ in 0..STREAM_BATCHES {
        let batch = gen.next_batch(BATCH_OPS);
        let delta = inst.apply_batch(&batch).expect("batch applies");
        let insts = [&inst];
        let dbs = Databases::new(&insts);
        let start = Instant::now();
        let check = check_batch(
            &clause_refs,
            &dbs,
            &delta,
            Parallelism::new(1),
            &no_suspects,
        )
        .expect("incremental check runs");
        incr_lat.push(start.elapsed());
        assert!(check.violations.is_empty(), "clean traffic must stay clean");
        probes += check.certificate.probes();
        objects += check.certificate.checked();
        let start = Instant::now();
        let oracle = check_constraints(&clause_refs, &dbs).expect("rescan runs");
        full_total += start.elapsed();
        assert!(oracle.is_empty(), "the rescan oracle must agree");
    }
    let incr_total: Duration = incr_lat.iter().sum();
    incr_lat.sort();
    let incr_p50 = percentile(&incr_lat, 50);
    let incr_p99 = percentile(&incr_lat, 99);

    // Pipeline phase: an enforcing pipeline absorbs clean traffic — every
    // committed certificate round-trips the codec and replays against the
    // post-batch snapshot — and rejects an injected merge-key violation.
    let options = PipelineOptions {
        batch_constraints: BatchConstraintMode::Enforce,
        ..PipelineOptions::default()
    };
    let mut pipeline = MaterializedPipeline::new(&program, vec![source.clone()], options)
        .expect("enforcing pipeline builds");
    let mut pgen = constrained::ConstrainedGen::new(&source, 43);
    let mut rechecked = 0u64;
    for i in 0..PIPELINE_BATCHES {
        if i == PIPELINE_BATCHES / 2 {
            let err = pipeline.apply_batch(&pgen.violating_batch());
            assert!(err.is_err(), "the merge-key violation must be rejected");
            assert!(!pipeline.is_poisoned(), "rejections must not poison");
            continue;
        }
        let report = pipeline
            .apply_batch(&pgen.next_batch(BATCH_OPS))
            .expect("clean batch commits");
        let check = report.constraints.expect("enforce mode attaches a check");
        let bytes = check.certificate.encode();
        let decoded = ConstraintCertificate::decode(&bytes).expect("committed certificate decodes");
        assert_eq!(decoded, check.certificate);
        let refs: Vec<&Clause> = pipeline.constraints().iter().collect();
        let insts = [pipeline.source(0).expect("source 0 exists")];
        let dbs = Databases::new(&insts);
        recheck(&decoded, &refs, &dbs).expect("committed certificate replays");
        rechecked += 1;
    }
    let stats = pipeline.stats().clone();
    assert_eq!(stats.rejected_batches, 1);
    println!("{}", morphase::render_maintenance_report(&stats));

    bench::BenchJson::new()
        .str("bench", "e12_constraints")
        .str("workload", "e12_constrained_x4")
        .int("batch_ops", BATCH_OPS as u64)
        .int("stream_batches", STREAM_BATCHES as u64)
        .num("incremental_p50_secs", incr_p50.as_secs_f64())
        .num("incremental_p99_secs", incr_p99.as_secs_f64())
        .num("incremental_total_secs", incr_total.as_secs_f64())
        .num("full_rescan_total_secs", full_total.as_secs_f64())
        .num(
            "incremental_vs_full_ratio",
            full_total.as_secs_f64() / incr_total.as_secs_f64().max(1e-9),
        )
        .int("index_probes", probes)
        .int("objects_checked", objects)
        .int("pipeline_certificates_rechecked", rechecked)
        .int("pipeline_rejected_batches", stats.rejected_batches)
        .int("pipeline_constraint_probes", stats.constraint_probes)
        .stamped()
        .write("BENCH_e12.json");
}

criterion_group!(benches, bench_constraints);
criterion_main!(benches);
