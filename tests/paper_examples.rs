//! Tests that follow the paper's own examples clause by clause.

use wol_repro::wol_engine::{check_constraint, classify_constraint, ConstraintClass, Databases};
use wol_repro::wol_lang::{
    check_clause_types, check_range_restricted, parse_clause, parse_program, render_clause,
};
use wol_repro::wol_model::{ClassName, Value};
use wol_repro::workloads::cities::{generate_euro, CitiesWorkload};

/// Section 3.1: clause (C1) and the key clauses (C2), (C3) parse, type check
/// against the paper's schemas and are range-restricted.
#[test]
fn section_3_1_clauses_are_well_formed() {
    let w = CitiesWorkload::new();
    let schemas = [&w.us_schema, &w.euro_schema, &w.target_schema];
    let clauses = parse_program(
        "C1: X.state = Y <= Y in StateA, X = Y.capital;\n\
         C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;\n\
         C4: Y in CityE, Y.country = X, Y.is_capital = true <= X in CountryE;\n\
         C5: X = Y <= X in CityE, Y in CityE, X.country = Y.country, X.is_capital = true, Y.is_capital = true;",
    )
    .unwrap();
    for clause in &clauses {
        check_clause_types(clause, &schemas).unwrap_or_else(|e| panic!("{e}"));
        check_range_restricted(clause).unwrap();
        // Round-trip through the pretty printer.
        let reparsed = parse_clause(render_clause(clause).trim_end_matches(';')).unwrap();
        assert_eq!(clause, &reparsed);
    }
}

/// Section 3.1: the paper's examples of clauses that are *not* well formed.
#[test]
fn section_3_1_ill_formed_clauses_rejected() {
    let w = CitiesWorkload::new();
    let schemas = [&w.us_schema, &w.euro_schema, &w.target_schema];
    // Not range-restricted: "X.population < Y <= X in CityA".
    let unrestricted = parse_clause("X.population < Y <= X in CityA").unwrap();
    assert!(check_range_restricted(&unrestricted).is_err());
    // Not well-typed: X both an object of CityA and compared as an integer.
    let ill_typed = parse_clause("Z = Y.name <= X in CityA, Y in StateA, X < 3").unwrap();
    assert!(check_clause_types(&ill_typed, &schemas).is_err());
}

/// Section 3.1: constraints (C4)/(C5) — "each country has exactly one capital
/// city" — hold on well-formed instances and catch violations.
#[test]
fn constraints_c4_c5_detect_capital_anomalies() {
    let c4 = parse_clause("C4: Y in CityE, Y.country = X, Y.is_capital = true <= X in CountryE")
        .unwrap();
    let c5 = parse_clause(
        "C5: X = Y <= X in CityE, Y in CityE, X.country = Y.country, X.is_capital = true, Y.is_capital = true",
    )
    .unwrap();

    let good = generate_euro(4, 3, 1);
    let refs = [&good];
    let dbs = Databases::new(&refs);
    assert!(check_constraint(&c4, &dbs).unwrap().is_empty());
    assert!(check_constraint(&c5, &dbs).unwrap().is_empty());

    // Remove the capital flag from every city of one country: C4 is violated.
    let mut no_capital = generate_euro(2, 2, 1);
    let cities: Vec<_> = no_capital
        .objects(&ClassName::new("CityE"))
        .map(|(oid, _)| oid.clone())
        .collect();
    for city in cities {
        let mut value = no_capital.value(&city).unwrap().clone();
        if let Value::Record(ref mut fields) = value {
            fields.insert("is_capital".into(), Value::bool(false));
        }
        no_capital.update(&city, value).unwrap();
    }
    let refs = [&no_capital];
    let dbs = Databases::new(&refs);
    assert!(!check_constraint(&c4, &dbs).unwrap().is_empty());
}

/// Section 3.1: clause classification recognises key constraints (C2)/(C3),
/// source keys (C8) and existence constraints (C4).
#[test]
fn constraint_classification_matches_the_paper() {
    let c2 = parse_clause(
        "X = Mk_CityT(name = N, country = C) <= X in CityT, N = X.name, C = X.country",
    )
    .unwrap();
    let c3 = parse_clause("Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name").unwrap();
    let c8 = parse_clause("X = Y <= X in CountryE, Y in CountryE, X.name = Y.name").unwrap();
    let c4 =
        parse_clause("Y in CityE, Y.country = X, Y.is_capital = true <= X in CountryE").unwrap();
    assert!(matches!(
        classify_constraint(&c2),
        ConstraintClass::SkolemKey(_)
    ));
    assert!(matches!(
        classify_constraint(&c3),
        ConstraintClass::SkolemKey(_)
    ));
    assert!(matches!(
        classify_constraint(&c8),
        ConstraintClass::MergeKey { .. }
    ));
    assert!(matches!(
        classify_constraint(&c4),
        ConstraintClass::Existence { .. }
    ));
}

/// Section 2.2 / Example 2.3: surrogate keys identify countries by name and
/// cities by (name, country name).
#[test]
fn example_2_3_surrogate_keys() {
    let w = CitiesWorkload::new();
    let instance = generate_euro(3, 3, 5);
    w.euro_keys.check(&instance).unwrap();
    // Evaluate the city key of some city: it is a record of two strings.
    let city = instance
        .objects(&ClassName::new("CityE"))
        .map(|(oid, _)| oid.clone())
        .next()
        .unwrap();
    let key = w.euro_keys.eval(&city, &instance).unwrap();
    let record = key.as_record().unwrap();
    assert!(record.contains_key("name"));
    assert!(record.contains_key("country_name"));
    assert!(!key.contains_oid());
}

/// Section 4.1: constraints (C6)/(C7) style derivation — target constraints
/// and key clauses together determine derived objects without extra
/// transformation clauses (checked at the classification level: they are
/// target constraints, not transformation clauses).
#[test]
fn section_4_1_constraint_roles() {
    let w = CitiesWorkload::new();
    let program = w.euro_program();
    let roles: Vec<_> = program
        .clauses
        .iter()
        .map(|c| (c.label.clone().unwrap_or_default(), program.classify(c)))
        .collect();
    use wol_repro::wol_lang::program::ClauseRole;
    for (label, role) in roles {
        match label.as_str() {
            "T1" | "T2" | "T3" => assert_eq!(role, ClauseRole::Transformation, "{label}"),
            "C2" | "C3" => assert_eq!(role, ClauseRole::TargetConstraint, "{label}"),
            "C8" => assert_eq!(role, ClauseRole::SourceConstraint, "{label}"),
            other => panic!("unexpected clause label {other}"),
        }
    }
}
