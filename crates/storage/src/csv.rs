//! A minimal CSV-like import/export for flat classes.
//!
//! The paper's introduction motivates transformations partly by "uploading
//! certain file formats into a relational database". This module provides the
//! simplest such format: a header line of column names followed by
//! comma-separated rows, with values inferred as integers, booleans or
//! strings. It feeds the relational adapter rather than the model directly.

use wol_model::Value;

use crate::error::StorageError;
use crate::relational::{Column, Table, TableSchema};
use crate::Result;

/// Parse CSV text into a [`Table`]. The first column is used as the key
/// column. Column types are inferred from the first data row.
pub fn parse_csv(name: &str, text: &str) -> Result<Table> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| StorageError::Csv("empty input".to_string()))?;
    let names: Vec<&str> = header.split(',').map(str::trim).collect();
    if names.is_empty() || names.iter().any(|n| n.is_empty()) {
        return Err(StorageError::Csv("malformed header".to_string()));
    }
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for (line_no, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != names.len() {
            return Err(StorageError::Csv(format!(
                "line {}: expected {} fields, found {}",
                line_no + 2,
                names.len(),
                fields.len()
            )));
        }
        rows.push(fields.iter().map(|f| infer_value(f)).collect());
    }
    let columns = names
        .iter()
        .enumerate()
        .map(|(i, n)| match rows.first().map(|r| &r[i]) {
            Some(Value::Int(_)) => Column::int(*n),
            Some(Value::Bool(_)) => Column::bool(*n),
            _ => Column::str(*n),
        })
        .collect();
    let mut table = Table::new(TableSchema {
        name: name.to_string(),
        key_column: names[0].to_string(),
        columns,
    });
    for row in rows {
        table.push_row(row)?;
    }
    Ok(table)
}

/// Render a table as CSV text (header plus one line per row).
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<&str> = table
        .schema
        .columns
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in &table.rows {
        let fields: Vec<String> = row.iter().map(render_value).collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn infer_value(field: &str) -> Value {
    if let Ok(i) = field.parse::<i64>() {
        return Value::Int(i);
    }
    match field {
        "true" | "True" => Value::Bool(true),
        "false" | "False" => Value::Bool(false),
        other => Value::str(other),
    }
}

fn render_value(value: &Value) -> String {
    match value {
        Value::Str(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        other => wol_model::display::render_value(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::load_tables;
    use wol_model::ClassName;

    const CITIES: &str = "name,is_capital,population\nParis,true,2148000\nLyon,false,513000\n";

    #[test]
    fn parse_and_infer_types() {
        let table = parse_csv("CityCsv", CITIES).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.schema.key_column, "name");
        assert_eq!(table.rows[0][1], Value::Bool(true));
        assert_eq!(table.rows[0][2], Value::Int(2_148_000));
        assert_eq!(table.rows[1][0], Value::str("Lyon"));
    }

    #[test]
    fn round_trip_through_csv() {
        let table = parse_csv("CityCsv", CITIES).unwrap();
        let text = to_csv(&table);
        let reparsed = parse_csv("CityCsv", &text).unwrap();
        assert_eq!(table.rows, reparsed.rows);
    }

    #[test]
    fn csv_feeds_the_relational_adapter() {
        let table = parse_csv("CityCsv", CITIES).unwrap();
        let instance = load_tables(&[table], "csv_import").unwrap();
        assert_eq!(instance.extent_size(&ClassName::new("CityCsv")), 2);
        let paris = instance
            .find_by_field(&ClassName::new("CityCsv"), "name", &Value::str("Paris"))
            .unwrap();
        assert_eq!(
            instance.value(paris).unwrap().project("population"),
            Some(&Value::int(2_148_000))
        );
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(parse_csv("T", "").is_err());
        assert!(parse_csv("T", "a,b\n1\n").is_err());
        assert!(parse_csv("T", "a,,c\n1,2,3\n").is_err());
    }
}
