//! Database integration (Example 1.1): combine the US Cities-and-States
//! database (Figure 1) and the European Cities-and-Countries database
//! (Figure 2) into the single integrated schema of Figure 3.
//!
//! Each source is transformed by its own WOL program into the shared target;
//! because both programs key `CityT` objects by (name, place), the two target
//! fragments merge cleanly into one database through
//! [`Instance::merge_keyed`](wol_repro::wol_model::Instance::merge_keyed).
//! The example also checks the source constraints (C1), (C4), (C5) before
//! transforming — the paper's point that the transformation of capital cities
//! "is only well defined" given those constraints.
//!
//! ```text
//! cargo run --example cities_integration
//! ```

use wol_repro::morphase::Morphase;
use wol_repro::wol_engine::{check_constraints, Databases};
use wol_repro::wol_model::{display::render_instance, ClassName};
use wol_repro::workloads::cities::{generate_euro, CitiesWorkload};

fn main() {
    let workload = CitiesWorkload::new();

    // Sources.
    let euro = generate_euro(3, 3, 2026);
    let us = workload.small_us_instance();

    // Check the source constraints first (C4/C5 on the European side, C1 on
    // the US side).
    let euro_constraints =
        wol_repro::wol_lang::parse_program(CitiesWorkload::euro_constraints_text()).unwrap();
    let refs = [&euro];
    let dbs = Databases::new(&refs);
    let clause_refs: Vec<&wol_repro::wol_lang::Clause> = euro_constraints.iter().collect();
    let violations = check_constraints(&clause_refs, &dbs).unwrap();
    println!(
        "European source constraint violations: {}",
        violations.len()
    );

    let us_constraints =
        wol_repro::wol_lang::parse_program(CitiesWorkload::us_constraints_text()).unwrap();
    let refs = [&us];
    let dbs = Databases::new(&refs);
    let clause_refs: Vec<&wol_repro::wol_lang::Clause> = us_constraints.iter().collect();
    let violations = check_constraints(&clause_refs, &dbs).unwrap();
    println!("US source constraint violations: {}", violations.len());

    // Transform each source with its own program into the shared target schema.
    let euro_run = Morphase::new()
        .transform(&workload.euro_program(), &[&euro][..])
        .expect("European transformation runs");
    let us_run = Morphase::new()
        .transform(&workload.us_program(), &[&us][..])
        .expect("US transformation runs");

    // Combine the two target fragments into one integrated database. The two
    // transformations ran independently, so their identity spaces overlap
    // (both number CityT objects from 0); merging goes through the target
    // keys — both programs key CityT by (name, place) — so shared objects
    // unify and fresh ones are renumbered.
    let mut integrated = euro_run.target.clone();
    integrated
        .merge_keyed(&us_run.target, &workload.target_keys)
        .expect("the two fragments merge through the target keys");

    println!();
    println!("== Integrated target database ==");
    println!("{}", render_instance(&integrated));
    println!();
    println!(
        "CountryT: {}, StateT: {}, CityT: {}",
        integrated.extent_size(&ClassName::new("CountryT")),
        integrated.extent_size(&ClassName::new("StateT")),
        integrated.extent_size(&ClassName::new("CityT")),
    );
}
