//! Meta-data-driven constraint generation.
//!
//! "A large number of constraints, such as keys and other dependencies, can be
//! automatically generated from the meta-data associated with the source and
//! target databases ... Such constraints are time consuming and tedious to
//! program by hand." (Section 5, Figure 6.)
//!
//! Given a schema's [`KeySpec`], this module emits the corresponding WOL key
//! constraint clauses — the `X = Mk_C(...) <= X in C, ...` clauses the
//! normaliser consumes — and the merge-style key clauses
//! `X = Y <= X in C, Y in C, X.p = Y.p, ...` that the optimiser consumes for
//! source databases.

use wol_lang::ast::{Atom, Clause, SkolemArgs, Term};
use wol_model::{KeyExpr, KeySpec, Schema};

/// Generate Skolem-style key constraint clauses (target side) from a key
/// specification. Only path- and record-of-path keys are expressible as WOL
/// clauses; other key expressions are skipped.
pub fn generate_key_clauses(schema: &Schema, keys: &KeySpec) -> Vec<Clause> {
    let mut out = Vec::new();
    for class in keys.classes() {
        if !schema.has_class(class) {
            continue;
        }
        let Some(key) = keys.key_of(class) else {
            continue;
        };
        let object = Term::var("X");
        let mut body = vec![Atom::Member(object.clone(), class.clone())];
        let args = match key {
            KeyExpr::Path(path) => {
                let var = Term::var("K0");
                body.push(Atom::Eq(var.clone(), project_path(&object, path)));
                SkolemArgs::Positional(vec![var])
            }
            KeyExpr::Record(fields) => {
                let mut named = Vec::new();
                for (i, (label, sub)) in fields.iter().enumerate() {
                    let KeyExpr::Path(path) = sub else { continue };
                    let var = Term::var(format!("K{i}"));
                    body.push(Atom::Eq(var.clone(), project_path(&object, path)));
                    named.push((label.clone(), var));
                }
                if named.is_empty() {
                    continue;
                }
                SkolemArgs::Named(named)
            }
            KeyExpr::Const(_) => continue,
        };
        let head = vec![Atom::Eq(object, Term::Skolem(class.clone(), args))];
        out.push(Clause::new(head, body).with_label(format!("key_{class}")));
    }
    out
}

/// Generate merge-style key clauses (source side): `X = Y <= X in C, Y in C,
/// X.p = Y.p, ...` for every keyed class of the schema.
pub fn generate_merge_key_clauses(schema: &Schema, keys: &KeySpec) -> Vec<Clause> {
    let mut out = Vec::new();
    for class in keys.classes() {
        if !schema.has_class(class) {
            continue;
        }
        let Some(key) = keys.key_of(class) else {
            continue;
        };
        let paths: Vec<&wol_model::Path> = match key {
            KeyExpr::Path(p) => vec![p],
            KeyExpr::Record(fields) => fields
                .iter()
                .filter_map(|(_, sub)| match sub {
                    KeyExpr::Path(p) => Some(p),
                    _ => None,
                })
                .collect(),
            KeyExpr::Const(_) => continue,
        };
        if paths.is_empty() {
            continue;
        }
        let x = Term::var("X");
        let y = Term::var("Y");
        let mut body = vec![
            Atom::Member(x.clone(), class.clone()),
            Atom::Member(y.clone(), class.clone()),
        ];
        for path in paths {
            body.push(Atom::Eq(project_path(&x, path), project_path(&y, path)));
        }
        let head = vec![Atom::Eq(x, y)];
        out.push(Clause::new(head, body).with_label(format!("mergekey_{class}")));
    }
    out
}

fn project_path(base: &Term, path: &wol_model::Path) -> Term {
    path.segments()
        .iter()
        .fold(base.clone(), |t, seg| t.proj(seg.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_engine::{classify_constraint, ConstraintClass};
    use wol_model::{ClassName, Type};

    fn target_schema() -> Schema {
        Schema::new("target")
            .with_class("CountryT", Type::record([("name", Type::str())]))
            .with_class(
                "CityT",
                Type::record([("name", Type::str()), ("country", Type::class("CountryT"))]),
            )
    }

    #[test]
    fn generates_skolem_key_clauses_recognised_by_the_engine() {
        let keys = KeySpec::new()
            .with_key("CountryT", KeyExpr::path("name"))
            .with_key(
                "CityT",
                KeyExpr::record([
                    ("name", KeyExpr::path("name")),
                    ("country", KeyExpr::path("country")),
                ]),
            );
        let clauses = generate_key_clauses(&target_schema(), &keys);
        assert_eq!(clauses.len(), 2);
        for clause in &clauses {
            match classify_constraint(clause) {
                ConstraintClass::SkolemKey(key) => {
                    assert!(
                        key.class == ClassName::new("CountryT")
                            || key.class == ClassName::new("CityT")
                    );
                }
                other => panic!("expected a Skolem key constraint, got {other:?}"),
            }
        }
        // Rendered clauses look like the paper's (C2)/(C3).
        let rendered = wol_lang::render_program(&clauses);
        assert!(rendered.contains("Mk_CountryT"));
        assert!(rendered.contains("Mk_CityT"));
    }

    #[test]
    fn generates_merge_key_clauses_recognised_by_the_engine() {
        let keys = KeySpec::new().with_key("CountryT", KeyExpr::path("name"));
        let clauses = generate_merge_key_clauses(&target_schema(), &keys);
        assert_eq!(clauses.len(), 1);
        match classify_constraint(&clauses[0]) {
            ConstraintClass::MergeKey { class, paths } => {
                assert_eq!(class, ClassName::new("CountryT"));
                assert_eq!(paths, vec![wol_model::Path::parse("name")]);
            }
            other => panic!("expected a merge key, got {other:?}"),
        }
    }

    #[test]
    fn unknown_classes_and_const_keys_skipped() {
        let keys = KeySpec::new()
            .with_key("Nowhere", KeyExpr::path("name"))
            .with_key("CountryT", KeyExpr::Const(wol_model::Value::int(1)));
        assert!(generate_key_clauses(&target_schema(), &keys).is_empty());
        assert!(generate_merge_key_clauses(&target_schema(), &keys).is_empty());
    }

    #[test]
    fn generated_clauses_are_well_formed() {
        let keys = KeySpec::new().with_key(
            "CityT",
            KeyExpr::record([
                ("name", KeyExpr::path("name")),
                ("country", KeyExpr::path("country")),
            ]),
        );
        let schema = target_schema();
        for clause in generate_key_clauses(&schema, &keys) {
            wol_lang::check_clause_types(&clause, &[&schema]).unwrap();
            wol_lang::check_range_restricted(&clause).unwrap();
        }
    }
}
