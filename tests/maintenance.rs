//! Soak and durability suites for the standing [`MaterializedPipeline`]:
//! many concurrent readers against one maintainer over thousands of batches,
//! panic propagation, and crash/resume of the journalled source mid-stream.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use wol_repro::morphase::{
    DurableOptions, MaterializedPipeline, MorphaseError, PipelineOptions, PipelineService,
};
use wol_repro::storage::persist::{FaultPolicy, PipelineJournal};
use wol_repro::wol_model::{ClassName, Instance, MutationBatch, Value};
use wol_repro::workloads::genome::{self, GenomeParams};
use wol_repro::workloads::traffic::{TrafficGen, TrafficWeights};

/// A fresh scratch directory, unique across parallel tests in this process.
fn temp_dir(label: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "wol-maintenance-{label}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn genome_pipeline(params: &GenomeParams) -> MaterializedPipeline {
    MaterializedPipeline::new(
        &genome::program(),
        vec![genome::generate_source(params)],
        PipelineOptions::default(),
    )
    .expect("genome pipeline builds")
}

/// A deterministic stream: `in_place` batches of steady traffic followed by
/// `mixed` batches exercising every maintenance path (the mixed generator
/// continues from the in-place generator's shadow).
fn stream(
    source: &Instance,
    seed: u64,
    in_place: usize,
    mixed: usize,
    ops: usize,
) -> Vec<MutationBatch> {
    let mut batches = Vec::with_capacity(in_place + mixed);
    let mut steady = TrafficGen::new(source, seed, TrafficWeights::in_place());
    for _ in 0..in_place {
        batches.push(steady.next_batch(ops));
    }
    let mut spicy = TrafficGen::new(steady.shadow(), seed ^ 0x5eed, TrafficWeights::mixed());
    for _ in 0..mixed {
        batches.push(spicy.next_batch(ops));
    }
    batches
}

fn assert_matches_oracle(pipeline: &MaterializedPipeline, context: &str) {
    let oracle = pipeline.rerun_oracle().expect("oracle runs");
    if let Some(report) = pipeline.target().deep_eq_report(&oracle.target) {
        panic!("{context}: maintained target diverged from the oracle: {report}");
    }
}

/// The soak: four readers hammer snapshots (checking intra-snapshot
/// referential consistency on every read) while the maintainer absorbs
/// thousands of steady batches and a mixed tail with rebuild escalations.
/// The final target must be bit-identical to the same stream applied to a
/// plain single-threaded pipeline, and to a from-scratch re-run.
#[test]
fn soak_concurrent_readers_never_observe_torn_targets() {
    let params = GenomeParams::default();
    let source = genome::generate_source(&params);
    let (in_place, mixed) = if cfg!(debug_assertions) {
        (300, 30)
    } else {
        (2000, 120)
    };
    let batches = stream(&source, 99, in_place, mixed, 2);

    // Reference: the same stream through a plain pipeline.
    let mut reference = genome_pipeline(&params);
    for batch in &batches {
        reference.apply_batch(batch).expect("reference applies");
    }

    let service = PipelineService::start(genome_pipeline(&params));
    let stop = AtomicBool::new(false);
    let reads = AtomicUsize::new(0);
    let marker_d = ClassName::new("MarkerD");
    let clone_d = ClassName::new("CloneD");
    std::thread::scope(|scope| {
        let service = &service;
        let stop = &stop;
        let reads = &reads;
        let marker_d = &marker_d;
        let clone_d = &clone_d;
        let readers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let snap = service.snapshot();
                        // Intra-snapshot consistency: a marker's clone
                        // reference resolves inside the same snapshot. A
                        // torn read (marker published before its clone, or
                        // a half-swept removal) would dangle. Capped so the
                        // readers contend without starving the maintainer.
                        for oid in snap.extent(marker_d).take(128) {
                            if let Some(value) = snap.value(oid) {
                                if let Some(Value::Oid(clone)) = value.project("clone") {
                                    assert_eq!(clone.class(), clone_d);
                                    assert!(
                                        snap.contains(clone),
                                        "snapshot dangles: {oid} -> {clone}"
                                    );
                                }
                            }
                        }
                        reads.fetch_add(1, Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        for batch in &batches {
            service.apply(batch.clone()).expect("service applies");
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            reader.join().expect("reader never panics");
        }
    });
    assert!(
        reads.load(Ordering::Relaxed) > 0,
        "the readers never got a snapshot in"
    );
    let pipeline = service.shutdown().expect("clean shutdown");
    assert_eq!(pipeline.stats().batches, batches.len() as u64);
    assert!(
        pipeline.stats().rebuild_batches > 0,
        "the mixed tail must exercise the rebuild path"
    );
    assert_eq!(
        pipeline.stats(),
        reference.stats(),
        "the service must be a pure wrapper: identical maintenance stats"
    );
    if let Some(report) = pipeline.target().deep_eq_report(reference.target()) {
        panic!("service target diverged from the plain pipeline: {report}");
    }
    assert_matches_oracle(&pipeline, "soak final state");
}

/// A maintainer panic mid-stream surfaces loudly: queued and later requests
/// error instead of hanging, and shutdown re-raises the panic.
#[test]
fn soak_maintainer_panics_propagate_instead_of_hanging() {
    let params = GenomeParams::default();
    let source = genome::generate_source(&params);
    let service = PipelineService::start(genome_pipeline(&params));
    let mut gen = TrafficGen::new(&source, 5, TrafficWeights::in_place());
    for _ in 0..10 {
        service.apply(gen.next_batch(2)).expect("healthy applies");
    }
    service.inject_panic();
    assert!(
        service.apply(gen.next_batch(2)).is_err(),
        "applies after a maintainer panic must error, not hang"
    );
    let snapshot = service.snapshot();
    assert!(
        !snapshot.populated_classes().is_empty(),
        "the last published snapshot stays readable"
    );
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = service.shutdown();
    }));
    assert!(panicked.is_err(), "shutdown must re-raise the panic");
}

/// The durable maintainer commits one journal batch per applied mutation
/// batch: a WAL torn mid-record kills the stream, and reopening the
/// directory recovers exactly the committed prefix — the torn tail is
/// discarded — after which replaying the remaining batches lands on a
/// target bit-identical to an uncrashed run.
#[test]
fn durable_maintenance_recovers_the_committed_prefix_after_a_torn_write() {
    let params = GenomeParams::default();
    let program = genome::program();
    let source = genome::generate_source(&params);
    let batches = stream(&source, 41, 6, 4, 3);

    // Uncrashed reference over the full stream.
    let mut reference = genome_pipeline(&params);
    for batch in &batches {
        reference.apply_batch(batch).expect("reference applies");
    }

    // Calibrate a fault offset that lands inside a mid-stream record: the
    // WAL size after two committed batches, plus a few bytes.
    let probe_dir = temp_dir("probe");
    let mut probe = MaterializedPipeline::new_durable(
        &program,
        vec![genome::generate_source(&params)],
        PipelineOptions::default(),
        &DurableOptions::new(&probe_dir),
    )
    .expect("probe pipeline builds");
    for batch in &batches[..2] {
        probe.apply_batch(batch).expect("probe applies");
    }
    let offset = std::fs::metadata(probe_dir.join(PipelineJournal::WAL_FILE))
        .expect("probe WAL exists")
        .len()
        + 16;
    drop(probe);
    std::fs::remove_dir_all(&probe_dir).ok();

    // Crashing run: the third batch's journal record tears.
    let dir = temp_dir("crash");
    let mut crashing = MaterializedPipeline::new_durable(
        &program,
        vec![genome::generate_source(&params)],
        PipelineOptions::default(),
        &DurableOptions::new(&dir).with_fault(FaultPolicy::torn_at(offset)),
    )
    .expect("the fault lies beyond the initial dump");
    let mut applied = 0usize;
    let err = loop {
        match crashing.apply_batch(&batches[applied]) {
            Ok(_) => applied += 1,
            Err(e) => break e,
        }
    };
    assert!(
        matches!(err, MorphaseError::Durability(_)),
        "unexpected failure mode: {err}"
    );
    assert!(
        (1..batches.len()).contains(&applied),
        "the fault must strike mid-stream (applied {applied})"
    );
    assert!(
        crashing.is_poisoned(),
        "a torn journal poisons the pipeline"
    );
    assert!(
        crashing.apply_batch(&batches[applied]).is_err(),
        "a poisoned pipeline refuses further batches"
    );
    drop(crashing);

    // Resume: the committed prefix is recovered, the torn batch is not.
    let mut resumed = MaterializedPipeline::new_durable(
        &program,
        vec![genome::generate_source(&params)],
        PipelineOptions::default(),
        &DurableOptions::new(&dir),
    )
    .expect("recovery succeeds");
    assert_eq!(
        resumed.recovered_batches(),
        applied as u64,
        "exactly the committed batches are recovered"
    );
    for batch in &batches[applied..] {
        resumed.apply_batch(batch).expect("resumed applies");
    }
    if let Some(report) = resumed.target().deep_eq_report(reference.target()) {
        panic!("resumed target diverged from the uncrashed reference: {report}");
    }
    assert_matches_oracle(&resumed, "resumed stream");
    std::fs::remove_dir_all(&dir).ok();
}

/// Checkpointing folds the WAL into a compact snapshot without losing
/// progress: resuming after a checkpoint (plus further batches) recovers
/// everything, and the stream completes bit-identically.
#[test]
fn durable_checkpoint_preserves_progress_and_truncates_the_wal() {
    let params = GenomeParams::default();
    let program = genome::program();
    let source = genome::generate_source(&params);
    let batches = stream(&source, 77, 5, 3, 2);

    let mut reference = genome_pipeline(&params);
    for batch in &batches {
        reference.apply_batch(batch).expect("reference applies");
    }

    let dir = temp_dir("checkpoint");
    let mut durable = MaterializedPipeline::new_durable(
        &program,
        vec![genome::generate_source(&params)],
        PipelineOptions::default(),
        &DurableOptions::new(&dir),
    )
    .expect("durable pipeline builds");
    for batch in &batches[..4] {
        durable.apply_batch(batch).expect("pre-checkpoint applies");
    }
    let wal_before = std::fs::metadata(dir.join(PipelineJournal::WAL_FILE))
        .expect("WAL exists")
        .len();
    durable.checkpoint().expect("checkpoint succeeds");
    let wal_after = std::fs::metadata(dir.join(PipelineJournal::WAL_FILE))
        .expect("WAL exists")
        .len();
    assert!(
        wal_after < wal_before,
        "the checkpoint must truncate the WAL ({wal_before} -> {wal_after})"
    );
    for batch in &batches[4..6] {
        durable.apply_batch(batch).expect("post-checkpoint applies");
    }
    drop(durable);

    let mut resumed = MaterializedPipeline::new_durable(
        &program,
        vec![genome::generate_source(&params)],
        PipelineOptions::default(),
        &DurableOptions::new(&dir),
    )
    .expect("recovery succeeds");
    assert_eq!(resumed.recovered_batches(), 6);
    for batch in &batches[6..] {
        resumed.apply_batch(batch).expect("resumed applies");
    }
    if let Some(report) = resumed.target().deep_eq_report(reference.target()) {
        panic!("checkpointed stream diverged from the reference: {report}");
    }
    assert_matches_oracle(&resumed, "checkpointed stream");
    std::fs::remove_dir_all(&dir).ok();
}
