//! Recursive-descent parser for the WOL concrete syntax.
//!
//! Grammar (informally):
//!
//! ```text
//! program  := clause* EOF
//! clause   := (LABEL ':')? atoms ('<=' atoms)? ';'
//! atoms    := atom (',' atom)*
//! atom     := term 'in' CLASS
//!           | term 'member' term
//!           | term ('=' | '!=' | '<' | '=<') term
//! term     := primary ('.' LABEL)*
//! primary  := 'Mk_' CLASS '(' skolem_args ')'
//!           | 'ins_' LABEL '(' term? ')'
//!           | IDENT                              -- a variable
//!           | STRING | INT | REAL | 'true' | 'false'
//!           | '(' LABEL '=' term (',' LABEL '=' term)* ')'   -- record term
//!           | '(' term ')'
//! skolem_args := /* empty */
//!              | term (',' term)*
//!              | LABEL '=' term (',' LABEL '=' term)*
//! ```
//!
//! Identifiers starting with `Mk_` and `ins_` are reserved for Skolem and
//! variant-injection terms respectively (the paper's `Mk^C` and `ins_a`).

use wol_model::ClassName;

use crate::ast::{Atom, Clause, SkolemArgs, Term};
use crate::error::LangError;
use crate::lexer::lex;
use crate::token::{Spanned, Token};
use crate::Result;

/// Parse a whole program: a sequence of clauses terminated by `;`.
pub fn parse_program(input: &str) -> Result<Vec<Clause>> {
    let tokens = lex(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut clauses = Vec::new();
    while !parser.at_eof() {
        clauses.push(parser.clause()?);
    }
    Ok(clauses)
}

/// Parse a single clause (the trailing `;` is optional).
pub fn parse_clause(input: &str) -> Result<Clause> {
    let tokens = lex(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let clause = parser.clause_allow_missing_semi()?;
    if !parser.at_eof() {
        return Err(parser.error("unexpected trailing input after clause"));
    }
    Ok(clause)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token {
        if self.pos + 1 < self.tokens.len() {
            &self.tokens[self.pos + 1].token
        } else {
            &Token::Eof
        }
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Token::Eof)
    }

    fn error(&self, message: impl Into<String>) -> LangError {
        LangError::Parse {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<()> {
        if self.peek() == expected {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {}", self.peek())))
        }
    }

    fn clause(&mut self) -> Result<Clause> {
        let clause = self.clause_allow_missing_semi()?;
        self.expect(&Token::Semicolon, "`;` at end of clause")?;
        Ok(clause)
    }

    fn clause_allow_missing_semi(&mut self) -> Result<Clause> {
        // Optional clause label: IDENT ':'
        let label =
            if matches!(self.peek(), Token::Ident(_)) && matches!(self.peek2(), Token::Colon) {
                let l = match self.bump() {
                    Token::Ident(s) => s,
                    _ => unreachable!(),
                };
                self.bump(); // colon
                Some(l)
            } else {
                None
            };

        let head = self.atoms()?;
        let body = if matches!(self.peek(), Token::Arrow) {
            self.bump();
            // An empty body after the arrow is permitted (unconditional fact).
            if matches!(self.peek(), Token::Semicolon | Token::Eof) {
                Vec::new()
            } else {
                self.atoms()?
            }
        } else {
            Vec::new()
        };
        // Consume optional trailing semicolon handled by callers.
        let mut clause = Clause::new(head, body);
        clause.label = label;
        Ok(clause)
    }

    fn atoms(&mut self) -> Result<Vec<Atom>> {
        let mut out = vec![self.atom()?];
        while matches!(self.peek(), Token::Comma) {
            self.bump();
            out.push(self.atom()?);
        }
        Ok(out)
    }

    fn atom(&mut self) -> Result<Atom> {
        let left = self.term()?;
        match self.peek().clone() {
            Token::KwIn => {
                self.bump();
                let class = self.class_name()?;
                Ok(Atom::Member(left, class))
            }
            Token::KwMember => {
                self.bump();
                let right = self.term()?;
                Ok(Atom::InSet(left, right))
            }
            Token::Eq => {
                self.bump();
                let right = self.term()?;
                Ok(Atom::Eq(left, right))
            }
            Token::Neq => {
                self.bump();
                let right = self.term()?;
                Ok(Atom::Neq(left, right))
            }
            Token::Lt => {
                self.bump();
                let right = self.term()?;
                Ok(Atom::Lt(left, right))
            }
            Token::Leq => {
                self.bump();
                let right = self.term()?;
                Ok(Atom::Leq(left, right))
            }
            other => Err(self.error(format!(
                "expected `in`, `member`, `=`, `!=`, `<` or `=<` after term, found {other}"
            ))),
        }
    }

    fn class_name(&mut self) -> Result<ClassName> {
        match self.bump() {
            Token::Ident(s) => Ok(ClassName::new(s)),
            other => Err(self.error(format!("expected a class name, found {other}"))),
        }
    }

    fn term(&mut self) -> Result<Term> {
        let mut t = self.primary()?;
        while matches!(self.peek(), Token::Dot) {
            self.bump();
            match self.bump() {
                Token::Ident(label) => {
                    t = t.proj(label);
                }
                other => {
                    return Err(self.error(format!(
                        "expected an attribute label after `.`, found {other}"
                    )))
                }
            }
        }
        Ok(t)
    }

    fn primary(&mut self) -> Result<Term> {
        match self.peek().clone() {
            Token::Ident(name) => {
                // Skolem term?
                if let Some(class) = name.strip_prefix("Mk_") {
                    if matches!(self.peek2(), Token::LParen) {
                        self.bump(); // ident
                        self.bump(); // lparen
                        let args = self.skolem_args()?;
                        self.expect(&Token::RParen, "`)` after Skolem arguments")?;
                        return Ok(Term::Skolem(ClassName::new(class), args));
                    }
                }
                // Variant injection?
                if let Some(label) = name.strip_prefix("ins_") {
                    if matches!(self.peek2(), Token::LParen) {
                        self.bump(); // ident
                        self.bump(); // lparen
                        if matches!(self.peek(), Token::RParen) {
                            self.bump();
                            return Ok(Term::tag(label));
                        }
                        let payload = self.term()?;
                        self.expect(&Token::RParen, "`)` after variant payload")?;
                        return Ok(Term::variant(label, payload));
                    }
                }
                // Otherwise a plain variable.
                self.bump();
                Ok(Term::Var(name))
            }
            Token::Str(s) => {
                self.bump();
                Ok(Term::str(s))
            }
            Token::Int(i) => {
                self.bump();
                Ok(Term::int(i))
            }
            Token::Real(r) => {
                self.bump();
                Ok(Term::Const(wol_model::Value::real(r)))
            }
            Token::KwTrue => {
                self.bump();
                Ok(Term::bool(true))
            }
            Token::KwFalse => {
                self.bump();
                Ok(Term::bool(false))
            }
            Token::LParen => {
                self.bump();
                // Record term `(a = t, ...)` or a parenthesised term.
                if matches!(self.peek(), Token::Ident(_)) && matches!(self.peek2(), Token::Eq) {
                    let mut fields = Vec::new();
                    loop {
                        let label = match self.bump() {
                            Token::Ident(l) => l,
                            other => {
                                return Err(
                                    self.error(format!("expected a field label, found {other}"))
                                )
                            }
                        };
                        self.expect(&Token::Eq, "`=` in record field")?;
                        let value = self.term()?;
                        fields.push((label, value));
                        if matches!(self.peek(), Token::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(&Token::RParen, "`)` after record term")?;
                    Ok(Term::Record(fields))
                } else {
                    let inner = self.term()?;
                    self.expect(&Token::RParen, "`)` after parenthesised term")?;
                    Ok(inner)
                }
            }
            other => Err(self.error(format!("expected a term, found {other}"))),
        }
    }

    fn skolem_args(&mut self) -> Result<SkolemArgs> {
        if matches!(self.peek(), Token::RParen) {
            return Ok(SkolemArgs::Positional(Vec::new()));
        }
        // Named args if the first argument looks like `label = ...`.
        if matches!(self.peek(), Token::Ident(_)) && matches!(self.peek2(), Token::Eq) {
            let mut fields = Vec::new();
            loop {
                let label = match self.bump() {
                    Token::Ident(l) => l,
                    other => {
                        return Err(self.error(format!("expected an argument label, found {other}")))
                    }
                };
                self.expect(&Token::Eq, "`=` in named Skolem argument")?;
                let value = self.term()?;
                fields.push((label, value));
                if matches!(self.peek(), Token::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            Ok(SkolemArgs::Named(fields))
        } else {
            let mut args = vec![self.term()?];
            while matches!(self.peek(), Token::Comma) {
                self.bump();
                args.push(self.term()?);
            }
            Ok(SkolemArgs::Positional(args))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_model::Value;

    #[test]
    fn parse_clause_c1() {
        // Clause (C1): X.state = Y <= Y in StateA, X = Y.capital;
        let c = parse_clause("X.state = Y <= Y in StateA, X = Y.capital").unwrap();
        assert_eq!(c.head.len(), 1);
        assert_eq!(c.body.len(), 2);
        assert_eq!(
            c.head[0],
            Atom::Eq(Term::var("X").proj("state"), Term::var("Y"))
        );
        assert_eq!(
            c.body[0],
            Atom::Member(Term::var("Y"), ClassName::new("StateA"))
        );
        assert_eq!(
            c.body[1],
            Atom::Eq(Term::var("X"), Term::var("Y").proj("capital"))
        );
    }

    #[test]
    fn parse_clause_t1() {
        let c = parse_clause(
            "X in CountryT, X.name = E.name, X.language = E.language, X.currency = E.currency <= E in CountryE",
        )
        .unwrap();
        assert_eq!(c.head.len(), 4);
        assert_eq!(c.body.len(), 1);
    }

    #[test]
    fn parse_clause_t2_with_variant() {
        let c = parse_clause(
            "Y in CityT, Y.name = E.name, Y.place = ins_euro_city(X) \
             <= E in CityE, X in CountryT, X.name = E.country.name",
        )
        .unwrap();
        assert_eq!(
            c.head[2],
            Atom::Eq(
                Term::var("Y").proj("place"),
                Term::variant("euro_city", Term::var("X"))
            )
        );
        // E.country.name parses as a nested projection.
        assert_eq!(
            c.body[2],
            Atom::Eq(
                Term::var("X").proj("name"),
                Term::var("E").path("country.name")
            )
        );
    }

    #[test]
    fn parse_skolem_positional_and_named() {
        let c = parse_clause("Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name").unwrap();
        assert_eq!(
            c.head[0],
            Atom::Eq(Term::var("Y"), Term::skolem("CountryT", [Term::var("N")]))
        );

        let c = parse_clause(
            "X = Mk_CityT(name = N, country = C) <= X in CityT, N = X.name, C = X.country",
        )
        .unwrap();
        assert_eq!(
            c.head[0],
            Atom::Eq(
                Term::var("X"),
                Term::skolem_named(
                    "CityT",
                    [("name", Term::var("N")), ("country", Term::var("C"))]
                )
            )
        );
    }

    #[test]
    fn parse_dataless_variant() {
        // Clause (T6): X in Male, X.name = N <= Y in Person, Y.name = N, Y.sex = ins_male();
        let c =
            parse_clause("X in Male, X.name = N <= Y in Person, Y.name = N, Y.sex = ins_male()")
                .unwrap();
        assert_eq!(
            c.body[2],
            Atom::Eq(Term::var("Y").proj("sex"), Term::tag("male"))
        );
    }

    #[test]
    fn parse_boolean_and_string_constants() {
        let c = parse_clause(
            "P.currency = \"US-Dollars\", P.language = \"English\" <= S in StateT, S.flag = true",
        )
        .unwrap();
        assert_eq!(
            c.head[0],
            Atom::Eq(Term::var("P").proj("currency"), Term::str("US-Dollars"))
        );
        assert_eq!(
            c.body[1],
            Atom::Eq(Term::var("S").proj("flag"), Term::bool(true))
        );
    }

    #[test]
    fn parse_constraint_without_body() {
        let c = parse_clause("X.name = \"default\"").unwrap();
        assert!(c.body.is_empty());
        assert_eq!(c.head.len(), 1);
    }

    #[test]
    fn parse_empty_body_after_arrow() {
        let c = parse_clause("X.name = \"default\" <= ").unwrap();
        assert!(c.body.is_empty());
    }

    #[test]
    fn parse_labelled_clauses_in_program() {
        let program = parse_program(
            "T1: X in CountryT, X.name = E.name <= E in CountryE;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;\n",
        )
        .unwrap();
        assert_eq!(program.len(), 2);
        assert_eq!(program[0].label.as_deref(), Some("T1"));
        assert_eq!(program[1].label.as_deref(), Some("C3"));
    }

    #[test]
    fn parse_record_term() {
        let c = parse_clause(
            "X.key = (name = N, country_name = C) <= X in CityT, N = X.name, C = X.country.name",
        )
        .unwrap();
        assert_eq!(
            c.head[0],
            Atom::Eq(
                Term::var("X").proj("key"),
                Term::record([("name", Term::var("N")), ("country_name", Term::var("C"))])
            )
        );
    }

    #[test]
    fn parse_parenthesised_term() {
        let c = parse_clause("X = (Y.capital) <= Y in StateA").unwrap();
        assert_eq!(
            c.head[0],
            Atom::Eq(Term::var("X"), Term::var("Y").proj("capital"))
        );
    }

    #[test]
    fn parse_comparisons_and_membership() {
        let c = parse_clause("X < Y.population, X =< Z, X != W, E member S <= X in CityA").unwrap();
        assert_eq!(c.head.len(), 4);
        assert!(matches!(c.head[0], Atom::Lt(_, _)));
        assert!(matches!(c.head[1], Atom::Leq(_, _)));
        assert!(matches!(c.head[2], Atom::Neq(_, _)));
        assert!(matches!(c.head[3], Atom::InSet(_, _)));
    }

    #[test]
    fn parse_real_and_int_constants() {
        let c = parse_clause("X.lat = 48.85, X.pop = 2000000 <= X in CityE").unwrap();
        assert_eq!(
            c.head[0],
            Atom::Eq(Term::var("X").proj("lat"), Term::Const(Value::real(48.85)))
        );
        assert_eq!(
            c.head[1],
            Atom::Eq(Term::var("X").proj("pop"), Term::int(2_000_000))
        );
    }

    #[test]
    fn missing_semicolon_in_program_fails() {
        assert!(parse_program("X = Y <= Y in StateA").is_err());
    }

    #[test]
    fn trailing_tokens_after_clause_fail() {
        assert!(parse_clause("X = Y <= Y in StateA; Z = W").is_err());
    }

    #[test]
    fn missing_operator_fails() {
        let err = parse_clause("X Y <= Z in C").unwrap_err();
        assert!(matches!(err, LangError::Parse { .. }));
    }

    #[test]
    fn error_mentions_offset() {
        match parse_clause("X = ") {
            Err(LangError::Parse { offset, .. }) => assert!(offset >= 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn comments_in_programs() {
        let program = parse_program(
            "// constraint from Figure 1\nC1: X.state = Y <= Y in StateA, X = Y.capital;\n",
        )
        .unwrap();
        assert_eq!(program.len(), 1);
        assert_eq!(program[0].label.as_deref(), Some("C1"));
    }

    #[test]
    fn skolem_without_parens_is_a_variable() {
        // `Mk_CountryT` not followed by `(` is just an identifier/variable.
        let c = parse_clause("X = Mk_CountryT <= X in CityT").unwrap();
        assert_eq!(
            c.head[0],
            Atom::Eq(Term::var("X"), Term::var("Mk_CountryT"))
        );
    }

    #[test]
    fn empty_skolem_args() {
        let c = parse_clause("X = Mk_Singleton() <= Y in CountryE").unwrap();
        assert_eq!(
            c.head[0],
            Atom::Eq(
                Term::var("X"),
                Term::skolem("Singleton", Vec::<Term>::new())
            )
        );
    }
}
