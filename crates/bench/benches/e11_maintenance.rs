//! Experiment E11 — sustained traffic over a standing materialized pipeline.
//!
//! PR 8 adds incremental view maintenance: a [`morphase::MaterializedPipeline`]
//! absorbs mutation batches against the genome source and repairs the
//! warehouse in place, bit-identical to a from-scratch re-run, behind a
//! many-readers/one-maintainer [`morphase::PipelineService`]. This bench
//! drives a mixed read/update stream over a scaled genome warehouse and
//! reports:
//!
//! * per-batch incremental repair latency (p50/p99) for in-place traffic,
//!   and the incremental-vs-full-rerun speedup ratio (the ≥10× release
//!   guard lives in `tests/perf_regression.rs`);
//! * concurrent reader snapshot latencies (p50/p99) while the maintainer
//!   absorbs the stream;
//! * the outcome mix (in-place / rebuild / re-run) a mixed stream produces.
//!
//! Results land in `BENCH_e11.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use morphase::{MaterializedPipeline, PipelineOptions, PipelineService};
use wol_model::ClassName;
use workloads::genome::{self, GenomeParams};
use workloads::traffic::{TrafficGen, TrafficWeights};

const BATCH_OPS: usize = 4;
const STEADY_BATCHES: usize = 200;
const MIXED_BATCHES: usize = 100;

fn pipeline(params: &GenomeParams) -> MaterializedPipeline {
    MaterializedPipeline::new(
        &genome::program(),
        vec![genome::generate_source(params)],
        PipelineOptions::default(),
    )
    .expect("genome pipeline builds")
}

fn percentile(sorted: &[Duration], pct: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[(sorted.len() * pct / 100).min(sorted.len() - 1)]
}

fn bench_maintenance(c: &mut Criterion) {
    let params = GenomeParams::scaled(4); // 400 clones, 1200 markers
    let mut group = c.benchmark_group("e11_maintenance");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));

    // Full re-run cost: the baseline every incremental batch avoids. The
    // incremental side is measured by hand below — a criterion `b.iter`
    // over `apply_batch` would advance the source without bound (criterion
    // picks the iteration count from the fast early batches).
    let rerun_pipeline = pipeline(&params);
    group.bench_function("full_rerun", |b| {
        b.iter(|| rerun_pipeline.rerun_oracle().expect("oracle runs"))
    });
    group.finish();

    // Steady-state phase for the JSON summary: in-place traffic, one
    // pipeline, per-batch latencies measured by hand.
    let mut p = pipeline(&params);
    let mut gen = TrafficGen::new(p.source(0).unwrap(), 22, TrafficWeights::in_place());
    let rerun_start = Instant::now();
    p.rerun_oracle().expect("oracle runs");
    let rerun_once = rerun_start.elapsed();
    let mut batch_lat: Vec<Duration> = Vec::with_capacity(STEADY_BATCHES);
    for _ in 0..STEADY_BATCHES {
        let batch = gen.next_batch(BATCH_OPS);
        let start = Instant::now();
        p.apply_batch(&batch).expect("batch applies");
        batch_lat.push(start.elapsed());
    }
    let steady_stats = p.stats().clone();
    assert_eq!(
        steady_stats.inplace_batches, STEADY_BATCHES as u64,
        "the in-place preset must never rebuild"
    );
    // Bit-identity against the oracle at the end of the stream.
    let oracle = p.rerun_oracle().expect("oracle runs");
    assert!(
        p.target().deep_eq_report(&oracle.target).is_none(),
        "maintained target must equal the from-scratch oracle"
    );
    batch_lat.sort();
    let batch_p50 = percentile(&batch_lat, 50);
    let batch_p99 = percentile(&batch_lat, 99);

    // Concurrent phase: readers hammer snapshots while the maintainer
    // absorbs a mixed stream (rebuild escalations included).
    let service = PipelineService::start(pipeline(&params));
    let stop = Arc::new(AtomicBool::new(false));
    let mut read_lat: Vec<Duration> = Vec::new();
    let marker_d = ClassName::new("MarkerD");
    let clone_d = ClassName::new("CloneD");
    std::thread::scope(|scope| {
        let service = &service;
        let stop_flag = &stop;
        let marker_d = &marker_d;
        let clone_d = &clone_d;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    while !stop_flag.load(Ordering::Relaxed) {
                        let start = Instant::now();
                        let snap = service.snapshot();
                        // A consistency probe: every marker's clone ref
                        // resolves within the same snapshot.
                        for oid in snap.extent(marker_d).take(32) {
                            if let Some(v) = snap.value(oid) {
                                if let Some(wol_model::Value::Oid(c)) = v.project("clone") {
                                    assert!(snap.contains(c), "dangling clone ref in a snapshot");
                                    assert_eq!(c.class(), clone_d);
                                }
                            }
                        }
                        lat.push(start.elapsed());
                    }
                    lat
                })
            })
            .collect();
        let mut mixed_gen = TrafficGen::new(
            &genome::generate_source(&params),
            33,
            TrafficWeights::mixed(),
        );
        for _ in 0..MIXED_BATCHES {
            let batch = mixed_gen.next_batch(BATCH_OPS);
            service.apply(batch).expect("mixed batch applies");
        }
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            read_lat.extend(handle.join().expect("reader thread"));
        }
    });
    let mixed_pipeline = service.shutdown().expect("clean shutdown");
    let mixed_stats = mixed_pipeline.stats().clone();
    let mixed_oracle = mixed_pipeline.rerun_oracle().expect("oracle runs");
    assert!(
        mixed_pipeline
            .target()
            .deep_eq_report(&mixed_oracle.target)
            .is_none(),
        "mixed-stream target must equal the from-scratch oracle"
    );
    read_lat.sort();
    let read_p50 = percentile(&read_lat, 50);
    let read_p99 = percentile(&read_lat, 99);

    println!("{}", morphase::render_maintenance_report(&mixed_stats));

    bench::BenchJson::new()
        .str("bench", "e11_maintenance")
        .str("workload", "e6_genome_x4")
        .int("batch_ops", BATCH_OPS as u64)
        .int("steady_batches", STEADY_BATCHES as u64)
        .num("full_rerun_secs", rerun_once.as_secs_f64())
        .num("incremental_p50_secs", batch_p50.as_secs_f64())
        .num("incremental_p99_secs", batch_p99.as_secs_f64())
        .num(
            "incremental_vs_rerun_p50",
            rerun_once.as_secs_f64() / batch_p50.as_secs_f64().max(1e-9),
        )
        .int("steady_rows_added", steady_stats.rows_added)
        .int("steady_objects_repaired", steady_stats.objects_repaired)
        .int("mixed_batches", mixed_stats.batches)
        .int("mixed_inplace", mixed_stats.inplace_batches)
        .int("mixed_rebuilds", mixed_stats.rebuild_batches)
        .int("read_samples", read_lat.len() as u64)
        .num("read_p50_secs", read_p50.as_secs_f64())
        .num("read_p99_secs", read_p99.as_secs_f64())
        .stamped()
        .write("BENCH_e11.json");
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
