//! Property-based tests over the core invariants of the reproduction.

use proptest::prelude::*;

use wol_repro::morphase::Morphase;
use wol_repro::wol_engine::{execute, instances_equivalent, normalize, NormalizeOptions};
use wol_repro::wol_lang::{parse_clause, render_clause};
use wol_repro::wol_model::{ClassName, SkolemFactory, Value};
use wol_repro::workloads::cities::{generate_euro, CitiesWorkload};
use wol_repro::workloads::{variants, wide};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Skolem factory is a bijection between key values and identities:
    /// equal keys give equal identities, distinct keys give distinct ones.
    #[test]
    fn skolem_factory_is_injective(keys in proptest::collection::vec("[a-z]{1,8}", 1..20)) {
        let mut factory = SkolemFactory::new();
        let class = ClassName::new("CountryT");
        let mut assigned = std::collections::BTreeMap::new();
        for key in &keys {
            let oid = factory.mk(&class, &Value::str(key.clone()));
            let again = factory.mk(&class, &Value::str(key.clone()));
            prop_assert_eq!(&oid, &again);
            if let Some(previous) = assigned.insert(key.clone(), oid.clone()) {
                prop_assert_eq!(previous, oid);
            }
        }
        let distinct_keys: std::collections::BTreeSet<_> = keys.iter().collect();
        let distinct_oids: std::collections::BTreeSet<_> = assigned.values().collect();
        prop_assert_eq!(distinct_keys.len(), distinct_oids.len());
    }

    /// Pretty-printing and re-parsing a clause is the identity.
    #[test]
    fn clause_round_trip(
        attr in "[a-z]{1,6}",
        class in "[A-Z][a-z]{1,6}",
        constant in "[a-zA-Z]{1,8}",
    ) {
        let text = format!("X in {class}, X.{attr} = \"{constant}\" <= Y in {class}, X = Y");
        let clause = parse_clause(&text).unwrap();
        let reparsed = parse_clause(render_clause(&clause).trim_end_matches(';')).unwrap();
        prop_assert_eq!(clause, reparsed);
    }

    /// The cities transformation scales: extents of the target are determined
    /// by the source sizes, for any generated source.
    #[test]
    fn cities_target_extents_match_source(countries in 1usize..6, cities in 1usize..5, seed in 0u64..500) {
        let workload = CitiesWorkload::new();
        let program = workload.euro_program();
        let source = generate_euro(countries, cities, seed);
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let target = execute(&normal, &[&source][..], "target").unwrap();
        prop_assert_eq!(target.extent_size(&ClassName::new("CountryT")), countries);
        prop_assert_eq!(target.extent_size(&ClassName::new("CityT")), countries * cities);
    }

    /// Normalisation is deterministic and insensitive to re-running.
    #[test]
    fn normalization_is_a_function(k in 1usize..5) {
        let program = variants::wol_program(k);
        let a = normalize(&program, &NormalizeOptions::default()).unwrap();
        let b = normalize(&program, &NormalizeOptions::default()).unwrap();
        prop_assert_eq!(a.clauses, b.clauses);
    }

    /// Splitting the same wide-record transformation into a different number
    /// of partial clauses does not change the produced target (up to renaming
    /// of object identities).
    #[test]
    fn partial_clause_granularity_is_semantically_irrelevant(
        rows in 1usize..6,
        k in 1usize..5,
        seed in 0u64..100,
    ) {
        let n = 8;
        let source = wide::generate_source(n, rows, seed);
        let whole = normalize(&wide::normal_form_program(n), &NormalizeOptions::default()).unwrap();
        let split = normalize(&wide::partial_program(n, k, true), &NormalizeOptions::default()).unwrap();
        let a = execute(&whole, &[&source][..], "t").unwrap();
        let b = execute(&split, &[&source][..], "t").unwrap();
        prop_assert!(instances_equivalent(&a, &b, 2));
    }

    /// The Morphase/CPL execution path agrees with the engine's reference
    /// executor on the variant family.
    #[test]
    fn cpl_and_reference_execution_agree(k in 1usize..4, items in 1usize..12, seed in 0u64..100) {
        let program = variants::wol_program(k);
        let source = variants::generate_source(k, items, seed);
        let run = Morphase::new().transform(&program, &[&source][..]).unwrap();
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let reference = execute(&normal, &[&source][..], "target").unwrap();
        prop_assert!(instances_equivalent(&run.target, &reference, 2));
    }
}
