//! Binary codec shared by the WAL and snapshot formats.
//!
//! The encoding is deliberately simple and self-contained (no external
//! serialization crates): little-endian fixed-width integers, LEB128 varints
//! with zigzag for signed values, length-prefixed UTF-8 strings, and a
//! one-tag-byte-per-variant encoding of model [`Value`]s. Decoding goes
//! through [`ByteReader`], which tracks the byte offset so every failure
//! surfaces as a [`StorageError::Corrupt`] saying *where* the input went bad
//! and what was expected there — short reads are errors, never panics.

use std::collections::{BTreeMap, BTreeSet};

use wol_model::{ClassName, Oid, RealVal, Value};

use crate::error::StorageError;
use crate::Result;

/// CRC-32 (IEEE 802.3 polynomial, reflected). Table built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Compute the CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Writers (infallible; append to a Vec).
// ---------------------------------------------------------------------------

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a zigzag-encoded signed varint.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Append an object identity: class name then discriminator.
pub fn put_oid(out: &mut Vec<u8>, oid: &Oid) {
    put_str(out, oid.class().as_str());
    put_varint(out, oid.id());
}

// Value variant tags. New variants get new tags; existing tags are frozen —
// changing any of them requires bumping the enclosing format's version (see
// the crate-level "Durability" docs).
const TAG_UNIT: u8 = 0x00;
const TAG_ABSENT: u8 = 0x01;
const TAG_FALSE: u8 = 0x02;
const TAG_TRUE: u8 = 0x03;
const TAG_INT: u8 = 0x04;
const TAG_REAL: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_OID: u8 = 0x07;
const TAG_SET: u8 = 0x08;
const TAG_LIST: u8 = 0x09;
const TAG_RECORD: u8 = 0x0A;
const TAG_VARIANT: u8 = 0x0B;

/// Upper bound on value-tree nesting accepted by the decoder; a corrupt
/// length field must not be able to recurse the stack away.
const MAX_DEPTH: usize = 128;

/// Append a model value (all eleven variants, recursively).
pub fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Unit => out.push(TAG_UNIT),
        Value::Absent => out.push(TAG_ABSENT),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            put_i64(out, *i);
        }
        Value::Real(r) => {
            out.push(TAG_REAL);
            put_u64(out, r.get().to_bits());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_str(out, s);
        }
        Value::Oid(oid) => {
            out.push(TAG_OID);
            put_oid(out, oid);
        }
        Value::Set(items) => {
            out.push(TAG_SET);
            put_varint(out, items.len() as u64);
            for item in items {
                put_value(out, item);
            }
        }
        Value::List(items) => {
            out.push(TAG_LIST);
            put_varint(out, items.len() as u64);
            for item in items {
                put_value(out, item);
            }
        }
        Value::Record(fields) => {
            out.push(TAG_RECORD);
            put_varint(out, fields.len() as u64);
            for (label, field) in fields {
                put_str(out, label);
                put_value(out, field);
            }
        }
        Value::Variant(label, payload) => {
            out.push(TAG_VARIANT);
            put_str(out, label);
            put_value(out, payload);
        }
    }
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

/// A position-tracking reader over a byte slice. Every decoding failure is a
/// [`StorageError::Corrupt`] carrying the source label, the byte offset at
/// which the failure was detected, and expected-vs-found context.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    source: String,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, attributing errors to `source`.
    pub fn new(bytes: &'a [u8], source: &str) -> Self {
        ByteReader {
            bytes,
            pos: 0,
            source: source.to_string(),
        }
    }

    /// Current byte offset from the start of the input.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Build a corrupt-input error at the current offset.
    pub fn corrupt(&self, expected: impl Into<String>, found: impl Into<String>) -> StorageError {
        StorageError::corrupt_at_offset(&self.source, self.pos as u64, expected, found)
    }

    /// Consume exactly `n` bytes; a short read is a corrupt-input error.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.corrupt(
                format!("{n} more bytes"),
                format!("only {} remaining", self.remaining()),
            ));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes taken")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes taken")))
    }

    /// Read an LEB128 varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 63 && byte > 1 {
                return Err(self.corrupt("a varint of at most 64 bits", "an overlong varint"));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a zigzag-encoded signed varint.
    pub fn i64(&mut self) -> Result<i64> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.varint()?;
        if len > self.remaining() as u64 {
            return Err(self.corrupt(
                format!("a {len}-byte string"),
                format!("only {} bytes remaining", self.remaining()),
            ));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| self.corrupt("valid UTF-8 string data", "invalid UTF-8"))
    }

    /// Read an object identity.
    pub fn oid(&mut self) -> Result<Oid> {
        let class = ClassName::new(self.str()?);
        let id = self.varint()?;
        Ok(Oid::new(class, id))
    }

    /// Read a model value.
    pub fn value(&mut self) -> Result<Value> {
        self.value_at_depth(0)
    }

    fn value_at_depth(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.corrupt(
                format!("a value nested at most {MAX_DEPTH} deep"),
                "deeper nesting (corrupt length field?)",
            ));
        }
        let tag = self.u8()?;
        Ok(match tag {
            TAG_UNIT => Value::Unit,
            TAG_ABSENT => Value::Absent,
            TAG_FALSE => Value::Bool(false),
            TAG_TRUE => Value::Bool(true),
            TAG_INT => Value::Int(self.i64()?),
            TAG_REAL => Value::Real(RealVal(f64::from_bits(self.u64()?))),
            TAG_STR => Value::Str(self.str()?),
            TAG_OID => Value::Oid(self.oid()?),
            TAG_SET => {
                let len = self.varint()?;
                let mut items = BTreeSet::new();
                for _ in 0..len {
                    items.insert(self.value_at_depth(depth + 1)?);
                }
                Value::Set(items)
            }
            TAG_LIST => {
                let len = self.varint()?;
                let mut items = Vec::new();
                for _ in 0..len {
                    items.push(self.value_at_depth(depth + 1)?);
                }
                Value::List(items)
            }
            TAG_RECORD => {
                let len = self.varint()?;
                let mut fields = BTreeMap::new();
                for _ in 0..len {
                    let label = self.str()?;
                    fields.insert(label, self.value_at_depth(depth + 1)?);
                }
                Value::Record(fields)
            }
            TAG_VARIANT => {
                let label = self.str()?;
                Value::Variant(label, Box::new(self.value_at_depth(depth + 1)?))
            }
            other => {
                return Err(self.corrupt("a value tag in 0x00..=0x0B", format!("tag {other:#04x}")));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Value) -> Value {
        let mut bytes = Vec::new();
        put_value(&mut bytes, value);
        let mut reader = ByteReader::new(&bytes, "<test>");
        let decoded = reader.value().unwrap();
        assert!(reader.is_at_end(), "trailing bytes after {value:?}");
        decoded
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn varints_round_trip_across_magnitudes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut bytes = Vec::new();
            put_varint(&mut bytes, v);
            assert_eq!(ByteReader::new(&bytes, "<t>").varint().unwrap(), v);
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut bytes = Vec::new();
            put_i64(&mut bytes, v);
            assert_eq!(ByteReader::new(&bytes, "<t>").i64().unwrap(), v);
        }
    }

    #[test]
    fn all_value_variants_round_trip() {
        let oid = Oid::new(ClassName::new("CityT"), 7);
        let values = vec![
            Value::Unit,
            Value::Absent,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::real(3.25),
            Value::str("Paris"),
            Value::str(""),
            Value::Oid(oid.clone()),
            Value::set([Value::int(1), Value::int(2)]),
            Value::list([Value::str("a"), Value::Unit, Value::Oid(oid.clone())]),
            Value::record([
                ("name", Value::str("Paris")),
                ("country", Value::Oid(oid)),
                ("tags", Value::set([Value::str("capital")])),
            ]),
            Value::variant("state", Value::str("PA")),
            Value::variant("none", Value::Unit),
        ];
        for value in &values {
            assert_eq!(&round_trip(value), value);
        }
        // One deeply mixed nesting.
        let nested = Value::record([(
            "outer",
            Value::list([Value::set([Value::variant(
                "alt",
                Value::record([("inner", Value::real(-0.5))]),
            )])]),
        )]);
        assert_eq!(round_trip(&nested), nested);
    }

    #[test]
    fn short_reads_error_with_offset_context() {
        let mut bytes = Vec::new();
        put_value(&mut bytes, &Value::str("Paris"));
        for cut in 0..bytes.len() {
            let mut reader = ByteReader::new(&bytes[..cut], "<t>");
            let err = reader.value().unwrap_err();
            assert!(
                matches!(err, StorageError::Corrupt { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn unknown_tag_and_bad_utf8_rejected() {
        let err = ByteReader::new(&[0xFF], "<t>").value().unwrap_err();
        assert!(err.to_string().contains("0xff"), "{err}");
        // TAG_STR, length 1, invalid UTF-8 byte.
        let err = ByteReader::new(&[TAG_STR, 1, 0xC0], "<t>")
            .value()
            .unwrap_err();
        assert!(err.to_string().contains("UTF-8"), "{err}");
        // Overlong varint.
        let overlong = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7F];
        let err = ByteReader::new(&overlong, "<t>").varint().unwrap_err();
        assert!(err.to_string().contains("varint"), "{err}");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut bytes = Vec::new();
        for _ in 0..(MAX_DEPTH + 2) {
            bytes.push(TAG_LIST);
            bytes.push(1);
        }
        bytes.push(TAG_UNIT);
        let err = ByteReader::new(&bytes, "<t>").value().unwrap_err();
        assert!(err.to_string().contains("nested"), "{err}");
    }
}
