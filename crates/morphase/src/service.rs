//! Concurrent front end for the standing pipeline: many readers, one
//! maintainer.
//!
//! [`PipelineService`] moves a [`MaterializedPipeline`] onto a dedicated
//! maintainer thread. Writers submit [`wol_model::MutationBatch`]es through a
//! request queue and block for the per-batch [`BatchReport`]; readers grab an
//! immutable snapshot (`Arc<Instance>`) that is swapped atomically after each
//! successful batch. Readers therefore always observe a target at a batch
//! boundary — never a half-repaired instance — and two reads from the same
//! snapshot are trivially consistent with each other.
//!
//! Failure handling is deliberately loud: if the maintainer thread panics,
//! pending and future requests error immediately (the channel closes), and
//! [`PipelineService::shutdown`] re-raises the panic on the caller instead of
//! swallowing it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;

use wol_model::{Instance, MutationBatch};

use crate::maintain::{BatchReport, MaterializedPipeline};
use crate::{MorphaseError, Result};

enum Request {
    Apply(MutationBatch, Sender<Result<BatchReport>>),
    /// Test hook: make the maintainer panic to exercise propagation.
    Panic,
    Shutdown(Sender<Box<MaterializedPipeline>>),
}

/// A [`MaterializedPipeline`] behind a maintainer thread and a snapshot cell.
pub struct PipelineService {
    tx: Option<Sender<Request>>,
    snapshot: Arc<RwLock<Arc<Instance>>>,
    poisoned: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

fn maintainer(
    mut pipeline: Box<MaterializedPipeline>,
    rx: Receiver<Request>,
    snapshot: Arc<RwLock<Arc<Instance>>>,
    poisoned: Arc<AtomicBool>,
) {
    while let Ok(request) = rx.recv() {
        match request {
            Request::Apply(batch, reply) => {
                let result = pipeline.apply_batch(&batch);
                if result.is_ok() {
                    let fresh = Arc::new(pipeline.target().clone());
                    *snapshot.write().expect("snapshot lock poisoned") = fresh;
                } else {
                    poisoned.store(pipeline.is_poisoned(), Ordering::SeqCst);
                }
                // A dropped requester is fine; the batch already applied.
                let _ = reply.send(result);
            }
            Request::Panic => panic!("injected maintainer panic"),
            Request::Shutdown(reply) => {
                let _ = reply.send(pipeline);
                return;
            }
        }
    }
}

impl PipelineService {
    /// Stand the pipeline up behind a maintainer thread. The initial
    /// snapshot is the pipeline's current target.
    pub fn start(pipeline: MaterializedPipeline) -> PipelineService {
        let snapshot = Arc::new(RwLock::new(Arc::new(pipeline.target().clone())));
        let poisoned = Arc::new(AtomicBool::new(pipeline.is_poisoned()));
        let (tx, rx) = mpsc::channel();
        let handle = {
            let snapshot = Arc::clone(&snapshot);
            let poisoned = Arc::clone(&poisoned);
            std::thread::Builder::new()
                .name("morphase-maintainer".into())
                .spawn(move || maintainer(Box::new(pipeline), rx, snapshot, poisoned))
                .expect("spawn maintainer thread")
        };
        PipelineService {
            tx: Some(tx),
            snapshot,
            poisoned,
            handle: Some(handle),
        }
    }

    /// The latest published target snapshot. Cheap: clones an `Arc` under a
    /// read lock. The snapshot is immutable and consistent at a batch
    /// boundary.
    pub fn snapshot(&self) -> Arc<Instance> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    /// Apply a batch on the maintainer thread and wait for its report.
    pub fn apply(&self, batch: MutationBatch) -> Result<BatchReport> {
        let gone = || MorphaseError::Execution("maintainer thread is gone".into());
        let tx = self.tx.as_ref().ok_or_else(gone)?;
        let (reply_tx, reply_rx) = mpsc::channel();
        tx.send(Request::Apply(batch, reply_tx))
            .map_err(|_| gone())?;
        reply_rx.recv().map_err(|_| gone())?
    }

    /// True once a maintainer-side failure poisoned the pipeline.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Test hook: make the maintainer thread panic. The next [`Self::apply`]
    /// errors and [`Self::shutdown`] re-raises the panic.
    #[doc(hidden)]
    pub fn inject_panic(&self) {
        if let Some(tx) = self.tx.as_ref() {
            let _ = tx.send(Request::Panic);
        }
    }

    /// Stop the maintainer and take the pipeline back. Re-raises the
    /// maintainer's panic if it died instead of shutting down cleanly.
    pub fn shutdown(mut self) -> Result<MaterializedPipeline> {
        let gone = || MorphaseError::Execution("maintainer thread is gone".into());
        let reply = self.tx.as_ref().and_then(|tx| {
            let (reply_tx, reply_rx) = mpsc::channel();
            tx.send(Request::Shutdown(reply_tx)).ok()?;
            Some(reply_rx)
        });
        // Drop the sender so a panicked maintainer's channel drains.
        self.tx = None;
        if let Some(handle) = self.handle.take() {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
        let pipeline = reply.and_then(|rx| rx.recv().ok()).ok_or_else(gone)?;
        Ok(*pipeline)
    }
}

impl Drop for PipelineService {
    fn drop(&mut self) {
        self.tx = None;
        if let Some(handle) = self.handle.take() {
            // Closing the channel stops the maintainer; a panic payload is
            // intentionally swallowed here — `shutdown` is the loud path.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PipelineOptions;
    use wol_model::{ClassName, Value};
    use workloads::genome::{self, GenomeParams};

    fn service() -> PipelineService {
        let program = genome::program();
        let source = genome::generate_source(&GenomeParams::default());
        let pipeline =
            MaterializedPipeline::new(&program, vec![source], PipelineOptions::default()).unwrap();
        PipelineService::start(pipeline)
    }

    #[test]
    fn snapshots_advance_only_at_batch_boundaries() {
        let service = service();
        let before = service.snapshot();
        let report = service
            .apply(MutationBatch::new().insert(
                ClassName::new("CloneS"),
                Value::record([("name", Value::from("svc-clone"))]),
            ))
            .unwrap();
        assert!(report.rows_added > 0);
        let after = service.snapshot();
        assert!(!Arc::ptr_eq(&before, &after));
        // The old snapshot is still intact and readable.
        assert!(before.populated_classes().len() <= after.populated_classes().len());
        let pipeline = service.shutdown().unwrap();
        assert_eq!(pipeline.stats().batches, 1);
    }

    #[test]
    fn maintainer_panic_propagates_at_shutdown() {
        let service = service();
        service.inject_panic();
        // The apply after a panic errors rather than hanging.
        let err = service.apply(MutationBatch::new());
        assert!(err.is_err());
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = service.shutdown();
        }));
        assert!(panicked.is_err(), "shutdown must re-raise the panic");
    }

    #[test]
    fn failed_batches_report_errors_to_the_submitter() {
        let service = service();
        let err = service
            .apply(MutationBatch::new().insert(ClassName::new("NoSuchClass"), Value::int(1)));
        assert!(err.is_err());
        assert!(!service.is_poisoned(), "validation failures do not poison");
        service.shutdown().unwrap();
    }

    #[test]
    fn constraint_rejections_leave_the_service_healthy_and_the_snapshot_unmoved() {
        use crate::pipeline::BatchConstraintMode;
        use workloads::constrained::{self, ConstrainedParams};
        let program = constrained::program();
        let source = constrained::generate_source(&ConstrainedParams::default());
        let options = PipelineOptions {
            batch_constraints: BatchConstraintMode::Enforce,
            ..PipelineOptions::default()
        };
        let pipeline = MaterializedPipeline::new(&program, vec![source.clone()], options).unwrap();
        let mut gen = constrained::ConstrainedGen::new(&source, 2);
        let service = PipelineService::start(pipeline);
        let before = service.snapshot();
        let err = service.apply(gen.violating_batch()).unwrap_err();
        assert!(matches!(err, MorphaseError::Verification(_)));
        assert!(!service.is_poisoned(), "rejections do not poison");
        // No snapshot was published for the rejected batch.
        let after = service.snapshot();
        assert!(Arc::ptr_eq(&before, &after));
        // Clean traffic still flows and publishes fresh snapshots.
        let report = service.apply(gen.next_batch(4)).unwrap();
        assert!(report.constraints.is_some());
        assert!(!Arc::ptr_eq(&before, &service.snapshot()));
        let pipeline = service.shutdown().unwrap();
        assert_eq!(pipeline.stats().rejected_batches, 1);
        assert_eq!(pipeline.stats().batches, 1);
    }
}
