//! Human-readable rendering of types, values and instances.
//!
//! The renderings follow the paper's notation: record types are written
//! `(a: t, ...)`, variant types `<| a: t, ... |>`, set types `{t}`, and
//! values mirror Example 2.2's `(name -> "London", ...)` style.

use std::fmt::Write as _;

use crate::instance::Instance;
use crate::schema::Schema;
use crate::types::Type;
use crate::values::Value;

/// Render a type in the paper's notation.
pub fn render_type(ty: &Type) -> String {
    let mut out = String::new();
    write_type(&mut out, ty);
    out
}

fn write_type(out: &mut String, ty: &Type) {
    match ty {
        Type::Base(b) => {
            let _ = write!(out, "{b}");
        }
        Type::Class(c) => {
            let _ = write!(out, "{c}");
        }
        Type::Set(t) => {
            out.push('{');
            write_type(out, t);
            out.push('}');
        }
        Type::List(t) => {
            out.push('[');
            write_type(out, t);
            out.push(']');
        }
        Type::Optional(t) => {
            write_type(out, t);
            out.push('?');
        }
        Type::Unit => out.push_str("()"),
        Type::Record(fields) => {
            out.push('(');
            for (i, (l, t)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{l}: ");
                write_type(out, t);
            }
            out.push(')');
        }
        Type::Variant(alts) => {
            out.push_str("<|");
            for (i, (l, t)) in alts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{l}: ");
                write_type(out, t);
            }
            out.push_str("|>");
        }
    }
}

/// Render a value in the paper's notation.
pub fn render_value(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Bool(b) => {
            let _ = write!(out, "{}", if *b { "True" } else { "False" });
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Real(r) => {
            let _ = write!(out, "{r}");
        }
        Value::Str(s) => {
            let _ = write!(out, "{s:?}");
        }
        Value::Oid(o) => {
            let _ = write!(out, "{o}");
        }
        Value::Unit => out.push_str("()"),
        Value::Absent => out.push_str("<absent>"),
        Value::Set(items) => {
            out.push('{');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_value(out, item);
            }
            out.push('}');
        }
        Value::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Record(fields) => {
            out.push('(');
            for (i, (l, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{l} -> ");
                write_value(out, v);
            }
            out.push(')');
        }
        Value::Variant(label, payload) => {
            let _ = write!(out, "ins_{label}(");
            if **payload != Value::Unit {
                write_value(out, payload);
            }
            out.push(')');
        }
    }
}

/// Render a schema: one line per class, `class :: type`.
pub fn render_schema(schema: &Schema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "schema {} {{", schema.name());
    for (class, ty) in schema.classes() {
        let _ = writeln!(out, "  class {class} :: {}", render_type(ty));
    }
    out.push('}');
    out
}

/// Render an instance: extents with each object's identity and value.
/// Intended for examples and debugging, not for bulk data.
pub fn render_instance(instance: &Instance) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "instance of {} {{", instance.schema_name());
    for class in instance.populated_classes() {
        let _ = writeln!(out, "  {class} ({} objects):", instance.extent_size(&class));
        for (oid, value) in instance.objects(&class) {
            let _ = writeln!(out, "    {oid} = {}", render_value(value));
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClassName;

    #[test]
    fn render_types_in_paper_notation() {
        let city_e = Type::record([
            ("name", Type::str()),
            ("is_capital", Type::bool()),
            ("country", Type::class("CountryE")),
        ]);
        assert_eq!(
            render_type(&city_e),
            "(name: str, is_capital: bool, country: CountryE)"
        );
        let place = Type::variant([
            ("state", Type::class("StateT")),
            ("country", Type::class("CountryT")),
        ]);
        assert_eq!(render_type(&place), "<|state: StateT, country: CountryT|>");
        assert_eq!(render_type(&Type::set(Type::class("CityE"))), "{CityE}");
        assert_eq!(render_type(&Type::list(Type::int())), "[int]");
        assert_eq!(render_type(&Type::optional(Type::int())), "int?");
        assert_eq!(render_type(&Type::Unit), "()");
    }

    #[test]
    fn render_values_in_paper_notation() {
        let v = Value::record([
            ("name", Value::str("London")),
            ("is_capital", Value::bool(true)),
        ]);
        assert_eq!(
            render_value(&v),
            r#"(is_capital -> True, name -> "London")"#
        );
        assert_eq!(render_value(&Value::tag("male")), "ins_male()");
        assert_eq!(
            render_value(&Value::variant("euro_city", Value::int(1))),
            "ins_euro_city(1)"
        );
        assert_eq!(
            render_value(&Value::set([Value::int(2), Value::int(1)])),
            "{1, 2}"
        );
        assert_eq!(
            render_value(&Value::list([Value::int(2), Value::int(1)])),
            "[2, 1]"
        );
        assert_eq!(render_value(&Value::Absent), "<absent>");
        assert_eq!(render_value(&Value::real(1.5)), "1.5");
    }

    #[test]
    fn render_schema_and_instance() {
        let schema = Schema::new("us").with_class("StateA", Type::record([("name", Type::str())]));
        let rendered = render_schema(&schema);
        assert!(rendered.contains("schema us"));
        assert!(rendered.contains("class StateA :: (name: str)"));

        let mut inst = Instance::new("us");
        inst.insert_fresh(
            &ClassName::new("StateA"),
            Value::record([("name", Value::str("Pennsylvania"))]),
        );
        let rendered = render_instance(&inst);
        assert!(rendered.contains("instance of us"));
        assert!(rendered.contains("#StateA:0"));
        assert!(rendered.contains("Pennsylvania"));
    }
}
