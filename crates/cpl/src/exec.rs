//! Single-pass execution of plans and queries.
//!
//! Normal-form WOL clauses compile to [`Query`] values; executing all of a
//! program's queries makes exactly one pass over the source databases
//! (Section 5: "A transformation program in which all the transformation
//! clauses are in normal form can easily be implemented in a single pass").
//!
//! ## Parallel execution
//!
//! Operators over enough input rows run morsel-style over
//! [`std::thread::scope`] workers, governed by the context's
//! [`wol_model::Parallelism`] knob ([`EvalCtx::set_parallelism`]):
//!
//! * **scan+filter** partitions the class extent into contiguous chunks;
//! * **map**, **nested-loop** and **cross joins** partition the (left) input
//!   rows into contiguous chunks;
//! * **hash joins** partition the *build side by key hash* into per-worker
//!   shards and probe in parallel; on the index fast path the *driving* rows
//!   are sharded by key hash, so each distinct key — and its probe-side
//!   cache entry — is owned by exactly one worker.
//!
//! Parallelism never changes results, only wall-clock: chunks are merged in
//! input order, a key's matches live wholly in one shard in build order, and
//! expressions that create Skolem identities (whose numbering depends on
//! first-call order) pin their operator to the sequential path. The output
//! row stream — and therefore the target instance built from it — is
//! bit-identical at every thread count, and the merged [`ExecStats`] equal
//! the sequential run's totals (per-worker breakdowns are additionally kept
//! as [`EvalCtx::shard_stats`]).

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::ops::Range;

use wol_model::{chunk_ranges, rewrite_resolved, Instance, Oid, SkolemClaims, Value};

use crate::error::CplError;
use crate::expr::{eval, eval_predicate, EvalCtx, Expr};
use crate::plan::{Plan, Query};
use crate::Result;

pub use crate::expr::Row;

/// Statistics collected while executing plans; reported by the Morphase
/// pipeline and the benchmark harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows produced by scans.
    pub rows_scanned: usize,
    /// Rows produced by all operators together.
    pub rows_produced: usize,
    /// Rows emitted by the top of each query plan.
    pub rows_output: usize,
    /// Objects inserted or merged into the target.
    pub objects_written: usize,
    /// Attribute-index probes that replaced hash-join build sides.
    pub index_probes: usize,
    /// Probe-side cache hits: driving rows whose composite key was already
    /// probed, answered without touching the attribute index again. Skewed
    /// workloads repeat the same hot keys constantly, so this is where the
    /// zipfian head stops costing per-row work.
    pub probe_cache_hits: usize,
    /// Peak number of rows materialised by any single operator — the memory
    /// high-water mark that exposes accidental cross products.
    pub max_intermediate_rows: usize,
    /// Scans executed under a delta restriction
    /// ([`EvalCtx::restrict_scan`]): how much of the work was answered from
    /// changed-identity sets instead of full extents.
    pub restricted_scans: usize,
    /// Filter conjuncts the planner pushed into backend scan providers
    /// instead of evaluating in the executor (federated pipelines only).
    pub pushed_filters: usize,
    /// Rows the scan providers read from their backends before applying
    /// pushed filters.
    pub provider_rows_in: usize,
    /// Rows the scan providers actually streamed into the source instances
    /// after pushed filters; `provider_rows_in - provider_rows_out` is the
    /// work the executor never saw.
    pub provider_rows_out: usize,
}

impl ExecStats {
    /// Accumulate another stats value into this one.
    pub fn absorb(&mut self, other: ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.rows_produced += other.rows_produced;
        self.rows_output += other.rows_output;
        self.objects_written += other.objects_written;
        self.index_probes += other.index_probes;
        self.probe_cache_hits += other.probe_cache_hits;
        self.max_intermediate_rows = self.max_intermediate_rows.max(other.max_intermediate_rows);
        self.restricted_scans += other.restricted_scans;
        self.pushed_filters += other.pushed_filters;
        self.provider_rows_in += other.provider_rows_in;
        self.provider_rows_out += other.provider_rows_out;
    }

    pub(crate) fn record_operator_output(&mut self, rows: usize) {
        self.rows_produced += rows;
        self.max_intermediate_rows = self.max_intermediate_rows.max(rows);
    }

    /// Merge a parallel worker's probe counters. Row accounting is *not*
    /// merged here: the owning operator records its merged output once,
    /// exactly like its sequential counterpart, so parallel and sequential
    /// totals stay equal by construction.
    fn absorb_probe_counters(&mut self, other: &ExecStats) {
        self.index_probes += other.index_probes;
        self.probe_cache_hits += other.probe_cache_hits;
    }
}

/// Telemetry of the columnar executor ([`crate::columnar`]). Kept separate
/// from [`ExecStats`] on purpose: the columnar/row differential contract is
/// *equal* `ExecStats` for both paths, so which path ran must not leak into
/// them. Reported by the Morphase pipeline alongside the exec stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ColumnarStats {
    /// Scan→filter→project towers answered by the columnar executor.
    pub pipelines: usize,
    /// Rows those pipelines scanned batch-at-a-time.
    pub batch_rows: usize,
    /// Column chunks the pipelines read.
    pub chunks: usize,
}

impl ColumnarStats {
    /// Accumulate another telemetry value into this one.
    pub fn absorb(&mut self, other: &ColumnarStats) {
        self.pipelines += other.pipelines;
        self.batch_rows += other.batch_rows;
        self.chunks += other.chunks;
    }

    /// True if no columnar pipeline ran.
    pub fn is_empty(&self) -> bool {
        self.pipelines == 0
    }
}

// ---------------------------------------------------------------------------
// Parallel scaffolding: partition, spawn, merge in input order.
// ---------------------------------------------------------------------------

/// Decide whether an operator over `rows` input items may run in parallel,
/// given the expressions its workers would evaluate. Returns the worker count
/// (>= 2) or `None` for the sequential path.
///
/// Skolem creation mutates the shared factory, whose identity numbering
/// depends on first-call order, so a Skolem-bearing expression is only
/// admitted when the operator supports the two-phase key-claim protocol
/// (`claims_ok` — [`Plan::Map`] and the insert actions) *and* every Skolem
/// sits in value position ([`Expr::skolem_parallel_safe`]); otherwise the
/// operator pins itself to the sequential path.
pub(crate) fn parallel_workers<'e>(
    ctx: &EvalCtx<'_>,
    rows: usize,
    claims_ok: bool,
    exprs: impl IntoIterator<Item = &'e Expr>,
) -> Option<usize> {
    let threads = ctx.parallelism().threads();
    if threads <= 1 || rows < 2 || rows < ctx.parallel_min_rows() {
        return None;
    }
    for expr in exprs {
        if expr.contains_skolem() && !(claims_ok && expr.skolem_parallel_safe()) {
            return None;
        }
    }
    Some(threads.min(rows))
}

/// Dispatch one job per partition to the context's persistent
/// [`wol_model::WorkerPool`], each with a fresh *sequential* context over the
/// same shared sources and its own [`ExecStats`], and collect each
/// partition's result in partition order. With `with_claims`, each worker
/// context carries a [`SkolemClaims`] arena (the claim phase of the
/// two-phase protocol) and the arenas come back partition-ordered for the
/// caller to resolve; without it, workers cannot touch the Skolem factory at
/// all, which [`parallel_workers`] already guaranteed is never needed.
///
/// The workers' probe counters are merged into `stats` (row accounting stays
/// with the calling operator) and the full per-worker stats are accumulated
/// into the context's per-shard breakdown. The error of the *earliest*
/// partition propagates — the same error a sequential left-to-right run
/// would have hit first.
#[allow(clippy::type_complexity)]
pub(crate) fn run_partitioned<T, A, F>(
    ctx: &mut EvalCtx<'_>,
    stats: &mut ExecStats,
    partitions: Vec<A>,
    with_claims: bool,
    work: F,
) -> Result<(Vec<T>, Vec<Option<SkolemClaims>>)>
where
    T: Send,
    A: Send,
    F: Fn(A, &mut EvalCtx<'_>, &mut ExecStats) -> Result<T> + Sync,
{
    let pool = ctx.pool();
    let sources = ctx.sources().to_vec();
    let sources = &sources;
    let restrictions = ctx.scan_restrictions_map().clone();
    let restrictions = &restrictions;
    let work = &work;
    let jobs: Vec<wol_model::Job<'_, (ExecStats, Option<SkolemClaims>, Result<T>)>> = partitions
        .into_iter()
        .map(|partition| {
            Box::new(move || {
                let claims = with_claims.then(SkolemClaims::new);
                let mut worker_ctx = EvalCtx::worker(sources, claims);
                worker_ctx.set_scan_restrictions(restrictions.clone());
                let mut worker_stats = ExecStats::default();
                let result = work(partition, &mut worker_ctx, &mut worker_stats);
                (worker_stats, worker_ctx.take_claims(), result)
            }) as wol_model::Job<'_, _>
        })
        .collect();
    let outcomes = pool.scope(jobs);
    let worker_stats: Vec<ExecStats> = outcomes.iter().map(|(ws, _, _)| *ws).collect();
    ctx.absorb_shard_stats(&worker_stats);
    for ws in &worker_stats {
        stats.absorb_probe_counters(ws);
    }
    let mut arenas = Vec::with_capacity(outcomes.len());
    let mut results = Vec::with_capacity(outcomes.len());
    for (_, claims, result) in outcomes {
        arenas.push(claims);
        results.push(result);
    }
    let results: Result<Vec<T>> = results.into_iter().collect();
    Ok((results?, arenas))
}

/// Run `work` over contiguous chunks of `0..n` on `workers` pool workers
/// and concatenate the chunk results in input order. Claim-free: the callers
/// of this helper never evaluate Skolem-bearing expressions.
fn run_chunked<T, F>(
    ctx: &mut EvalCtx<'_>,
    stats: &mut ExecStats,
    n: usize,
    workers: usize,
    work: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(Range<usize>, &mut EvalCtx<'_>, &mut ExecStats) -> Result<Vec<T>> + Sync,
{
    let (chunks, _) = run_partitioned(ctx, stats, chunk_ranges(n, workers), false, work)?;
    Ok(chunks.into_iter().flatten().collect())
}

/// Whether a `Map`'s bindings, evaluated in order against one claim arena,
/// keep every provisional identity in value position — including identities
/// laundered through an *earlier binding of the same Map* (a later binding
/// inspecting `Var(t)` where `t` was bound to a Skolem-bearing expression
/// would observe the provisional, not the memoised real identity a
/// sequential run sees). Input rows are already resolved by the upstream
/// operator's resolution barrier, so only the Map's own bindings can taint
/// — the taint set starts empty.
fn map_bindings_claim_safe(bindings: &[(String, Expr)]) -> bool {
    crate::expr::bindings_claim_safe(bindings, &mut std::collections::BTreeSet::new())
}

/// Resolve the claim arenas a partitioned operator brought back (partition
/// order = input order) and rewrite every provisional identity in `rows` to
/// its final one. After this, no provisional identity survives in the
/// operator's output — downstream operators and the target only ever see the
/// identities a sequential run would have produced.
fn resolve_rows(rows: &mut [Row], arenas: Vec<Option<SkolemClaims>>, ctx: &mut EvalCtx<'_>) {
    let arenas: Vec<SkolemClaims> = arenas.into_iter().flatten().collect();
    if arenas.is_empty() {
        return;
    }
    let resolved = ctx.resolve_claim_arenas(&arenas);
    if resolved.is_empty() {
        return;
    }
    for row in rows.iter_mut() {
        for value in row.values_mut() {
            if value.contains_oid() {
                *value = rewrite_resolved(value, &resolved);
            }
        }
    }
}

/// Hash of a composite key tuple, used to assign build rows and driving rows
/// to shards. [`std::collections::hash_map::DefaultHasher`] is deterministic
/// across processes, so shard assignment — and everything derived from it,
/// like per-shard statistics — is reproducible.
fn key_tuple_hash(values: &[Value]) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    values.hash(&mut hasher);
    hasher.finish()
}

/// Evaluate one side's key tuples for every row, in parallel chunks when
/// worth it. `None` entries are rows whose keys hit a missing optional
/// attribute — unjoinable, exactly as the sequential paths treat them.
fn eval_key_tuples(
    rows: &[Row],
    keys: &[&Expr],
    workers: usize,
    ctx: &mut EvalCtx<'_>,
    stats: &mut ExecStats,
) -> Result<Vec<Option<Vec<Value>>>> {
    if rows.len() < 2 * workers {
        return rows.iter().map(|row| eval_keys(keys, row, ctx)).collect();
    }
    run_chunked(ctx, stats, rows.len(), workers, |range, wctx, _ws| {
        rows[range]
            .iter()
            .map(|row| eval_keys(keys, row, wctx))
            .collect()
    })
}

/// One executed join operator's actual output row count, recorded (in
/// post-order) when the context's join trace is enabled
/// ([`EvalCtx::enable_join_trace`]). Reports pair these with the planner's
/// [`crate::optimizer::estimate_join_outputs`] estimates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinActual {
    /// Operator kind (`HashJoin`, `NestedLoopJoin`, `CrossJoin`).
    pub kind: &'static str,
    /// Rows the join actually produced.
    pub rows: usize,
}

/// A hash-join side answerable through the instances' attribute indexes
/// ([`wol_model::index`]): a bare class scan with at least one key expression
/// that is a single attribute projection off the scanned variable.
pub(crate) struct IndexableSide {
    class: wol_model::ClassName,
    var: String,
    /// Attribute the index is probed on.
    attr: String,
    /// Which key pair the probe answers; the remaining pairs are verified
    /// against each candidate object.
    key_index: usize,
}

/// Detect an indexable side. `keys` yields this side's key expression from
/// each `(left, right)` pair. Shared with the planner
/// ([`crate::optimizer`]), which orients hash-join sides precisely so this
/// fast path fires — the two must never diverge. (The planner only asks
/// *whether* a side is indexable; which key the executor actually probes on
/// is chosen per run by [`best_indexable_side`].)
pub(crate) fn indexable_side<'p>(
    plan: &Plan,
    keys: impl Iterator<Item = &'p Expr>,
) -> Option<IndexableSide> {
    let Plan::Scan { class, var } = plan else {
        return None;
    };
    for (key_index, key) in keys.enumerate() {
        if let Expr::Proj(base, attr) = key {
            if matches!(base.as_ref(), Expr::Var(v) if v == var) {
                return Some(IndexableSide {
                    class: class.clone(),
                    var: var.clone(),
                    attr: attr.clone(),
                    key_index,
                });
            }
        }
    }
    None
}

/// Among a composite key's probe-able attributes, pick the one whose index
/// yields the smallest *expected* candidate list, estimated from the
/// attribute's own histogram as `Σ_v count(v)² / entries` — the mean bucket
/// length weighted by how often each value is probed. On skewed data this is
/// the difference between probing a zipfian attribute (hot keys return huge
/// candidate lists, over and over) and probing a uniform one; plain ndv
/// cannot see it. Histograms are only consulted when there is a genuine
/// choice (two or more probe-able keys) — the common single-key join keeps
/// the old O(1) detection.
fn best_indexable_side(
    plan: &Plan,
    keys: &[&Expr],
    sources: &[&Instance],
) -> Option<IndexableSide> {
    let Plan::Scan { class, var } = plan else {
        return None;
    };
    let candidates: Vec<(usize, &String)> = keys
        .iter()
        .enumerate()
        .filter_map(|(key_index, key)| match key {
            Expr::Proj(base, attr) if matches!(base.as_ref(), Expr::Var(v) if v == var) => {
                Some((key_index, attr))
            }
            _ => None,
        })
        .collect();
    if candidates.len() <= 1 {
        return candidates
            .into_iter()
            .next()
            .map(|(key_index, attr)| IndexableSide {
                class: class.clone(),
                var: var.clone(),
                attr: attr.clone(),
                key_index,
            });
    }
    let mut best: Option<(f64, IndexableSide)> = None;
    for (key_index, attr) in candidates {
        let mut self_join_rows = 0.0;
        let mut entries = 0.0;
        for source in sources {
            let histogram = source.attr_histogram(class, attr);
            self_join_rows += histogram.eq_join_rows(&histogram);
            entries += histogram.entries() as f64;
        }
        let expected = if entries > 0.0 {
            self_join_rows / entries
        } else {
            f64::INFINITY
        };
        if best.as_ref().is_none_or(|(cost, _)| expected < *cost) {
            best = Some((
                expected,
                IndexableSide {
                    class: class.clone(),
                    var: var.clone(),
                    attr: attr.clone(),
                    key_index,
                },
            ));
        }
    }
    best.map(|(_, side)| side)
}

/// The number of identities a plan side's underlying scan can emit under
/// the active restrictions: the restriction set's size if the scan is
/// pinned, the class's full extent size otherwise. Filters and maps only
/// shrink the row count, so this is an upper bound on the side's driving
/// cost — enough to orient a delta join so the Δ-pinned slot drives.
/// `None` when the side bottoms out in anything but a scan.
fn scan_cardinality(plan: &Plan, ctx: &EvalCtx<'_>) -> Option<usize> {
    match plan {
        Plan::Scan { class, var } => Some(match ctx.scan_restriction(var) {
            Some(keep) => keep.len(),
            None => ctx
                .sources()
                .iter()
                .map(|source| source.extent_size(class))
                .sum(),
        }),
        Plan::Filter { input, .. } | Plan::Map { input, .. } => scan_cardinality(input, ctx),
        _ => None,
    }
}

/// Describe the output order of a plan as a sequence of scan variables, or
/// `None` if no such description exists.
///
/// When this returns `Some(vars)`, a fresh (unrestricted) [`run_plan`] emits
/// rows in the lexicographic order of the tuple `(row[vars[0]], row[vars[1]],
/// …)` of object identities, and that tuple is unique per output row. The
/// incremental maintainer leans on both facts: the tuple is a stable row key
/// (source identities are never reused), and a `BTreeMap` over those keys
/// replays rows in exactly the order a from-scratch run would produce them.
///
/// The rules mirror the operator implementations in this module:
///
/// * `Scan` emits its extent in ascending identity order → `[var]`.
/// * `Filter` and `Map` preserve input order (dropping rows keeps relative
///   order, so lexicographic order over the surviving keys still holds).
/// * `NestedLoopJoin` and `CrossJoin` emit `lex(left, right)`.
/// * `HashJoin` emits `lex(probe side, build side)`: the generic path probes
///   with `right` against a build over `left`, while the index fast path
///   drives from the non-indexed side with matches in ascending extent order.
///   For unrestricted runs — the only ones this contract covers — the branch
///   is statically determined by [`indexable_side`] (statistics only pick
///   *which attribute* to probe, never whether; delta restrictions may flip
///   the driving side, but restricted emission order is not part of the
///   contract), so the order is knowable without row counts.
/// * `Distinct` keeps first occurrences, which depends on value equality
///   rather than identity tuples → untraceable.
pub fn scan_order_trace(plan: &Plan) -> Option<Vec<String>> {
    fn trace(plan: &Plan, out: &mut Vec<String>) -> bool {
        match plan {
            Plan::Scan { var, .. } => {
                out.push(var.clone());
                true
            }
            Plan::Filter { input, .. } | Plan::Map { input, .. } => trace(input, out),
            Plan::Distinct { .. } => false,
            Plan::NestedLoopJoin { left, right, .. } | Plan::CrossJoin { left, right } => {
                trace(left, out) && trace(right, out)
            }
            Plan::HashJoin { left, right, keys } => {
                let left_keys: Vec<&Expr> = keys.iter().map(|(l, _)| l).collect();
                let right_keys: Vec<&Expr> = keys.iter().map(|(_, r)| r).collect();
                if indexable_side(left, left_keys.iter().copied()).is_none()
                    && indexable_side(right, right_keys.iter().copied()).is_some()
                {
                    // Fast path probes the right index driving from `left`:
                    // left varies slowest.
                    trace(left, out) && trace(right, out)
                } else {
                    // Fast path over a left index and the generic path both
                    // probe with `right`: right varies slowest.
                    trace(right, out) && trace(left, out)
                }
            }
        }
    }
    let mut out = Vec::new();
    trace(plan, &mut out).then_some(out)
}

/// The hash-join index fast path: drive the join from `driving`'s rows,
/// answer key pair `side.key_index` by probing the indexable scan side
/// through the source instances' attribute indexes, and verify any remaining
/// key pairs against each candidate.
///
/// Repeated composite keys — the common case on skewed data, where a few hot
/// values dominate the driving side — are answered from a probe-side cache:
/// the verified identity list for a key tuple is computed once and replayed
/// for every later driving row carrying the same tuple
/// ([`ExecStats::probe_cache_hits`]).
fn probe_join(
    driving: &Plan,
    driving_keys: &[&Expr],
    scan_keys: &[&Expr],
    side: &IndexableSide,
    ctx: &mut EvalCtx<'_>,
    stats: &mut ExecStats,
) -> Result<Vec<Row>> {
    let driving_rows = run_plan(driving, ctx, stats)?;
    let gate = driving_keys.iter().chain(scan_keys.iter()).copied();
    if let Some(workers) = parallel_workers(ctx, driving_rows.len(), false, gate) {
        return par_probe_join(
            &driving_rows,
            driving_keys,
            scan_keys,
            side,
            workers,
            ctx,
            stats,
        );
    }
    let sources = ctx.sources().to_vec();
    // The cache is sound only when every scan-side key expression ranges
    // over the scanned variable alone — then the verified identity list is a
    // function of the key tuple. The planner only emits such keys, but the
    // join shape is public API, so the executor re-checks.
    let cacheable = scan_keys
        .iter()
        .all(|k| k.var_set().iter().all(|v| v == &side.var));
    let mut cache: HashMap<Vec<Value>, Vec<Oid>> = HashMap::new();
    let mut rows = Vec::new();
    'rows: for row in &driving_rows {
        let mut key_values = Vec::with_capacity(driving_keys.len());
        for key in driving_keys {
            match eval(key, row, ctx) {
                Ok(value) => key_values.push(value),
                Err(CplError::BadValue(_)) => continue 'rows,
                Err(other) => return Err(other),
            }
        }
        if cacheable {
            let matched = match cache.get(&key_values) {
                Some(hit) => {
                    stats.probe_cache_hits += 1;
                    hit
                }
                None => {
                    let fresh = verified_candidates(
                        &Row::new(),
                        &key_values,
                        scan_keys,
                        side,
                        &sources,
                        ctx,
                        stats,
                    )?;
                    cache.entry(key_values.clone()).or_insert(fresh)
                }
            };
            for oid in matched {
                let mut combined = row.clone();
                combined.insert(side.var.clone(), Value::Oid(oid.clone()));
                rows.push(combined);
            }
        } else {
            for oid in verified_candidates(row, &key_values, scan_keys, side, &sources, ctx, stats)?
            {
                let mut combined = row.clone();
                combined.insert(side.var.clone(), Value::Oid(oid));
                rows.push(combined);
            }
        }
    }
    ctx.record_join("HashJoin", rows.len());
    stats.record_operator_output(rows.len());
    Ok(rows)
}

/// The parallel index fast path: driving rows are sharded *by key hash* when
/// the probe cache is usable — a distinct key, its index probe and its cache
/// entry then belong to exactly one worker, so the merged probe and cache-hit
/// counts equal the sequential run's — and by contiguous chunks otherwise
/// (every row probes regardless, so ownership is irrelevant). Each worker
/// emits `(driving row index, produced rows)` pairs; reassembling them in
/// driving-row order reproduces the sequential output stream exactly.
#[allow(clippy::too_many_arguments)]
fn par_probe_join(
    driving_rows: &[Row],
    driving_keys: &[&Expr],
    scan_keys: &[&Expr],
    side: &IndexableSide,
    workers: usize,
    ctx: &mut EvalCtx<'_>,
    stats: &mut ExecStats,
) -> Result<Vec<Row>> {
    let key_tuples = eval_key_tuples(driving_rows, driving_keys, workers, ctx, stats)?;
    // Same soundness condition as the sequential cache (see `probe_join`).
    let cacheable = scan_keys
        .iter()
        .all(|k| k.var_set().iter().all(|v| v == &side.var));
    /// One unit of probe work: a hash-owned set of driving rows (the worker
    /// probes and caches the keys it owns), or a stolen contiguous sub-range
    /// of one *hot* key's rows sharing a pre-probed match list.
    enum ProbeShard {
        Owned(Vec<usize>),
        Hot {
            indices: Vec<usize>,
            matched: std::sync::Arc<Vec<Oid>>,
            lead: bool,
        },
    }
    let mut shards: Vec<ProbeShard> = Vec::new();
    if cacheable {
        // Group keyed rows per key tuple, in first-occurrence order.
        let mut groups: Vec<(&[Value], Vec<usize>)> = Vec::new();
        let mut group_of: HashMap<&[Value], usize> = HashMap::new();
        let mut keyed = 0usize;
        for (idx, key) in key_tuples.iter().enumerate() {
            if let Some(values) = key {
                keyed += 1;
                match group_of.get(values.as_slice()) {
                    Some(&g) => groups[g].1.push(idx),
                    None => {
                        group_of.insert(values.as_slice(), groups.len());
                        groups.push((values.as_slice(), vec![idx]));
                    }
                }
            }
        }
        // A zipfian heavy hitter hashes all of its rows into one shard and
        // serializes the join behind one worker. Keys holding at least twice
        // a fair share of the rows are split into contiguous sub-ranges that
        // idle workers steal; everyone shares the key's single pre-probed
        // match list, and the lead sub-job accounts for the one probe the
        // sequential run would have paid (the rest are cache hits), so the
        // merged totals are unchanged. Submission-order reassembly is
        // untouched — sub-jobs still emit per-driving-row slots.
        let hot_threshold = (2 * keyed.div_ceil(workers)).max(8);
        let mut owned: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (values, indices) in groups {
            if indices.len() >= hot_threshold {
                let mut scratch = ExecStats::default();
                let wsources = ctx.sources().to_vec();
                let matched = std::sync::Arc::new(verified_candidates(
                    &Row::new(),
                    values,
                    scan_keys,
                    side,
                    &wsources,
                    ctx,
                    &mut scratch,
                )?);
                for (part, range) in chunk_ranges(indices.len(), workers).into_iter().enumerate() {
                    shards.push(ProbeShard::Hot {
                        indices: indices[range].to_vec(),
                        matched: matched.clone(),
                        lead: part == 0,
                    });
                }
            } else {
                owned[(key_tuple_hash(values) % workers as u64) as usize].extend(indices);
            }
        }
        shards.extend(
            owned
                .into_iter()
                .filter(|indices| !indices.is_empty())
                .map(ProbeShard::Owned),
        );
    } else {
        // Every row probes regardless, so ownership is irrelevant: plain
        // contiguous chunks, dropping unkeyed rows and empty chunks.
        shards.extend(
            chunk_ranges(key_tuples.len(), workers)
                .into_iter()
                .map(|range| {
                    range
                        .filter(|idx| key_tuples[*idx].is_some())
                        .collect::<Vec<_>>()
                })
                .filter(|indices| !indices.is_empty())
                .map(ProbeShard::Owned),
        );
    }
    let key_tuples = &key_tuples;
    /// Rows produced for one driving-row slot, keyed for order-preserving
    /// reassembly.
    type SlotRows = Vec<(usize, Vec<Row>)>;
    let (per_shard, _): (Vec<SlotRows>, _) =
        run_partitioned(ctx, stats, shards, false, |shard, wctx, ws| {
            let indices = match &shard {
                ProbeShard::Owned(indices) => indices,
                ProbeShard::Hot { indices, .. } => indices,
            };
            let mut out = Vec::with_capacity(indices.len());
            if let ProbeShard::Hot {
                indices,
                matched,
                lead,
            } = &shard
            {
                // The lead sub-job carries the key's one probe; every other
                // row of the key — here and in sibling sub-jobs — is a cache
                // hit, exactly matching the sequential accounting.
                if *lead {
                    ws.index_probes += 1;
                    ws.probe_cache_hits += indices.len() - 1;
                } else {
                    ws.probe_cache_hits += indices.len();
                }
                for &idx in indices {
                    let row = &driving_rows[idx];
                    let mut produced = Vec::with_capacity(matched.len());
                    for oid in matched.iter() {
                        let mut combined = row.clone();
                        combined.insert(side.var.clone(), Value::Oid(oid.clone()));
                        produced.push(combined);
                    }
                    ws.rows_produced += produced.len();
                    out.push((idx, produced));
                }
                return Ok(out);
            }
            let wsources = wctx.sources().to_vec();
            let mut cache: HashMap<&[Value], Vec<Oid>> = HashMap::new();
            for &idx in indices {
                let key_values = key_tuples[idx]
                    .as_ref()
                    .expect("only keyed rows are partitioned");
                let row = &driving_rows[idx];
                let matched: Vec<Oid> = if cacheable {
                    match cache.get(key_values.as_slice()) {
                        Some(hit) => {
                            ws.probe_cache_hits += 1;
                            hit.clone()
                        }
                        None => {
                            let fresh = verified_candidates(
                                &Row::new(),
                                key_values,
                                scan_keys,
                                side,
                                &wsources,
                                wctx,
                                ws,
                            )?;
                            cache.insert(key_values.as_slice(), fresh.clone());
                            fresh
                        }
                    }
                } else {
                    verified_candidates(row, key_values, scan_keys, side, &wsources, wctx, ws)?
                };
                let mut produced = Vec::with_capacity(matched.len());
                for oid in matched {
                    let mut combined = row.clone();
                    combined.insert(side.var.clone(), Value::Oid(oid));
                    produced.push(combined);
                }
                ws.rows_produced += produced.len();
                out.push((idx, produced));
            }
            Ok(out)
        })?;
    let mut per_row: Vec<Vec<Row>> = vec![Vec::new(); driving_rows.len()];
    for shard in per_shard {
        for (idx, produced) in shard {
            per_row[idx] = produced;
        }
    }
    let rows: Vec<Row> = per_row.into_iter().flatten().collect();
    ctx.record_join("HashJoin", rows.len());
    stats.record_operator_output(rows.len());
    Ok(rows)
}

/// Probe the attribute index for the scan-side candidates of one key tuple
/// and verify every non-probed key pair against each candidate, extending
/// `base` with the candidate's identity for the verification.
fn verified_candidates(
    base: &Row,
    key_values: &[Value],
    scan_keys: &[&Expr],
    side: &IndexableSide,
    sources: &[&Instance],
    ctx: &mut EvalCtx<'_>,
    stats: &mut ExecStats,
) -> Result<Vec<Oid>> {
    stats.index_probes += 1;
    // The probed scan's delta restriction applies here, as a candidate
    // filter: the index answers from the full extent, so membership in the
    // restriction set is re-checked per candidate identity.
    let restriction = ctx.scan_restriction(&side.var).cloned();
    let mut matched = Vec::new();
    for instance in sources {
        'candidates: for oid in
            instance.lookup_by_attr(&side.class, &side.attr, &key_values[side.key_index])
        {
            if restriction
                .as_ref()
                .is_some_and(|keep| !keep.contains(&oid))
            {
                continue 'candidates;
            }
            let mut probe_row = base.clone();
            probe_row.insert(side.var.clone(), Value::Oid(oid.clone()));
            for (i, scan_key) in scan_keys.iter().enumerate() {
                if i == side.key_index {
                    continue;
                }
                match eval(scan_key, &probe_row, ctx) {
                    Ok(value) if value == key_values[i] => {}
                    Ok(_) | Err(CplError::BadValue(_)) => continue 'candidates,
                    Err(other) => return Err(other),
                }
            }
            matched.push(oid);
        }
    }
    Ok(matched)
}

/// The parallel generic hash join. The *build side* is partitioned by key
/// hash into per-worker shard tables (each worker builds the table for the
/// keys it owns, scanning the pre-evaluated key tuples), then the probe side
/// is processed in contiguous chunks: each probe row looks up the shard that
/// owns its key's hash. A key's build rows all live in one shard, in build
/// order, and probe chunks merge in probe order — so the output row stream is
/// identical to the sequential build-then-probe loop.
fn par_hash_join(
    left_rows: &[Row],
    right_rows: &[Row],
    left_keys: &[&Expr],
    right_keys: &[&Expr],
    workers: usize,
    ctx: &mut EvalCtx<'_>,
    stats: &mut ExecStats,
) -> Result<Vec<Row>> {
    let left_tuples = eval_key_tuples(left_rows, left_keys, workers, ctx, stats)?;
    let right_tuples = eval_key_tuples(right_rows, right_keys, workers, ctx, stats)?;
    let left_hashes: Vec<u64> = left_tuples
        .iter()
        .map(|tuple| tuple.as_ref().map_or(0, |values| key_tuple_hash(values)))
        .collect();
    let (left_tuples, left_hashes) = (&left_tuples, &left_hashes);
    // Shard tables map a key tuple to the build-row indices carrying it, in
    // ascending (build) order.
    let (shard_tables, _): (Vec<HashMap<&[Value], Vec<usize>>>, _) = run_partitioned(
        ctx,
        stats,
        (0..workers).collect(),
        false,
        |shard, _wctx, _ws| {
            let mut table: HashMap<&[Value], Vec<usize>> = HashMap::new();
            for (idx, tuple) in left_tuples.iter().enumerate() {
                if let Some(values) = tuple {
                    if left_hashes[idx] % workers as u64 == shard as u64 {
                        table.entry(values.as_slice()).or_default().push(idx);
                    }
                }
            }
            Ok(table)
        },
    )?;
    let (shard_tables, right_tuples) = (&shard_tables, &right_tuples);
    run_chunked(ctx, stats, right_rows.len(), workers, |range, _wctx, ws| {
        let mut out = Vec::new();
        for idx in range {
            let Some(values) = &right_tuples[idx] else {
                continue;
            };
            let table = &shard_tables[(key_tuple_hash(values) % workers as u64) as usize];
            if let Some(matches) = table.get(values.as_slice()) {
                for &left_idx in matches {
                    let mut combined = left_rows[left_idx].clone();
                    combined.extend(right_rows[idx].clone());
                    out.push(combined);
                }
            }
        }
        ws.rows_produced += out.len();
        Ok(out)
    })
}

/// Evaluate all keys of one join side against a row; `None` when a missing
/// optional attribute makes the row unjoinable.
fn eval_keys(keys: &[&Expr], row: &Row, ctx: &mut EvalCtx<'_>) -> Result<Option<Vec<Value>>> {
    let mut values = Vec::with_capacity(keys.len());
    for key in keys {
        match eval(key, row, ctx) {
            Ok(value) => values.push(value),
            Err(CplError::BadValue(_)) => return Ok(None),
            Err(other) => return Err(other),
        }
    }
    Ok(Some(values))
}

/// Run a plan against the context, returning its rows.
pub fn run_plan(plan: &Plan, ctx: &mut EvalCtx<'_>, stats: &mut ExecStats) -> Result<Vec<Row>> {
    // Scan→filter→project towers over a single source run batch-at-a-time on
    // the columnar executor (identical rows and stats, proven differentially);
    // everything else — and every bail-out — takes the row path below.
    if let Some(rows) = crate::columnar::try_run(plan, ctx, stats)? {
        return Ok(rows);
    }
    let rows = match plan {
        Plan::Scan { class, var } => {
            let restriction = ctx.scan_restriction(var).cloned();
            if restriction.is_some() {
                stats.restricted_scans += 1;
            }
            let mut rows = Vec::new();
            for instance in ctx.sources().to_vec() {
                for oid in instance.extent(class) {
                    if let Some(keep) = &restriction {
                        if !keep.contains(oid) {
                            continue;
                        }
                    }
                    let mut row = Row::new();
                    row.insert(var.clone(), Value::Oid(oid.clone()));
                    rows.push(row);
                }
            }
            stats.rows_scanned += rows.len();
            rows
        }
        Plan::Filter { input, predicate } => {
            // Fused scan+filter: partition the class extent itself into
            // contiguous chunks, so row construction and the predicate both
            // run on the workers.
            if let Plan::Scan { class, var } = input.as_ref() {
                let extent_total: usize = ctx.sources().iter().map(|i| i.extent_size(class)).sum();
                if let Some(workers) = parallel_workers(ctx, extent_total, false, [predicate]) {
                    let restriction = ctx.scan_restriction(var).cloned();
                    if restriction.is_some() {
                        stats.restricted_scans += 1;
                    }
                    let oids: Vec<Oid> = ctx
                        .sources()
                        .iter()
                        .flat_map(|instance| instance.extent(class))
                        .filter(|oid| restriction.as_ref().is_none_or(|keep| keep.contains(*oid)))
                        .cloned()
                        .collect();
                    // Account for the scan exactly like the sequential path
                    // would have: every extent row is scanned and produced by
                    // the scan operator before the filter keeps its subset.
                    stats.rows_scanned += oids.len();
                    stats.record_operator_output(oids.len());
                    let oids = &oids;
                    let rows = run_chunked(ctx, stats, oids.len(), workers, |range, wctx, ws| {
                        ws.rows_scanned += range.len();
                        let mut kept = Vec::new();
                        for oid in &oids[range] {
                            let row = Row::from([(var.clone(), Value::Oid(oid.clone()))]);
                            if eval_predicate(predicate, &row, wctx)? {
                                kept.push(row);
                            }
                        }
                        ws.rows_produced += kept.len();
                        Ok(kept)
                    })?;
                    stats.record_operator_output(rows.len());
                    return Ok(rows);
                }
            }
            let input_rows = run_plan(input, ctx, stats)?;
            match parallel_workers(ctx, input_rows.len(), false, [predicate]) {
                Some(workers) => {
                    let input_rows = &input_rows;
                    run_chunked(ctx, stats, input_rows.len(), workers, |range, wctx, ws| {
                        let mut kept = Vec::new();
                        for row in &input_rows[range] {
                            if eval_predicate(predicate, row, wctx)? {
                                kept.push(row.clone());
                            }
                        }
                        ws.rows_produced += kept.len();
                        Ok(kept)
                    })?
                }
                None => {
                    let mut rows = Vec::new();
                    for row in input_rows {
                        if eval_predicate(predicate, &row, ctx)? {
                            rows.push(row);
                        }
                    }
                    rows
                }
            }
        }
        Plan::Map { input, bindings } => {
            let input_rows = run_plan(input, ctx, stats)?;
            let gate = bindings.iter().map(|(_, e)| e);
            let claims_ok = map_bindings_claim_safe(bindings);
            match parallel_workers(ctx, input_rows.len(), claims_ok, gate) {
                Some(workers) => {
                    // Skolem-bearing bindings run under the two-phase
                    // key-claim protocol: workers mint provisional
                    // identities into per-worker arenas, and the arenas are
                    // resolved in partition (= input) order afterwards, so
                    // the final numbering — and the rewritten rows — are
                    // bit-identical to a sequential evaluation.
                    let with_claims = bindings.iter().any(|(_, e)| e.contains_skolem());
                    let input_rows = &input_rows;
                    let (chunks, arenas) = run_partitioned(
                        ctx,
                        stats,
                        chunk_ranges(input_rows.len(), workers),
                        with_claims,
                        |range, wctx, ws| {
                            let mut out = Vec::new();
                            'rows: for row in &input_rows[range] {
                                let mut extended = row.clone();
                                for (var, expr) in bindings {
                                    match eval(expr, &extended, wctx) {
                                        Ok(value) => {
                                            extended.insert(var.clone(), value);
                                        }
                                        // Missing optional attribute: the row
                                        // does not contribute.
                                        Err(CplError::BadValue(_)) => continue 'rows,
                                        Err(other) => return Err(other),
                                    }
                                }
                                out.push(extended);
                            }
                            ws.rows_produced += out.len();
                            Ok(out)
                        },
                    )?;
                    let mut rows: Vec<Row> = chunks.into_iter().flatten().collect();
                    resolve_rows(&mut rows, arenas, ctx);
                    rows
                }
                None => {
                    let mut rows = Vec::new();
                    for mut row in input_rows {
                        let mut ok = true;
                        for (var, expr) in bindings {
                            match eval(expr, &row, ctx) {
                                Ok(value) => {
                                    row.insert(var.clone(), value);
                                }
                                Err(CplError::BadValue(_)) => {
                                    // A missing optional attribute: the row
                                    // does not contribute (mirrors
                                    // clause-matching semantics).
                                    ok = false;
                                    break;
                                }
                                Err(other) => return Err(other),
                            }
                        }
                        if ok {
                            rows.push(row);
                        }
                    }
                    rows
                }
            }
        }
        Plan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let left_rows = run_plan(left, ctx, stats)?;
            let right_rows = run_plan(right, ctx, stats)?;
            let rows = match parallel_workers(ctx, left_rows.len(), false, predicate.iter()) {
                Some(workers) => {
                    let (left_rows, right_rows) = (&left_rows, &right_rows);
                    run_chunked(ctx, stats, left_rows.len(), workers, |range, wctx, ws| {
                        let mut out = Vec::new();
                        for l in &left_rows[range] {
                            for r in right_rows {
                                let mut combined = l.clone();
                                combined.extend(r.clone());
                                let keep = match predicate {
                                    Some(p) => eval_predicate(p, &combined, wctx)?,
                                    None => true,
                                };
                                if keep {
                                    out.push(combined);
                                }
                            }
                        }
                        ws.rows_produced += out.len();
                        Ok(out)
                    })?
                }
                None => {
                    let mut rows = Vec::new();
                    for l in &left_rows {
                        for r in &right_rows {
                            let mut combined = l.clone();
                            combined.extend(r.clone());
                            let keep = match predicate {
                                Some(p) => eval_predicate(p, &combined, ctx)?,
                                None => true,
                            };
                            if keep {
                                rows.push(combined);
                            }
                        }
                    }
                    rows
                }
            };
            ctx.record_join("NestedLoopJoin", rows.len());
            rows
        }
        Plan::CrossJoin { left, right } => {
            let left_rows = run_plan(left, ctx, stats)?;
            let right_rows = run_plan(right, ctx, stats)?;
            let rows = match parallel_workers(ctx, left_rows.len(), false, std::iter::empty()) {
                Some(workers) => {
                    let (left_rows, right_rows) = (&left_rows, &right_rows);
                    run_chunked(ctx, stats, left_rows.len(), workers, |range, _wctx, ws| {
                        let mut out = Vec::with_capacity(range.len() * right_rows.len());
                        for l in &left_rows[range] {
                            for r in right_rows {
                                let mut combined = l.clone();
                                combined.extend(r.clone());
                                out.push(combined);
                            }
                        }
                        ws.rows_produced += out.len();
                        Ok(out)
                    })?
                }
                None => {
                    let mut rows = Vec::with_capacity(left_rows.len() * right_rows.len());
                    for l in &left_rows {
                        for r in &right_rows {
                            let mut combined = l.clone();
                            combined.extend(r.clone());
                            rows.push(combined);
                        }
                    }
                    rows
                }
            };
            ctx.record_join("CrossJoin", rows.len());
            rows
        }
        Plan::HashJoin { left, right, keys } => {
            let left_keys: Vec<&Expr> = keys.iter().map(|(l, _)| l).collect();
            let right_keys: Vec<&Expr> = keys.iter().map(|(_, r)| r).collect();
            // Index fast path: when one side is a bare scan with a key that
            // is a single attribute of the scanned object, skip materialising
            // (and hash building over) that side entirely — drive the join
            // from the other side's rows and answer each key with an
            // attribute-index probe into the source instances, probing on
            // the attribute with the smallest expected candidate lists.
            // Delta restrictions keep the fast path: the driving side
            // evaluates through `run_plan`, where its own restriction
            // applies, and `verified_candidates` post-filters probe results
            // by the indexed variable's set (the attribute indexes answer
            // from the full extent and would otherwise resurrect filtered
            // identities). This is exactly what keeps semi-naive delta
            // joins O(delta): a handful of delta rows drive index probes
            // instead of a full build/probe pass — even in the rotations
            // that pin the indexed side to the "old" (near-full) extent.
            let left_side = best_indexable_side(left, &left_keys, ctx.sources());
            let right_side = best_indexable_side(right, &right_keys, ctx.sources());
            // When both orientations are available and a rotation is active,
            // drive from whichever side is pinned to the smaller identity
            // set — the pivot slot's Δ — so the delta rows do the probing,
            // whichever side of the join they happen to land on.
            if ctx.has_scan_restrictions() {
                if let (Some(ls), Some(rs)) = (&left_side, &right_side) {
                    if let (Some(dl), Some(dr)) =
                        (scan_cardinality(left, ctx), scan_cardinality(right, ctx))
                    {
                        let side = if dl < dr { rs } else { ls };
                        let (driving, driving_keys, scan_keys) = if dl < dr {
                            (left, &left_keys, &right_keys)
                        } else {
                            (right, &right_keys, &left_keys)
                        };
                        return probe_join(driving, driving_keys, scan_keys, side, ctx, stats);
                    }
                }
            }
            if let Some(side) = left_side {
                return probe_join(right, &right_keys, &left_keys, &side, ctx, stats);
            }
            if let Some(side) = right_side {
                return probe_join(left, &left_keys, &right_keys, &side, ctx, stats);
            }
            let left_rows = run_plan(left, ctx, stats)?;
            let right_rows = run_plan(right, ctx, stats)?;
            let gate = keys.iter().flat_map(|(l, r)| [l, r]);
            let rows =
                match parallel_workers(ctx, left_rows.len().max(right_rows.len()), false, gate) {
                    Some(workers) => par_hash_join(
                        &left_rows,
                        &right_rows,
                        &left_keys,
                        &right_keys,
                        workers,
                        ctx,
                        stats,
                    )?,
                    None => {
                        // Build on the left, probe with the right.
                        let mut table: BTreeMap<Vec<Value>, Vec<&Row>> = BTreeMap::new();
                        for l in &left_rows {
                            if let Some(key) = eval_keys(&left_keys, l, ctx)? {
                                table.entry(key).or_default().push(l);
                            }
                        }
                        let mut rows = Vec::new();
                        for r in &right_rows {
                            let Some(key) = eval_keys(&right_keys, r, ctx)? else {
                                continue;
                            };
                            if let Some(matches) = table.get(&key) {
                                for l in matches {
                                    let mut combined = (*l).clone();
                                    combined.extend(r.clone());
                                    rows.push(combined);
                                }
                            }
                        }
                        rows
                    }
                };
            ctx.record_join("HashJoin", rows.len());
            rows
        }
        Plan::Distinct { input } => {
            let mut seen = std::collections::BTreeSet::new();
            let mut rows = Vec::new();
            for row in run_plan(input, ctx, stats)? {
                if seen.insert(row.clone()) {
                    rows.push(row);
                }
            }
            rows
        }
    };
    stats.record_operator_output(rows.len());
    Ok(rows)
}

/// One row's evaluated insert actions from the claim phase: the key and
/// record *values* (possibly holding provisional identities) plus the claim
/// ranges their evaluation recorded, so the apply phase can interleave claim
/// resolution with the per-row `Mk_C` calls exactly as a sequential run
/// interleaved them.
#[derive(Debug)]
struct EvaluatedInsert {
    key: Value,
    record: Value,
    key_claims: Range<usize>,
    attr_claims: Range<usize>,
}

/// Phase-1 product of one query evaluated on a claim context
/// ([`EvalCtx::claim_worker`]): everything needed to rebuild the target
/// bit-identically on the main thread, in program order. Queries whose rows
/// are independent of each other can therefore be *evaluated* concurrently —
/// the expensive part — while [`apply_evaluated_query`] keeps application
/// (and with it Skolem numbering, merge conflicts, and `objects_written`
/// accounting) strictly sequential.
#[derive(Debug)]
pub struct EvaluatedQuery {
    /// The worker's claim arena, covering plan and insert evaluation.
    arena: Option<SkolemClaims>,
    /// Claims recorded while the plan ran; resolved before any insert (a
    /// sequential run materialises all plan rows before inserting).
    plan_claims: Range<usize>,
    /// Per output row, in row order: the evaluated inserts, or the error the
    /// evaluation hit (rows before it still apply, exactly like the
    /// sequential loop that stops mid-way).
    per_row: Vec<Result<Vec<EvaluatedInsert>>>,
    /// Rows the plan emitted.
    rows: usize,
}

impl EvaluatedQuery {
    /// Rows the query's plan emitted during the claim phase.
    pub fn rows_output(&self) -> usize {
        self.rows
    }
}

/// The claim-phase insert-evaluation loop shared by [`evaluate_query`] and
/// the partitioned path of [`execute_query`]: evaluate every insert's key
/// and attributes per row, delimiting the Skolem claims each evaluation
/// recorded. Stops at the first erroring row (recording the error in its
/// slot), exactly where the sequential loop would have stopped.
fn evaluate_insert_rows<'r>(
    query: &Query,
    rows: impl Iterator<Item = &'r Row>,
    ctx: &mut EvalCtx<'_>,
) -> Vec<Result<Vec<EvaluatedInsert>>> {
    let mut out = Vec::new();
    'rows: for row in rows {
        let mut evaluated = Vec::with_capacity(query.inserts.len());
        for insert in &query.inserts {
            let before_key = ctx.claims_mark();
            let key = match eval(&insert.key, row, ctx) {
                Ok(value) => value,
                Err(err) => {
                    out.push(Err(err));
                    break 'rows;
                }
            };
            let after_key = ctx.claims_mark();
            let mut fields = BTreeMap::new();
            for (label, expr) in &insert.attrs {
                match eval(expr, row, ctx) {
                    Ok(value) => {
                        fields.insert(label.clone(), value);
                    }
                    Err(err) => {
                        out.push(Err(err));
                        break 'rows;
                    }
                }
            }
            evaluated.push(EvaluatedInsert {
                key,
                record: Value::Record(fields),
                key_claims: before_key..after_key,
                attr_claims: after_key..ctx.claims_mark(),
            });
        }
        out.push(Ok(evaluated));
    }
    out
}

/// Evaluate one query's rows and insert values without touching any shared
/// state: run the plan and the insert expressions on `ctx` — a claim context
/// ([`EvalCtx::claim_worker`]) when called off the main thread — recording
/// Skolem claims for the apply phase. `stats` (the worker's) absorbs the
/// execution counters, including `rows_output`. The returned
/// [`EvaluatedQuery`] must be applied with [`apply_evaluated_query`] on the
/// owning (main) context.
pub fn evaluate_query(
    query: &Query,
    ctx: &mut EvalCtx<'_>,
    stats: &mut ExecStats,
) -> Result<EvaluatedQuery> {
    let rows = run_plan(&query.plan, ctx, stats)?;
    stats.rows_output += rows.len();
    let plan_claims = 0..ctx.claims_mark();
    let per_row = evaluate_insert_rows(query, rows.iter(), ctx);
    Ok(EvaluatedQuery {
        arena: ctx.take_claims(),
        plan_claims,
        per_row,
        rows: rows.len(),
    })
}

/// Phase 2 of query execution: resolve the evaluated query's Skolem claims
/// against the owning context's factory — plan claims first, then per row
/// interleaved with the insert-key `Mk_C` calls, reproducing the sequential
/// first-call order exactly — and merge the rewritten records into `target`
/// in row order. The produced target is bit-identical to running the whole
/// query sequentially on `ctx`. `stats` gains the `objects_written` of the
/// application; the evaluation counters (including `rows_output`) were
/// already recorded by [`evaluate_query`] into the worker's stats.
pub fn apply_evaluated_query(
    query: &Query,
    evaluated: EvaluatedQuery,
    ctx: &mut EvalCtx<'_>,
    target: &mut Instance,
    stats: &mut ExecStats,
) -> Result<()> {
    let mut resolved: BTreeMap<Oid, Oid> = BTreeMap::new();
    if let Some(arena) = &evaluated.arena {
        let range = evaluated.plan_claims.clone();
        arena.replay_range_into(range, &mut resolved, &mut |class, key| {
            ctx.mk_skolem(class, key)
        });
    }
    apply_insert_rows(
        query,
        vec![(evaluated.arena, evaluated.per_row)],
        &mut resolved,
        ctx,
        target,
        stats,
    )
}

/// The shared apply loop: for each worker's chunk in partition (= row)
/// order, for each row in order, resolve the row's key claims, mint the
/// insert identity, resolve its attribute claims, rewrite, and merge —
/// stopping at the first row whose evaluation errored, after the rows before
/// it have been applied, exactly like the sequential loop.
#[allow(clippy::type_complexity)]
fn apply_insert_rows(
    query: &Query,
    chunks: Vec<(Option<SkolemClaims>, Vec<Result<Vec<EvaluatedInsert>>>)>,
    resolved: &mut BTreeMap<Oid, Oid>,
    ctx: &mut EvalCtx<'_>,
    target: &mut Instance,
    stats: &mut ExecStats,
) -> Result<()> {
    for (arena, rows) in chunks {
        for row in rows {
            let evaluated = row?;
            for (insert, ev) in query.inserts.iter().zip(evaluated) {
                if let Some(arena) = &arena {
                    arena.replay_range_into(ev.key_claims, resolved, &mut |class, key| {
                        ctx.mk_skolem(class, key)
                    });
                }
                // Move the evaluated values straight through when there is
                // nothing to rewrite — the common claims-free case.
                let key = if resolved.is_empty() || !ev.key.contains_oid() {
                    ev.key
                } else {
                    rewrite_resolved(&ev.key, resolved)
                };
                let oid = ctx.mk_skolem(&insert.class, &key);
                if let Some(arena) = &arena {
                    arena.replay_range_into(ev.attr_claims, resolved, &mut |class, key| {
                        ctx.mk_skolem(class, key)
                    });
                }
                let record = if resolved.is_empty() || !ev.record.contains_oid() {
                    ev.record
                } else {
                    rewrite_resolved(&ev.record, resolved)
                };
                write_object(target, oid, record, &query.name, stats)?;
            }
        }
    }
    Ok(())
}

/// Insert or key-merge one evaluated object into the target.
fn write_object(
    target: &mut Instance,
    oid: Oid,
    record: Value,
    query_name: &str,
    stats: &mut ExecStats,
) -> Result<()> {
    match target.value(&oid) {
        None => {
            target.insert(oid, record)?;
            stats.objects_written += 1;
        }
        Some(existing) => {
            let merged = existing.merge_records(&record).ok_or_else(|| {
                CplError::ConflictingInsert(format!(
                    "object {oid} receives conflicting values from query `{query_name}`"
                ))
            })?;
            target.update(&oid, merged)?;
            stats.objects_written += 1;
        }
    }
    Ok(())
}

/// Execute one query: run its plan and apply its insert actions to `target`.
///
/// With enough rows and a worker budget, the insert *evaluation* — key and
/// attribute expressions per row, the expensive part of Skolem-heavy loads —
/// runs partitioned on the pool under the two-phase key-claim protocol, while
/// application stays on the calling thread in row order; the target is
/// bit-identical to the sequential loop at every thread count.
pub fn execute_query(
    query: &Query,
    ctx: &mut EvalCtx<'_>,
    target: &mut Instance,
    stats: &mut ExecStats,
) -> Result<()> {
    let rows = run_plan(&query.plan, ctx, stats)?;
    stats.rows_output += rows.len();
    let gate = query
        .inserts
        .iter()
        .flat_map(|i| std::iter::once(&i.key).chain(i.attrs.iter().map(|(_, e)| e)));
    if let Some(workers) = parallel_workers(ctx, rows.len(), true, gate) {
        return parallel_inserts(query, &rows, workers, ctx, target, stats);
    }
    for row in rows {
        for insert in &query.inserts {
            let key = eval(&insert.key, &row, ctx)?;
            let oid = ctx.mk_skolem(&insert.class, &key);
            let mut fields = BTreeMap::new();
            for (label, expr) in &insert.attrs {
                fields.insert(label.clone(), eval(expr, &row, ctx)?);
            }
            write_object(target, oid, Value::Record(fields), &query.name, stats)?;
        }
    }
    Ok(())
}

/// The partitioned insert-evaluation path of [`execute_query`]: workers
/// evaluate contiguous row chunks (claiming Skolem identities into
/// per-worker arenas), then the claims resolve and the records apply on the
/// calling thread in row order — parallel Skolem insertion, deterministic by
/// the two-phase protocol.
fn parallel_inserts(
    query: &Query,
    rows: &[Row],
    workers: usize,
    ctx: &mut EvalCtx<'_>,
    target: &mut Instance,
    stats: &mut ExecStats,
) -> Result<()> {
    let with_claims = query
        .inserts
        .iter()
        .any(|i| i.key.contains_skolem() || i.attrs.iter().any(|(_, e)| e.contains_skolem()));
    let (chunks, arenas) = run_partitioned(
        ctx,
        stats,
        chunk_ranges(rows.len(), workers),
        with_claims,
        |range, wctx, _ws| Ok(evaluate_insert_rows(query, rows[range].iter(), wctx)),
    )?;
    let mut resolved = BTreeMap::new();
    apply_insert_rows(
        query,
        arenas.into_iter().zip(chunks).collect(),
        &mut resolved,
        ctx,
        target,
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::InsertAction;
    use wol_model::{ClassName, Oid, Parallelism};

    fn euro_instance() -> Instance {
        let mut inst = Instance::new("euro");
        let uk = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("United Kingdom")),
                ("language", Value::str("English")),
                ("currency", Value::str("sterling")),
            ]),
        );
        let fr = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("France")),
                ("language", Value::str("French")),
                ("currency", Value::str("franc")),
            ]),
        );
        for (name, capital, country) in [
            ("London", true, &uk),
            ("Manchester", false, &uk),
            ("Paris", true, &fr),
        ] {
            inst.insert_fresh(
                &ClassName::new("CityE"),
                Value::record([
                    ("name", Value::str(name)),
                    ("is_capital", Value::bool(capital)),
                    ("country", Value::oid(country.clone())),
                ]),
            );
        }
        inst
    }

    #[test]
    fn scan_filter_map() {
        let inst = euro_instance();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let plan = Plan::scan("CityE", "E")
            .filter(Expr::var("E").proj("is_capital"))
            .map(vec![("N".to_string(), Expr::var("E").proj("name"))]);
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r["N"] == Value::str("London")));
        assert!(rows.iter().any(|r| r["N"] == Value::str("Paris")));
        assert_eq!(stats.rows_scanned, 3);
        assert!(stats.rows_produced >= 5);
    }

    #[test]
    fn nested_loop_and_hash_join_agree() {
        let inst = euro_instance();
        let refs = [&inst];
        let mut stats = ExecStats::default();
        let nl = Plan::scan("CityE", "E").join(
            Plan::scan("CountryE", "C"),
            Some(
                Expr::var("E")
                    .path("country.name")
                    .eq(Expr::var("C").proj("name")),
            ),
        );
        let hj = Plan::scan("CityE", "E").hash_join(
            Plan::scan("CountryE", "C"),
            Expr::var("E").path("country.name"),
            Expr::var("C").proj("name"),
        );
        let mut ctx = EvalCtx::new(&refs);
        let mut nl_rows = run_plan(&nl, &mut ctx, &mut stats).unwrap();
        let mut ctx = EvalCtx::new(&refs);
        let mut hj_rows = run_plan(&hj, &mut ctx, &mut stats).unwrap();
        nl_rows.sort();
        hj_rows.sort();
        // Hash join builds on the left and probes with the right, so the row
        // contents are identical even if produced in a different order.
        assert_eq!(nl_rows.len(), 3);
        assert_eq!(nl_rows, hj_rows);
    }

    #[test]
    fn hash_join_scan_side_is_answered_by_index_probes() {
        let inst = euro_instance();
        let refs = [&inst];
        let mut stats = ExecStats::default();
        // The CountryE side is a bare scan keyed by a single attribute, so it
        // is answered by attribute-index probes: it contributes no scanned
        // rows, and one probe per driving row.
        let plan = Plan::scan("CityE", "E").hash_join(
            Plan::scan("CountryE", "C"),
            Expr::var("E").path("country.name"),
            Expr::var("C").proj("name"),
        );
        let mut ctx = EvalCtx::new(&refs);
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(stats.rows_scanned, 3); // CityE only
        assert_eq!(stats.index_probes, 2); // one per *distinct* key value
        assert_eq!(stats.probe_cache_hits, 1); // Manchester reuses the UK probe
                                               // A join whose scan side is keyed by a computed expression falls back
                                               // to the generic hash join.
        let mut stats = ExecStats::default();
        let generic = Plan::scan("CityE", "E").hash_join(
            Plan::scan("CountryE", "C"),
            Expr::var("E").path("country.name"),
            Expr::var("C").path("capital.name"),
        );
        let mut ctx = EvalCtx::new(&refs);
        let _ = run_plan(&generic, &mut ctx, &mut stats);
        assert_eq!(stats.index_probes, 0);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let inst = euro_instance();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let plan = Plan::scan("CityE", "E")
            .map(vec![(
                "L".to_string(),
                Expr::var("E").path("country.language"),
            )])
            .map(vec![("K".to_string(), Expr::var("L"))])
            .distinct();
        // Keep only the language column to create duplicates.
        let plan = Plan::Map {
            input: Box::new(plan),
            bindings: vec![],
        };
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 3); // rows still distinct because E differs
                                   // Project to just the language: build rows manually to check distinct.
        let lang_only = Plan::Distinct {
            input: Box::new(Plan::Map {
                input: Box::new(Plan::scan("CityE", "E")),
                bindings: vec![("L".to_string(), Expr::var("E").path("country.language"))],
            }),
        };
        let _ = lang_only; // The E binding keeps rows distinct; full projection
                           // is exercised through query execution below.
    }

    #[test]
    fn execute_query_builds_target_and_merges_by_key() {
        let inst = euro_instance();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let mut target = Instance::new("target");

        // Two queries that each contribute part of CountryT, keyed by name —
        // the CPL-level counterpart of partial clauses merged through keys.
        let q1 = Query {
            name: "T4".to_string(),
            plan: Plan::scan("CountryE", "C")
                .map(vec![("N".to_string(), Expr::var("C").proj("name"))]),
            inserts: vec![InsertAction {
                class: ClassName::new("CountryT"),
                key: Expr::var("N"),
                attrs: vec![
                    ("name".to_string(), Expr::var("N")),
                    ("language".to_string(), Expr::var("C").proj("language")),
                ],
            }],
        };
        let q2 = Query {
            name: "T5".to_string(),
            plan: Plan::scan("CountryE", "C")
                .map(vec![("N".to_string(), Expr::var("C").proj("name"))]),
            inserts: vec![InsertAction {
                class: ClassName::new("CountryT"),
                key: Expr::var("N"),
                attrs: vec![("currency".to_string(), Expr::var("C").proj("currency"))],
            }],
        };
        execute_query(&q1, &mut ctx, &mut target, &mut stats).unwrap();
        execute_query(&q2, &mut ctx, &mut target, &mut stats).unwrap();
        assert_eq!(target.extent_size(&ClassName::new("CountryT")), 2);
        let france = target
            .find_by_field(&ClassName::new("CountryT"), "name", &Value::str("France"))
            .unwrap();
        let value = target.value(france).unwrap();
        assert_eq!(value.project("language"), Some(&Value::str("French")));
        assert_eq!(value.project("currency"), Some(&Value::str("franc")));
        assert_eq!(stats.objects_written, 4);
        assert!(stats.rows_output >= 4);
    }

    #[test]
    fn conflicting_inserts_detected() {
        let inst = euro_instance();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let mut target = Instance::new("target");
        let make = |name: &str, value: Expr| Query {
            name: name.to_string(),
            plan: Plan::scan("CountryE", "C")
                .map(vec![("N".to_string(), Expr::var("C").proj("name"))]),
            inserts: vec![InsertAction {
                class: ClassName::new("CountryT"),
                key: Expr::var("N"),
                attrs: vec![("currency".to_string(), value)],
            }],
        };
        execute_query(
            &make("a", Expr::var("C").proj("currency")),
            &mut ctx,
            &mut target,
            &mut stats,
        )
        .unwrap();
        let err = execute_query(
            &make("b", Expr::Const(Value::str("euro"))),
            &mut ctx,
            &mut target,
            &mut stats,
        )
        .unwrap_err();
        assert!(matches!(err, CplError::ConflictingInsert(_)));
    }

    #[test]
    fn dangling_reference_reported() {
        let mut inst = Instance::new("euro");
        let ghost = Oid::new(ClassName::new("CountryE"), 42);
        inst.insert_fresh(
            &ClassName::new("CityE"),
            Value::record([
                ("name", Value::str("Atlantis")),
                ("country", Value::oid(ghost)),
            ]),
        );
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let plan = Plan::scan("CityE", "E")
            .map(vec![("N".to_string(), Expr::var("E").path("country.name"))]);
        // The dangling reference surfaces as a BadValue, which Map treats as a
        // non-contributing row rather than a hard error.
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = ExecStats {
            rows_scanned: 1,
            rows_produced: 2,
            rows_output: 3,
            objects_written: 4,
            index_probes: 5,
            probe_cache_hits: 7,
            max_intermediate_rows: 6,
            restricted_scans: 8,
            pushed_filters: 9,
            provider_rows_in: 10,
            provider_rows_out: 11,
        };
        let b = a;
        a.absorb(b);
        assert_eq!(a.rows_scanned, 2);
        assert_eq!(a.restricted_scans, 16);
        assert_eq!(a.pushed_filters, 18);
        assert_eq!(a.provider_rows_in, 20);
        assert_eq!(a.provider_rows_out, 22);
        assert_eq!(a.objects_written, 8);
        assert_eq!(a.index_probes, 10);
        assert_eq!(a.probe_cache_hits, 14);
        // The high-water mark combines by max, not by sum.
        assert_eq!(a.max_intermediate_rows, 6);
    }

    #[test]
    fn cross_join_is_a_product_and_raises_the_high_water_mark() {
        let inst = euro_instance();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let plan = Plan::scan("CityE", "E").cross(Plan::scan("CountryE", "C"));
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 6); // 3 cities x 2 countries
        assert_eq!(stats.max_intermediate_rows, 6);
    }

    #[test]
    fn multi_key_hash_join_matches_composite_keys() {
        let inst = euro_instance();
        let refs = [&inst];
        // Join cities to countries on (name-of-country, language): composite
        // key through the generic hash path (left side is not a bare scan).
        let left = Plan::scan("CityE", "E").filter(Expr::var("E").proj("is_capital"));
        let plan = left.hash_join_multi(
            Plan::scan("CityE", "F").filter(Expr::var("F").proj("is_capital")),
            vec![
                (
                    Expr::var("E").path("country.name"),
                    Expr::var("F").path("country.name"),
                ),
                (Expr::var("E").proj("name"), Expr::var("F").proj("name")),
            ],
        );
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        // Each capital joins only with itself under the composite key.
        assert_eq!(rows.len(), 2);
        assert_eq!(stats.index_probes, 0);
    }

    #[test]
    fn probe_cache_replays_verified_matches_for_repeated_keys() {
        // Many driving rows sharing one hot key: exactly one index probe,
        // the rest served from the cache, and the row multiset is identical
        // to the generic (uncached) hash join.
        let mut inst = Instance::new("skew");
        let hub = inst.insert_fresh(
            &ClassName::new("CloneS"),
            Value::record([("name", Value::str("hot"))]),
        );
        let _ = hub;
        inst.insert_fresh(
            &ClassName::new("CloneS"),
            Value::record([("name", Value::str("cold"))]),
        );
        for i in 0..10 {
            inst.insert_fresh(
                &ClassName::new("MarkerS"),
                Value::record([
                    ("name", Value::str(format!("m{i}"))),
                    ("clone_name", Value::str(if i < 9 { "hot" } else { "cold" })),
                ]),
            );
        }
        let refs = [&inst];
        // The marker side is not a bare scan (a Map sits on it), so the
        // CloneS scan is the indexable side and the 10 marker rows drive.
        let probed = Plan::scan("MarkerS", "M").map(vec![]).hash_join(
            Plan::scan("CloneS", "C"),
            Expr::var("M").proj("clone_name"),
            Expr::var("C").proj("name"),
        );
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let mut rows = run_plan(&probed, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(stats.index_probes, 2); // "hot" once, "cold" once
        assert_eq!(stats.probe_cache_hits, 8);
        // Same rows as the generic hash join over pre-materialised sides.
        let generic = Plan::scan("MarkerS", "M")
            .map(vec![("K".to_string(), Expr::var("M").proj("clone_name"))])
            .hash_join(
                Plan::scan("CloneS", "C").map(vec![("N".to_string(), Expr::var("C").proj("name"))]),
                Expr::var("K"),
                Expr::var("N"),
            );
        let mut ctx = EvalCtx::new(&refs);
        let mut generic_stats = ExecStats::default();
        let mut generic_rows = run_plan(&generic, &mut ctx, &mut generic_stats).unwrap();
        assert_eq!(generic_stats.index_probes, 0);
        // Strip the helper bindings before comparing.
        for row in generic_rows.iter_mut() {
            row.remove("K");
            row.remove("N");
        }
        rows.sort();
        generic_rows.sort();
        assert_eq!(rows, generic_rows);
    }

    #[test]
    fn join_trace_records_actual_rows_in_post_order() {
        let inst = euro_instance();
        let refs = [&inst];
        // A hash join (probed) nested under a cross join.
        let plan = Plan::scan("CityE", "E")
            .hash_join(
                Plan::scan("CountryE", "C"),
                Expr::var("E").path("country.name"),
                Expr::var("C").proj("name"),
            )
            .cross(Plan::scan("CountryE", "D"));
        let mut ctx = EvalCtx::new(&refs);
        ctx.enable_join_trace();
        let mut stats = ExecStats::default();
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 6);
        let trace = ctx.take_join_trace();
        assert_eq!(
            trace,
            vec![
                JoinActual {
                    kind: "HashJoin",
                    rows: 3
                },
                JoinActual {
                    kind: "CrossJoin",
                    rows: 6
                },
            ]
        );
        // Draining leaves the trace enabled but empty.
        assert!(ctx.take_join_trace().is_empty());
        // Without enabling, nothing is recorded.
        let mut ctx = EvalCtx::new(&refs);
        let _ = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert!(ctx.take_join_trace().is_empty());
    }

    /// Run `plan` sequentially and at each of the given thread counts (with
    /// the parallel threshold lowered so tiny inputs still exercise the
    /// partitioned paths), asserting the parallel run reproduces the
    /// sequential row *stream* (same rows, same order) and that the merged
    /// [`ExecStats`] equal the sequential totals. Returns the sequential
    /// rows and stats for further assertions.
    fn assert_parallel_matches_sequential(
        plan: &Plan,
        inst: &Instance,
        thread_counts: &[usize],
    ) -> (Vec<Row>, ExecStats) {
        let refs = [inst];
        let mut seq_ctx = EvalCtx::new(&refs).with_parallelism(Parallelism::sequential());
        let mut seq_stats = ExecStats::default();
        let seq_rows = run_plan(plan, &mut seq_ctx, &mut seq_stats).expect("sequential run");
        assert!(
            seq_ctx.shard_stats().is_empty(),
            "a sequential run must not spawn workers"
        );
        for &threads in thread_counts {
            let mut par_ctx = EvalCtx::new(&refs).with_parallelism(Parallelism::new(threads));
            par_ctx.set_parallel_min_rows(1);
            let mut par_stats = ExecStats::default();
            let par_rows = run_plan(plan, &mut par_ctx, &mut par_stats).expect("parallel run");
            assert_eq!(
                par_rows, seq_rows,
                "row stream diverged at {threads} threads"
            );
            assert_eq!(
                par_stats, seq_stats,
                "merged ExecStats diverged at {threads} threads"
            );
        }
        (seq_rows, seq_stats)
    }

    /// Partition edge case: empty extents. Scan+filter and a hash join whose
    /// build side is empty must behave identically in parallel — including
    /// producing zero rows, zero probes, and equal stats.
    #[test]
    fn parallel_partitioning_handles_empty_extents() {
        let inst = euro_instance();
        let filter = Plan::scan("GhostClass", "G").filter(Expr::var("G").proj("is_capital"));
        let (rows, _) = assert_parallel_matches_sequential(&filter, &inst, &[2, 4, 8]);
        assert!(rows.is_empty());
        let join = Plan::scan("CityE", "E").map(vec![]).hash_join(
            Plan::scan("GhostClass", "G"),
            Expr::var("E").proj("name"),
            Expr::var("G").proj("name"),
        );
        let (rows, _) = assert_parallel_matches_sequential(&join, &inst, &[2, 4, 8]);
        assert!(rows.is_empty());
    }

    /// Partition edge case: a single-row build side still joins correctly
    /// from every shard, and the merged stats equal the sequential run's.
    #[test]
    fn parallel_partitioning_handles_single_row_build_sides() {
        let mut inst = euro_instance();
        inst.insert_fresh(
            &ClassName::new("Capital"),
            Value::record([("of", Value::str("France"))]),
        );
        // The Capital side is a single-row bare scan probed by index.
        let probed = Plan::scan("CityE", "E").hash_join(
            Plan::scan("Capital", "K"),
            Expr::var("E").path("country.name"),
            Expr::var("K").proj("of"),
        );
        let (rows, stats) = assert_parallel_matches_sequential(&probed, &inst, &[2, 4, 8]);
        assert_eq!(rows.len(), 1); // only Paris reaches the single capital row
        assert!(stats.index_probes > 0);
        // The generic path (build side behind a Map) over the same data.
        let generic = Plan::scan("CityE", "E").map(vec![]).hash_join(
            Plan::scan("Capital", "K").map(vec![("O".to_string(), Expr::var("K").proj("of"))]),
            Expr::var("E").path("country.name"),
            Expr::var("O"),
        );
        let (rows, stats) = assert_parallel_matches_sequential(&generic, &inst, &[2, 4, 8]);
        assert_eq!(rows.len(), 1);
        assert_eq!(stats.index_probes, 0);
    }

    /// Partition edge case: a zipfian heavy hitter — every driving row
    /// carries the same key, so every row hashes to one shard. The other
    /// shards go idle, the hot key is probed exactly once (all later rows hit
    /// the one worker's cache), and the totals equal the sequential run's.
    #[test]
    fn parallel_partitioning_handles_all_rows_hashing_to_one_shard() {
        let mut inst = Instance::new("skew");
        inst.insert_fresh(
            &ClassName::new("CloneS"),
            Value::record([("name", Value::str("hot"))]),
        );
        for i in 0..12 {
            inst.insert_fresh(
                &ClassName::new("MarkerS"),
                Value::record([
                    ("name", Value::str(format!("m{i}"))),
                    ("clone_name", Value::str("hot")),
                ]),
            );
        }
        let probed = Plan::scan("MarkerS", "M").map(vec![]).hash_join(
            Plan::scan("CloneS", "C"),
            Expr::var("M").proj("clone_name"),
            Expr::var("C").proj("name"),
        );
        let (rows, stats) = assert_parallel_matches_sequential(&probed, &inst, &[2, 4, 8]);
        assert_eq!(rows.len(), 12);
        assert_eq!(stats.index_probes, 1); // the hot key probes once, ever
        assert_eq!(stats.probe_cache_hits, 11);
    }

    /// A zipfian hot key is split into stolen contiguous sub-ranges instead
    /// of serializing behind one hash-owned shard: the merged totals still
    /// equal the sequential run's (one probe per distinct key), and several
    /// shard slots report cache hits for the same key.
    #[test]
    fn hot_key_probe_work_is_stolen_across_shards() {
        let mut inst = Instance::new("zipf");
        inst.insert_fresh(
            &ClassName::new("CloneS"),
            Value::record([("name", Value::str("hot"))]),
        );
        for i in 0..4 {
            inst.insert_fresh(
                &ClassName::new("CloneS"),
                Value::record([("name", Value::str(format!("cold{i}")))]),
            );
        }
        for i in 0..64 {
            inst.insert_fresh(
                &ClassName::new("MarkerS"),
                Value::record([
                    ("name", Value::str(format!("m{i}"))),
                    ("clone_name", Value::str("hot")),
                ]),
            );
        }
        for i in 0..8 {
            inst.insert_fresh(
                &ClassName::new("MarkerS"),
                Value::record([
                    ("name", Value::str(format!("n{i}"))),
                    ("clone_name", Value::str(format!("cold{}", i % 4))),
                ]),
            );
        }
        let probed = Plan::scan("MarkerS", "M").map(vec![]).hash_join(
            Plan::scan("CloneS", "C"),
            Expr::var("M").proj("clone_name"),
            Expr::var("C").proj("name"),
        );
        let (rows, stats) = assert_parallel_matches_sequential(&probed, &inst, &[2, 4, 8]);
        assert_eq!(rows.len(), 72);
        assert_eq!(stats.index_probes, 5); // one per distinct key, hot included
        assert_eq!(stats.probe_cache_hits, 67);
        // At 4 workers the hot key's 64 rows outweigh twice a fair share
        // (36), so its rows are split into sub-ranges stolen by idle
        // workers: more than one shard slot reports cache hits, instead of
        // one shard absorbing all 64 rows.
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs).with_parallelism(Parallelism::new(4));
        ctx.set_parallel_min_rows(1);
        let mut stats = ExecStats::default();
        let _ = run_plan(&probed, &mut ctx, &mut stats).unwrap();
        let stealing = ctx
            .take_shard_stats()
            .iter()
            .filter(|s| s.probe_cache_hits > 0)
            .count();
        assert!(
            stealing >= 4,
            "expected stolen hot sub-ranges, got {stealing} shards with hits"
        );
    }

    /// Partition edge case: more threads than rows. `chunk_ranges` never
    /// emits empty chunks, so a 3-row input at 8 threads runs on 3 workers
    /// and still reproduces the sequential stream and stats.
    #[test]
    fn parallel_partitioning_handles_more_threads_than_rows() {
        let inst = euro_instance();
        let filter = Plan::scan("CityE", "E").filter(Expr::var("E").proj("is_capital"));
        let (rows, stats) = assert_parallel_matches_sequential(&filter, &inst, &[8, 16]);
        assert_eq!(rows.len(), 2);
        assert_eq!(stats.rows_scanned, 3);
        let cross = Plan::scan("CityE", "E").cross(Plan::scan("CountryE", "C"));
        let (rows, _) = assert_parallel_matches_sequential(&cross, &inst, &[8]);
        assert_eq!(rows.len(), 6);
        let nested = Plan::scan("CityE", "E").join(
            Plan::scan("CountryE", "C"),
            Some(
                Expr::var("E")
                    .path("country.name")
                    .eq(Expr::var("C").proj("name")),
            ),
        );
        let (rows, _) = assert_parallel_matches_sequential(&nested, &inst, &[8]);
        assert_eq!(rows.len(), 3);
    }

    /// Maps parallelise over row chunks, including rows dropped for missing
    /// optional attributes, without disturbing order or stats.
    #[test]
    fn parallel_map_matches_sequential_including_dropped_rows() {
        let mut inst = euro_instance();
        // An object missing `country` drops out of the Map in both modes.
        inst.insert_fresh(
            &ClassName::new("CityE"),
            Value::record([("name", Value::str("Atlantis"))]),
        );
        let plan = Plan::scan("CityE", "E")
            .map(vec![("N".to_string(), Expr::var("E").path("country.name"))]);
        let (rows, _) = assert_parallel_matches_sequential(&plan, &inst, &[2, 4, 8]);
        assert_eq!(rows.len(), 3); // Atlantis contributed nothing
    }

    /// A value-position Skolem `Map` runs **parallel** under the two-phase
    /// key-claim protocol: workers claim provisional identities, resolution
    /// replays them in input order, and the produced rows — identities
    /// included — are bit-identical to the sequential run at every thread
    /// count, with the shared factory left in the identical state.
    #[test]
    fn skolem_maps_parallelise_under_the_key_claim_protocol() {
        let inst = euro_instance();
        let refs = [&inst];
        // Duplicate keys across rows (all three cities share one country
        // attribute path through `country.language` for UK cities), so
        // claims collide across workers.
        let plan = Plan::scan("CityE", "E").map(vec![
            (
                "T".to_string(),
                Expr::Skolem(
                    ClassName::new("CityT"),
                    Box::new(Expr::var("E").proj("name")),
                ),
            ),
            (
                "L".to_string(),
                Expr::Skolem(
                    ClassName::new("LangT"),
                    Box::new(Expr::var("E").path("country.language")),
                ),
            ),
        ]);
        let mut seq_ctx = EvalCtx::new(&refs).with_parallelism(Parallelism::sequential());
        let mut seq_stats = ExecStats::default();
        let seq_rows = run_plan(&plan, &mut seq_ctx, &mut seq_stats).unwrap();
        assert_eq!(seq_rows.len(), 3);
        assert_eq!(seq_ctx.factory.count(&ClassName::new("LangT")), 2);
        for threads in [2usize, 4, 8] {
            let mut ctx = EvalCtx::new(&refs).with_parallelism(Parallelism::new(threads));
            ctx.set_parallel_min_rows(1);
            let mut stats = ExecStats::default();
            let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
            assert!(
                !ctx.shard_stats().is_empty(),
                "the map must have gone parallel"
            );
            assert_eq!(rows, seq_rows, "rows diverged at {threads} threads");
            assert_eq!(stats, seq_stats, "stats diverged at {threads} threads");
            // The factory ended in the sequential state: same identities,
            // numbered in sequential first-call order.
            assert_eq!(ctx.factory.count(&ClassName::new("CityT")), 3);
            assert_eq!(ctx.factory.count(&ClassName::new("LangT")), 2);
            assert_eq!(
                ctx.factory
                    .lookup(&ClassName::new("LangT"), &Value::str("English")),
                seq_ctx
                    .factory
                    .lookup(&ClassName::new("LangT"), &Value::str("English"))
            );
        }
    }

    /// Intra-Map taint laundering pins the operator sequential: a later
    /// binding of the same Map comparing an *earlier* Skolem-bearing
    /// binding's variable contains no Skolem node itself, but would observe
    /// the provisional identity on a worker. Sequentially, factory
    /// memoisation makes the comparison true; the gate must keep it that
    /// way at every thread count.
    #[test]
    fn intra_map_skolem_laundering_pins_to_the_sequential_path() {
        let inst = euro_instance();
        let refs = [&inst];
        let mk = || {
            Expr::Skolem(
                ClassName::new("CityT"),
                Box::new(Expr::var("E").proj("name")),
            )
        };
        // First Map resolves T to real identities (operator barrier); the
        // second Map re-mints the same keys as T2 and compares T2 with T.
        let plan = Plan::scan("CityE", "E")
            .map(vec![("T".to_string(), mk())])
            .map(vec![
                ("T2".to_string(), mk()),
                ("B".to_string(), Expr::var("T2").eq(Expr::var("T"))),
            ]);
        let mut seq_ctx = EvalCtx::new(&refs).with_parallelism(Parallelism::sequential());
        let mut seq_stats = ExecStats::default();
        let seq_rows = run_plan(&plan, &mut seq_ctx, &mut seq_stats).unwrap();
        assert!(
            seq_rows.iter().all(|r| r["B"] == Value::Bool(true)),
            "memoisation must make T2 equal T sequentially"
        );
        let mut ctx = EvalCtx::new(&refs).with_parallelism(Parallelism::new(8));
        ctx.set_parallel_min_rows(1);
        let mut stats = ExecStats::default();
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows, seq_rows);
        // The first (laundering-free) Map may parallelise, but the second
        // must not have: every B is still true.
        assert!(rows.iter().all(|r| r["B"] == Value::Bool(true)));
        assert!(!map_bindings_claim_safe(&[
            ("T2".to_string(), mk()),
            ("B".to_string(), Expr::var("T2").eq(Expr::var("T"))),
        ]));
    }

    /// A Skolem in *inspection position* — under a comparison — still pins
    /// its operator to the sequential path: provisional identities must
    /// never be compared.
    #[test]
    fn skolem_comparisons_still_pin_to_the_sequential_path() {
        let inst = euro_instance();
        let refs = [&inst];
        let plan = Plan::scan("CityE", "E").map(vec![(
            "B".to_string(),
            Expr::Skolem(
                ClassName::new("CityT"),
                Box::new(Expr::var("E").proj("name")),
            )
            .eq(Expr::var("E")),
        )]);
        let mut ctx = EvalCtx::new(&refs).with_parallelism(Parallelism::new(8));
        ctx.set_parallel_min_rows(1);
        let mut stats = ExecStats::default();
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 3);
        // The factory was exercised on the main thread: the identities exist
        // and no parallel worker ran for this operator.
        assert_eq!(ctx.factory.count(&ClassName::new("CityT")), 3);
        assert!(ctx.shard_stats().is_empty());
    }

    /// Parallel Skolem **insertion**: with enough rows, `execute_query`
    /// evaluates insert keys and attributes on the pool (claiming provisional
    /// identities) and applies them in row order — the target instance is
    /// bit-identical to the sequential loop at every thread count, duplicate
    /// keys across workers included.
    #[test]
    fn parallel_skolem_insertion_is_bit_identical_to_sequential() {
        let mut inst = Instance::new("src");
        for i in 0..40 {
            inst.insert_fresh(
                &ClassName::new("CityE"),
                Value::record([
                    ("name", Value::str(format!("city{i}"))),
                    // 8 distinct country keys, repeated across the extent so
                    // different workers claim the same key.
                    ("cname", Value::str(format!("country{}", i % 8))),
                ]),
            );
        }
        let refs = [&inst];
        let query = Query {
            name: "skolem_insert".to_string(),
            plan: Plan::scan("CityE", "E"),
            inserts: vec![InsertAction {
                class: ClassName::new("CityT"),
                key: Expr::var("E").proj("name"),
                attrs: vec![
                    ("name".to_string(), Expr::var("E").proj("name")),
                    (
                        // The attribute mints a CountryT identity per row —
                        // the Skolem-heavy insertion shape of E6.
                        "country".to_string(),
                        Expr::Skolem(
                            ClassName::new("CountryT"),
                            Box::new(Expr::var("E").proj("cname")),
                        ),
                    ),
                ],
            }],
        };
        let mut seq_ctx = EvalCtx::new(&refs).with_parallelism(Parallelism::sequential());
        let mut seq_stats = ExecStats::default();
        let mut seq_target = Instance::new("target");
        execute_query(&query, &mut seq_ctx, &mut seq_target, &mut seq_stats).unwrap();
        assert_eq!(seq_target.extent_size(&ClassName::new("CityT")), 40);
        for threads in [2usize, 4, 8] {
            let mut ctx = EvalCtx::new(&refs).with_parallelism(Parallelism::new(threads));
            ctx.set_parallel_min_rows(1);
            let mut stats = ExecStats::default();
            let mut target = Instance::new("target");
            execute_query(&query, &mut ctx, &mut target, &mut stats).unwrap();
            assert_eq!(target, seq_target, "target diverged at {threads} threads");
            assert_eq!(stats, seq_stats, "stats diverged at {threads} threads");
            assert_eq!(
                ctx.factory.count(&ClassName::new("CountryT")),
                seq_ctx.factory.count(&ClassName::new("CountryT"))
            );
        }
    }

    /// The split evaluate/apply API (query-level parallelism's building
    /// block) reproduces `execute_query` exactly: evaluating on a claim
    /// context and applying on the main context yields the identical target
    /// and factory state.
    #[test]
    fn evaluate_then_apply_equals_direct_execution() {
        let inst = euro_instance();
        let refs = [&inst];
        let query = Query {
            name: "T2".to_string(),
            plan: Plan::scan("CityE", "E")
                .map(vec![("N".to_string(), Expr::var("E").proj("name"))]),
            inserts: vec![InsertAction {
                class: ClassName::new("CityT"),
                key: Expr::var("N"),
                attrs: vec![
                    ("name".to_string(), Expr::var("N")),
                    (
                        "place".to_string(),
                        Expr::Variant(
                            "euro_city".to_string(),
                            Box::new(Expr::Skolem(
                                ClassName::new("CountryT"),
                                Box::new(Expr::var("E").path("country.name")),
                            )),
                        ),
                    ),
                ],
            }],
        };
        let mut direct_ctx = EvalCtx::new(&refs).with_parallelism(Parallelism::sequential());
        let mut direct_stats = ExecStats::default();
        let mut direct_target = Instance::new("target");
        execute_query(
            &query,
            &mut direct_ctx,
            &mut direct_target,
            &mut direct_stats,
        )
        .unwrap();

        let mut worker_ctx = EvalCtx::claim_worker(&refs);
        let mut worker_stats = ExecStats::default();
        let evaluated = evaluate_query(&query, &mut worker_ctx, &mut worker_stats).unwrap();
        assert_eq!(evaluated.rows_output(), 3);
        // The worker never touched a real factory.
        assert!(worker_ctx.factory.is_empty());
        let mut main_ctx = EvalCtx::new(&refs).with_parallelism(Parallelism::sequential());
        let mut main_stats = ExecStats::default();
        let mut target = Instance::new("target");
        apply_evaluated_query(
            &query,
            evaluated,
            &mut main_ctx,
            &mut target,
            &mut main_stats,
        )
        .unwrap();
        assert_eq!(target, direct_target);
        // Worker stats (evaluation) + main stats (application) together
        // equal the direct run's counters.
        main_stats.absorb(worker_stats);
        assert_eq!(main_stats, direct_stats);
        assert_eq!(
            main_ctx.factory.count(&ClassName::new("CountryT")),
            direct_ctx.factory.count(&ClassName::new("CountryT"))
        );
        assert_eq!(
            main_ctx
                .factory
                .lookup(&ClassName::new("CountryT"), &Value::str("France")),
            direct_ctx
                .factory
                .lookup(&ClassName::new("CountryT"), &Value::str("France"))
        );
    }

    /// The per-shard breakdown accumulated by a parallel run sums to the
    /// merged totals for the worker-side counters.
    #[test]
    fn shard_stats_sum_to_the_merged_probe_totals() {
        let source = {
            let mut inst = Instance::new("s");
            for i in 0..16 {
                inst.insert_fresh(
                    &ClassName::new("CloneS"),
                    Value::record([("name", Value::str(format!("c{}", i % 4)))]),
                );
                inst.insert_fresh(
                    &ClassName::new("MarkerS"),
                    Value::record([
                        ("name", Value::str(format!("m{i}"))),
                        ("clone_name", Value::str(format!("c{}", i % 4))),
                    ]),
                );
            }
            inst
        };
        let refs = [&source];
        let probed = Plan::scan("MarkerS", "M").map(vec![]).hash_join(
            Plan::scan("CloneS", "C"),
            Expr::var("M").proj("clone_name"),
            Expr::var("C").proj("name"),
        );
        let mut ctx = EvalCtx::new(&refs).with_parallelism(Parallelism::new(4));
        ctx.set_parallel_min_rows(1);
        let mut stats = ExecStats::default();
        let _ = run_plan(&probed, &mut ctx, &mut stats).unwrap();
        let shards = ctx.take_shard_stats();
        assert!(!shards.is_empty());
        let probes: usize = shards.iter().map(|s| s.index_probes).sum();
        let hits: usize = shards.iter().map(|s| s.probe_cache_hits).sum();
        assert_eq!(probes, stats.index_probes);
        assert_eq!(hits, stats.probe_cache_hits);
        // Draining leaves the accumulator empty for the next run.
        assert!(ctx.shard_stats().is_empty());
    }

    #[test]
    fn multi_key_probe_join_verifies_secondary_keys() {
        let inst = euro_instance();
        let refs = [&inst];
        // The CountryE side is a bare scan: probed on `name`, with the
        // second (language vs country.language) pair verified per candidate.
        let plan = Plan::scan("CityE", "E").hash_join_multi(
            Plan::scan("CountryE", "C"),
            vec![
                (
                    Expr::var("E").path("country.name"),
                    Expr::var("C").proj("name"),
                ),
                (
                    Expr::var("E").path("country.language"),
                    Expr::var("C").proj("language"),
                ),
            ],
        );
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(stats.index_probes, 2); // London and Manchester share a key
        assert_eq!(stats.probe_cache_hits, 1);
        // A mismatched secondary key filters every candidate out.
        let plan = Plan::scan("CityE", "E").hash_join_multi(
            Plan::scan("CountryE", "C"),
            vec![
                (
                    Expr::var("E").path("country.name"),
                    Expr::var("C").proj("name"),
                ),
                (Expr::var("E").proj("name"), Expr::var("C").proj("language")),
            ],
        );
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn scan_restrictions_narrow_extents_and_bypass_index_probes() {
        let inst = euro_instance();
        let refs = [&inst];
        let cities: Vec<Oid> = inst.extent(&ClassName::new("CityE")).cloned().collect();
        // Restricting CityE — the *driving* side — keeps the index fast
        // path: the one surviving delta row probes the CountryE index, and
        // the restriction applies where the driving rows are produced.
        let plan = Plan::scan("CityE", "E").hash_join(
            Plan::scan("CountryE", "C"),
            Expr::var("E").path("country.name"),
            Expr::var("C").proj("name"),
        );
        let mut ctx = EvalCtx::new(&refs);
        ctx.restrict_scan(
            "E",
            std::sync::Arc::new(std::iter::once(cities[2].clone()).collect()),
        );
        let mut stats = ExecStats::default();
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["E"], Value::Oid(cities[2].clone()));
        assert_eq!(stats.index_probes, 1);
        assert_eq!(stats.restricted_scans, 1);
        // Restricting CountryE — the *indexed* side — also keeps the fast
        // path: the index answers from the full extent, and the probe
        // filters each candidate against the restriction set, so the
        // filtered-out identities never resurface. No scan of C actually
        // runs, so no restricted scan is recorded.
        let countries: Vec<Oid> = inst.extent(&ClassName::new("CountryE")).cloned().collect();
        let mut ctx = EvalCtx::new(&refs);
        ctx.restrict_scan(
            "C",
            std::sync::Arc::new(std::iter::once(countries[0].clone()).collect()),
        );
        let mut stats = ExecStats::default();
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert!(stats.index_probes > 0);
        assert_eq!(stats.restricted_scans, 0);
        assert!(!rows.is_empty());
        assert!(rows
            .iter()
            .all(|row| row["C"] == Value::Oid(countries[0].clone())));
        // An empty restriction yields no rows at all.
        let mut ctx = EvalCtx::new(&refs);
        ctx.restrict_scan("E", std::sync::Arc::new(Default::default()));
        let mut stats = ExecStats::default();
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert!(rows.is_empty());
        // Clearing restrictions restores the full result and the fast path.
        let mut ctx = EvalCtx::new(&refs);
        ctx.restrict_scan("E", std::sync::Arc::new(Default::default()));
        ctx.clear_scan_restrictions();
        let mut stats = ExecStats::default();
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(stats.restricted_scans, 0);
        assert!(stats.index_probes > 0);
    }

    #[test]
    fn scan_order_trace_mirrors_operator_order() {
        // Scan → its own var; Filter/Map pass through.
        let plan = Plan::scan("CityE", "E")
            .filter(Expr::var("E").proj("is_capital"))
            .map(vec![("N".to_string(), Expr::var("E").proj("name"))]);
        assert_eq!(scan_order_trace(&plan), Some(vec!["E".to_string()]));
        // Nested loop: left varies slowest.
        let plan = Plan::scan("CityE", "E").join(Plan::scan("CountryE", "C"), None);
        assert_eq!(
            scan_order_trace(&plan),
            Some(vec!["E".to_string(), "C".to_string()])
        );
        // Hash join with an indexable right side probes with the left, so
        // the left side varies slowest.
        let plan = Plan::scan("CityE", "E").hash_join(
            Plan::scan("CountryE", "C"),
            Expr::var("E").path("country.name"),
            Expr::var("C").proj("name"),
        );
        assert_eq!(
            scan_order_trace(&plan),
            Some(vec!["E".to_string(), "C".to_string()])
        );
        // Generic hash join (computed keys both sides) probes with the
        // right side, so the right varies slowest.
        let plan = Plan::scan("CityE", "E").hash_join(
            Plan::scan("CountryE", "C"),
            Expr::var("E").path("country.name"),
            Expr::var("C").path("capital.name"),
        );
        assert_eq!(
            scan_order_trace(&plan),
            Some(vec!["C".to_string(), "E".to_string()])
        );
        // Distinct is untraceable: first-occurrence order depends on values.
        let plan = Plan::scan("CityE", "E").distinct();
        assert_eq!(scan_order_trace(&plan), None);
    }

    #[test]
    fn restricted_runs_match_filtered_full_runs() {
        // A restricted evaluation must produce exactly the rows of the full
        // evaluation whose restricted scan var falls in the kept set — the
        // correctness contract the delta evaluator depends on.
        let inst = euro_instance();
        let refs = [&inst];
        let cities: Vec<Oid> = inst.extent(&ClassName::new("CityE")).cloned().collect();
        let keep: std::collections::BTreeSet<Oid> =
            [cities[0].clone(), cities[2].clone()].into_iter().collect();
        let plan = Plan::scan("CityE", "E")
            .join(
                Plan::scan("CountryE", "C"),
                Some(
                    Expr::var("E")
                        .path("country.name")
                        .eq(Expr::var("C").proj("name")),
                ),
            )
            .filter(Expr::var("E").proj("is_capital"));
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let full = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        let expected: Vec<Row> = full
            .iter()
            .filter(|row| matches!(&row["E"], Value::Oid(o) if keep.contains(o)))
            .cloned()
            .collect();
        let mut ctx = EvalCtx::new(&refs);
        ctx.restrict_scan("E", std::sync::Arc::new(keep));
        let mut stats = ExecStats::default();
        let restricted = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(restricted, expected);
    }
}
