//! Umbrella crate for the WOL reproduction: re-exports every workspace member
//! so that examples and integration tests can use a single dependency.

pub use cpl;
pub use datalog_baseline;
pub use morphase;
pub use storage;
pub use wol_engine;
pub use wol_lang;
pub use wol_model;
pub use workloads;
