//! # workloads
//!
//! Schema, instance and WOL-program generators reproducing the paper's
//! workloads:
//!
//! * [`cities`] — the running example of Figures 1–3: the US Cities/States and
//!   European Cities/Countries sources, the integrated target, the clauses
//!   (T1)–(T3) and constraints (C1)–(C8), plus a scalable instance generator.
//! * [`people`] — the schema-evolution example of Figures 4–5 (Example 4.2):
//!   Person/spouse source, Male/Female/Marriage target, clauses (T6)–(T8) and
//!   constraints (C9)–(C11), with generators for constraint-satisfying and
//!   constraint-violating instances.
//! * [`genome`] — synthetic Chr22DB/ACe22DB-style data: a relational-style
//!   schema with wide records and an ACeDB-style sparse tree source, standing
//!   in for the proprietary genome databases of the paper's trials.
//! * [`traffic`] — E11: deterministic mutation-batch streams over the genome
//!   warehouse (inserts, updates, duplicate Skolem keys, removals, renames),
//!   feeding the incremental-maintenance bench and test suites.
//! * [`constrained`] — E12: a registry source carrying one constraint of
//!   each family the incremental checker plans differently (merge key,
//!   existence, Skolem key) with clean and violating mutation streams,
//!   feeding the per-batch constraint-validation bench and test suites.
//! * [`federated`] — E13: the genome warehouse split across three backend
//!   fragments (relational clones, ACeDB-style markers, a large assay CSV)
//!   with one WOL program integrating all three; every fragment carries a
//!   selective comparison the planner can push into its provider, feeding
//!   the federated-pushdown bench and test suites.
//! * [`skewed`] — E7: the genome theme with a *zipfian* marker-per-clone
//!   distribution and a triangle join whose ordering the flat `1/ndv` cost
//!   model provably gets wrong; the workload behind the histogram-estimation
//!   regression tests and bench.
//! * [`variants`] — the variant family V(k) used to reproduce the claim that
//!   complete-clause languages need exponentially many clauses in the number
//!   of variants while WOL's partial clauses stay linear (Section 3.2).
//! * [`wide`] — the wide-record family W(n, k): a target class with `n`
//!   attributes described by `k` partial clauses, with or without key
//!   constraints; the knob behind the compile-time experiments E1 and E2.

pub mod cities;
pub mod constrained;
pub mod federated;
pub mod genome;
pub mod people;
pub mod skewed;
pub mod traffic;
pub mod variants;
pub mod wide;

pub use cities::CitiesWorkload;
pub use people::PeopleWorkload;
