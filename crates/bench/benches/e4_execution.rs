//! Experiment E4 — single-pass execution of normal-form programs vs direct
//! (recursive, multi-pass) clause application.
//!
//! Paper claim (Section 5): "Implementing a transformation directly using
//! clauses such as (T1), (T2) and (T3) would be inefficient ... we would have
//! to apply the clauses recursively"; normal-form programs run "in a single
//! pass over the source databases". The workload is the Cities/Countries
//! integration scaled by the number of source cities.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morphase::Morphase;
use wol_engine::naive_transform;
use workloads::cities::{generate_euro, CitiesWorkload};

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_execution");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));

    let workload = CitiesWorkload::new();
    let program = workload.euro_program();

    for &countries in &[10usize, 30, 100] {
        let cities_per_country = 10;
        let source = generate_euro(countries, cities_per_country, 42);
        let total_cities = countries * cities_per_country;

        // Morphase: compile once, then single-pass CPL execution.
        let compiled = Morphase::new();
        group.bench_with_input(
            BenchmarkId::new("morphase_single_pass", total_cities),
            &source,
            |b, source| {
                b.iter(|| compiled.transform(&program, &[source][..]).expect("transforms"))
            },
        );

        // Naive: repeated clause application against sources + target.
        group.bench_with_input(
            BenchmarkId::new("naive_multi_pass", total_cities),
            &source,
            |b, source| b.iter(|| naive_transform(&program, &[source][..], "target").expect("transforms")),
        );
    }
    group.finish();

    // Paper-style summary at a fixed size.
    let source = generate_euro(30, 10, 42);
    let t0 = std::time::Instant::now();
    Morphase::new().transform(&program, &[&source][..]).unwrap();
    let single = t0.elapsed();
    let t1 = std::time::Instant::now();
    naive_transform(&program, &[&source][..], "target").unwrap();
    let naive = t1.elapsed();
    eprintln!(
        "[E4] 300 source cities: Morphase single pass {single:?}, naive multi-pass {naive:?}, \
         speed-up {:.1}x",
        naive.as_secs_f64() / single.as_secs_f64().max(1e-9)
    );
}

criterion_group!(benches, bench_execution);
criterion_main!(benches);
