//! Experiment E9 — durability: snapshot load vs pipeline regeneration.
//!
//! PR 6 added crash-consistent persistence (write-ahead log + checksummed
//! snapshots, see the storage crate's "Durability" docs). The economic
//! question a warehouse operator asks of that machinery: after a restart, is
//! loading the checksummed snapshot actually cheaper than re-running the
//! transformation from the sources? E9 answers it on the scaled genome
//! warehouse (the E6/E8 shape): it times the full pipeline regeneration, the
//! atomic snapshot save, and the verified snapshot load, asserts the loaded
//! instance is bit-identical to the regenerated target, and records the
//! numbers (plus the snapshot's size on disk) in `BENCH_e9.json`.
//!
//! Since PR 7 the loader decodes each class section into one
//! [`wol_model::Instance::bulk_insert`] batch instead of inserting object by
//! object, paying the cache invalidation and extent lookup once per class
//! rather than once per object — `snapshot_load_secs` is the number that
//! tracks the improvement across PRs.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use morphase::{Morphase, MorphaseRun};
use storage::persist::snapshot::{encode_snapshot, load_snapshot_file, save_snapshot_file};
use wol_model::SkolemState;
use workloads::genome::{self, GenomeParams};

fn regenerate(program: &wol_lang::program::Program, source: &wol_model::Instance) -> MorphaseRun {
    Morphase::new()
        .transform(program, &[source][..])
        .expect("pipeline runs")
}

/// Best-of-two wall-clock seconds for `f`.
fn best_of_two(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn bench_durability(c: &mut Criterion) {
    let params = GenomeParams {
        clones: 1200,
        markers: 3600,
        density: 0.6,
        seed: 22,
    };
    let source = genome::generate_source(&params);
    let program = genome::program();
    let run = regenerate(&program, &source);
    let snapshot_bytes = encode_snapshot(&run.target, &SkolemState::default(), 0, None);
    let dir = std::env::temp_dir().join(format!("wol-bench-e9-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    let snap_path = dir.join("target.snap");
    save_snapshot_file(&snap_path, &snapshot_bytes, None).expect("save snapshot");

    let mut group = c.benchmark_group("e9_durability");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));
    group.bench_function("regenerate_pipeline", |b| {
        b.iter(|| regenerate(&program, &source))
    });
    group.bench_function("snapshot_save", |b| {
        b.iter(|| save_snapshot_file(&snap_path, &snapshot_bytes, None).expect("save"))
    });
    group.bench_function("snapshot_load", |b| {
        b.iter(|| {
            load_snapshot_file(&snap_path)
                .expect("load")
                .expect("snapshot present")
        })
    });
    group.finish();

    // The load must hand back the exact warehouse it saved — the speed-up is
    // only meaningful if the recovered state is bit-identical.
    let loaded = load_snapshot_file(&snap_path)
        .expect("load")
        .expect("snapshot present");
    assert_eq!(
        loaded.instance.deep_eq_report(&run.target),
        None,
        "snapshot load must reproduce the regenerated target bit-identically"
    );

    let regenerate_secs = best_of_two(|| {
        regenerate(&program, &source);
    });
    let save_secs = best_of_two(|| {
        save_snapshot_file(&snap_path, &snapshot_bytes, None).expect("save");
    });
    let load_secs = best_of_two(|| {
        load_snapshot_file(&snap_path)
            .expect("load")
            .expect("snapshot present");
    });
    bench::BenchJson::new()
        .str("bench", "e9_durability")
        .str("workload", "e6_genome")
        .int("target_objects", run.target.len() as u64)
        .int("snapshot_bytes", snapshot_bytes.len() as u64)
        .num("regenerate_secs", regenerate_secs)
        .num("snapshot_save_secs", save_secs)
        .num("snapshot_load_secs", load_secs)
        .num(
            "load_speedup_vs_regenerate",
            regenerate_secs / load_secs.max(1e-9),
        )
        .stamped()
        .write("BENCH_e9.json");
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_durability);
criterion_main!(benches);
