//! Integration tests spanning all crates: sources built through the storage
//! adapters, transformed by Morphase, checked against the engine's reference
//! semantics, and validated against the target schemas and keys.

use wol_repro::morphase::{Morphase, PipelineOptions};
use wol_repro::storage::{csv, relational, Column, Table, TableSchema};
use wol_repro::wol_engine::{self, naive_transform};
use wol_repro::wol_model::{validate, ClassName, Value};
use wol_repro::workloads::cities::{generate_euro, CitiesWorkload};
use wol_repro::workloads::genome::{self, GenomeParams};
use wol_repro::workloads::people::{generate_couples, PeopleWorkload};
use wol_repro::workloads::{variants, wide};

#[test]
fn cities_pipeline_matches_reference_semantics_and_schema() {
    let workload = CitiesWorkload::new();
    let program = workload.euro_program();
    let source = generate_euro(6, 4, 77);

    let run = Morphase::new().transform(&program, &[&source][..]).unwrap();
    let naive = naive_transform(&program, &[&source][..], "target").unwrap();

    // Same extents as the reference (naive, multi-pass) semantics.
    for class in ["CountryT", "CityT"] {
        assert_eq!(
            run.target.extent_size(&ClassName::new(class)),
            naive.extent_size(&ClassName::new(class)),
            "extent mismatch for {class}"
        );
    }
    // The target conforms to the schema and its keys.
    validate::check_keyed_instance(&run.target, &workload.target_schema, &workload.target_keys)
        .unwrap();
    // Every country received its capital, and the capital's place points back
    // at the country (the paper's non-trivial mapping).
    for (oid, value) in run.target.objects(&ClassName::new("CountryT")) {
        let capital = value
            .project("capital")
            .and_then(|v| v.as_oid())
            .expect("every generated country has a capital");
        let capital_value = run.target.value(capital).unwrap();
        let place = capital_value.project("place").unwrap();
        assert_eq!(
            place.variant_payload("euro_city"),
            Some(&Value::Oid(oid.clone()))
        );
    }
}

#[test]
fn relational_source_feeds_the_pipeline() {
    // Load the European source from flat tables (the "Sybase" path).
    let mut countries = Table::new(TableSchema {
        name: "CountryE".to_string(),
        key_column: "name".to_string(),
        columns: vec![
            Column::str("name"),
            Column::str("language"),
            Column::str("currency"),
        ],
    });
    countries
        .push_row(vec![
            Value::str("France"),
            Value::str("French"),
            Value::str("franc"),
        ])
        .unwrap();
    countries
        .push_row(vec![
            Value::str("Italy"),
            Value::str("Italian"),
            Value::str("lira"),
        ])
        .unwrap();
    let mut cities = Table::new(TableSchema {
        name: "CityE".to_string(),
        key_column: "name".to_string(),
        columns: vec![
            Column::str("name"),
            Column::bool("is_capital"),
            Column::reference("country", "CountryE"),
        ],
    });
    for (name, capital, country) in [
        ("Paris", true, "France"),
        ("Lyon", false, "France"),
        ("Rome", true, "Italy"),
    ] {
        cities
            .push_row(vec![
                Value::str(name),
                Value::bool(capital),
                Value::str(country),
            ])
            .unwrap();
    }
    let source = relational::load_tables(&[countries, cities], "euro").unwrap();

    let workload = CitiesWorkload::new();
    let run = Morphase::new()
        .transform(&workload.euro_program(), &[&source][..])
        .unwrap();
    assert_eq!(run.target.extent_size(&ClassName::new("CountryT")), 2);
    assert_eq!(run.target.extent_size(&ClassName::new("CityT")), 3);

    // And the result can be dumped back out through the CSV adapter.
    let table = relational::dump_class(&run.target, &ClassName::new("CountryT"), "name").unwrap();
    let text = csv::to_csv(&table);
    assert!(text.contains("France"));
    assert!(text.contains("Italy"));
}

#[test]
fn genome_workload_round_trips_through_the_tree_store() {
    let params = GenomeParams {
        clones: 12,
        markers: 30,
        density: 0.5,
        seed: 4,
    };
    let source = genome::generate_source(&params);
    validate::check_instance(&source, &genome::source_schema()).unwrap();
    let run = Morphase::new()
        .transform(&genome::program(), &[&source][..])
        .unwrap();
    validate::check_instance(&run.target, &genome::target_schema()).unwrap();
    assert_eq!(run.target.extent_size(&ClassName::new("CloneD")), 12);
    assert_eq!(run.target.extent_size(&ClassName::new("MarkerD")), 30);
}

#[test]
fn people_schema_evolution_preserves_information_under_constraints() {
    let workload = PeopleWorkload::new();
    let program = workload.program();
    let source = generate_couples(5, 13);
    let run = Morphase::new().transform(&program, &[&source][..]).unwrap();
    assert_eq!(run.target.extent_size(&ClassName::new("Marriage")), 5);
    validate::check_keyed_instance(&run.target, &workload.target_schema, &workload.target_keys)
        .unwrap();
}

#[test]
fn variant_family_agrees_with_the_datalog_baseline() {
    use wol_repro::datalog_baseline::{evaluate, variant_baseline_program, variant_facts};
    let k = 4;
    let source = variants::generate_source(k, 40, 19);
    let normal = wol_engine::normalize(
        &variants::wol_program(k),
        &wol_engine::NormalizeOptions::default(),
    )
    .unwrap();
    let target = wol_engine::execute(&normal, &[&source][..], "target").unwrap();
    let (db, _) = evaluate(
        &variant_baseline_program(k).program,
        &variant_facts(&source, k),
    );
    assert_eq!(target.extent_size(&ClassName::new("Obj")), db["obj"].len());
    // The WOL program is linear in k, the baseline exponential.
    assert_eq!(variants::wol_program(k).clauses.len(), 2 * k + 1);
    assert_eq!(variant_baseline_program(k).rule_count(), 1 << k);
}

#[test]
fn omitting_constraints_blows_up_but_preserves_semantics() {
    let n = 8;
    let k = 3;
    let source = wide::generate_source(n, 6, 3);
    let keyed = Morphase::new()
        .compile(&wide::partial_program(n, k, true))
        .unwrap();
    let unkeyed_options = PipelineOptions {
        use_target_keys: false,
        generate_metadata_constraints: false,
        ..PipelineOptions::default()
    };
    let unkeyed = Morphase::with_options(unkeyed_options)
        .compile(&wide::partial_program(n, k, false))
        .unwrap();
    assert_eq!(keyed.normal.len(), k);
    assert_eq!(unkeyed.normal.len(), (1 << k) - 1);

    // With keys, execution produces one object per source row with all fields.
    let run = Morphase::new()
        .transform(&wide::partial_program(n, k, true), &[&source][..])
        .unwrap();
    assert_eq!(run.target.extent_size(&ClassName::new("Tgt")), 6);
    for (_, value) in run.target.objects(&ClassName::new("Tgt")) {
        assert_eq!(value.as_record().unwrap().len(), n + 1);
    }
}
