//! A minimal CSV-like import/export for flat classes.
//!
//! The paper's introduction motivates transformations partly by "uploading
//! certain file formats into a relational database". This module provides the
//! simplest such format: a header line of column names followed by
//! comma-separated rows, with values inferred as integers, booleans or
//! strings. It feeds the relational adapter rather than the model directly.

use wol_model::Value;

use crate::error::StorageError;
use crate::relational::{Column, Table, TableSchema};
use crate::Result;

/// Parse CSV text into a [`Table`]. The first column is used as the key
/// column. Column types are inferred from the first data row.
///
/// Parse failures come back as [`StorageError::Corrupt`] with the source
/// labelled `"<memory>"`; use [`parse_csv_from`] to attach a real file path.
pub fn parse_csv(name: &str, text: &str) -> Result<Table> {
    parse_csv_from(name, "<memory>", text)
}

/// Read and parse a CSV file into a [`Table`] named after the file stem.
/// I/O and parse errors both carry the file path.
pub fn load_csv_file(path: &std::path::Path) -> Result<Table> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| StorageError::io(path.display().to_string(), e))?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "csv".to_string());
    parse_csv_from(&name, &path.display().to_string(), &text)
}

/// Parse CSV text into a [`Table`], attributing errors to `source` (a file
/// path or pseudo-path). Line numbers in errors are 1-based positions in
/// `text`, counting blank lines.
pub fn parse_csv_from(name: &str, source: &str, text: &str) -> Result<Table> {
    // Keep original line numbers: enumerate before dropping blank lines.
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (header_no, header) = lines.next().ok_or_else(|| {
        StorageError::corrupt_at_line(source, 1, "a header line of column names", "end of input")
    })?;
    let names: Vec<&str> = header.split(',').map(str::trim).collect();
    if names.is_empty() || names.iter().any(|n| n.is_empty()) {
        return Err(StorageError::corrupt_at_line(
            source,
            header_no + 1,
            "comma-separated non-empty column names",
            format!("`{header}`"),
        ));
    }
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for (line_no, line) in lines {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != names.len() {
            return Err(StorageError::corrupt_at_line(
                source,
                line_no + 1,
                format!("{} fields", names.len()),
                format!("{} fields", fields.len()),
            ));
        }
        rows.push(fields.iter().map(|f| infer_value(f)).collect());
    }
    let columns = names
        .iter()
        .enumerate()
        .map(|(i, n)| match rows.first().map(|r| &r[i]) {
            Some(Value::Int(_)) => Column::int(*n),
            Some(Value::Bool(_)) => Column::bool(*n),
            _ => Column::str(*n),
        })
        .collect();
    let mut table = Table::new(TableSchema {
        name: name.to_string(),
        key_column: names[0].to_string(),
        columns,
    });
    for row in rows {
        table.push_row(row)?;
    }
    Ok(table)
}

/// Render a table as CSV text (header plus one line per row).
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<&str> = table
        .schema
        .columns
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in &table.rows {
        let fields: Vec<String> = row.iter().map(render_value).collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn infer_value(field: &str) -> Value {
    if let Ok(i) = field.parse::<i64>() {
        return Value::Int(i);
    }
    match field {
        "true" | "True" => Value::Bool(true),
        "false" | "False" => Value::Bool(false),
        other => Value::str(other),
    }
}

fn render_value(value: &Value) -> String {
    match value {
        Value::Str(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        other => wol_model::display::render_value(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::load_tables;
    use wol_model::ClassName;

    const CITIES: &str = "name,is_capital,population\nParis,true,2148000\nLyon,false,513000\n";

    #[test]
    fn parse_and_infer_types() {
        let table = parse_csv("CityCsv", CITIES).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.schema.key_column, "name");
        assert_eq!(table.rows[0][1], Value::Bool(true));
        assert_eq!(table.rows[0][2], Value::Int(2_148_000));
        assert_eq!(table.rows[1][0], Value::str("Lyon"));
    }

    #[test]
    fn round_trip_through_csv() {
        let table = parse_csv("CityCsv", CITIES).unwrap();
        let text = to_csv(&table);
        let reparsed = parse_csv("CityCsv", &text).unwrap();
        assert_eq!(table.rows, reparsed.rows);
    }

    #[test]
    fn csv_feeds_the_relational_adapter() {
        let table = parse_csv("CityCsv", CITIES).unwrap();
        let instance = load_tables(&[table], "csv_import").unwrap();
        assert_eq!(instance.extent_size(&ClassName::new("CityCsv")), 2);
        let paris = instance
            .find_by_field(&ClassName::new("CityCsv"), "name", &Value::str("Paris"))
            .unwrap();
        assert_eq!(
            instance.value(paris).unwrap().project("population"),
            Some(&Value::int(2_148_000))
        );
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(parse_csv("T", "").is_err());
        assert!(parse_csv("T", "a,b\n1\n").is_err());
        assert!(parse_csv("T", "a,,c\n1,2,3\n").is_err());
    }

    /// A truncated row reports the source, the true (blank-line-aware) line
    /// number, and expected-vs-found field counts.
    #[test]
    fn truncated_row_reports_position_context() {
        let text = "name,is_capital,population\nParis,true,2148000\n\nLyon,false\n";
        let err = parse_csv_from("CityCsv", "cities.csv", text).unwrap_err();
        assert_eq!(
            err,
            StorageError::corrupt_at_line("cities.csv", 4, "3 fields", "2 fields")
        );
        let rendered = err.to_string();
        assert!(rendered.contains("cities.csv"), "{rendered}");
        assert!(rendered.contains("line 4"), "{rendered}");
        // The in-memory entry point labels its source.
        let err = parse_csv("CityCsv", "a,b\n1\n").unwrap_err();
        assert!(matches!(
            err,
            StorageError::Corrupt { ref path, .. } if path == "<memory>"
        ));
    }

    #[test]
    fn load_csv_file_reads_and_attributes_errors_to_the_path() {
        let dir = std::env::temp_dir().join(format!("wol-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("cities.csv");
        std::fs::write(&good, CITIES).unwrap();
        let table = load_csv_file(&good).unwrap();
        assert_eq!(table.schema.name, "cities");
        assert_eq!(table.len(), 2);

        let bad = dir.join("short.csv");
        std::fs::write(&bad, "a,b,c\n1,2\n").unwrap();
        let err = load_csv_file(&bad).unwrap_err();
        assert!(err.to_string().contains("short.csv"), "{err}");

        let err = load_csv_file(&dir.join("absent.csv")).unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
