//! Errors raised by the WOL engine.

use std::fmt;

/// Errors from clause evaluation, constraint checking or normalisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A term could not be evaluated (unbound variable, bad projection, ...).
    Eval(String),
    /// A constraint is violated by the instance(s) being checked.
    ConstraintViolated {
        /// Label or index of the violated clause.
        clause: String,
        /// Description of the violating binding.
        detail: String,
    },
    /// One or more constraints are violated; carries the full violation list
    /// in the deterministic order produced by
    /// [`check_constraints`](crate::constraints::check_constraints).
    ConstraintsViolated {
        /// Every violation found, in clause order then binding order.
        violations: Vec<crate::constraints::Violation>,
    },
    /// A constraint certificate failed to decode or to re-check against a
    /// snapshot.
    Certificate(String),
    /// The transformation program is recursive and cannot be normalised under
    /// Morphase's syntactic restrictions (Section 5).
    RecursiveProgram(String),
    /// A target object cannot be completely determined: the program is
    /// incomplete for the given class/attribute.
    Incomplete {
        /// The target class concerned.
        class: String,
        /// Explanation (e.g. which attribute or key part is missing).
        detail: String,
    },
    /// Normalisation produced no usable definition for a clause.
    Normalisation(String),
    /// An error bubbled up from the data model.
    Model(String),
    /// An error bubbled up from the language front end.
    Lang(String),
    /// Any other invariant violation.
    Invalid(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Eval(m) => write!(f, "evaluation error: {m}"),
            EngineError::ConstraintViolated { clause, detail } => {
                write!(f, "constraint {clause} violated: {detail}")
            }
            EngineError::ConstraintsViolated { violations } => {
                write!(f, "{} constraint violation(s):", violations.len())?;
                for v in violations {
                    write!(f, " [{}] {};", v.clause, v.detail)?;
                }
                Ok(())
            }
            EngineError::Certificate(m) => write!(f, "constraint certificate error: {m}"),
            EngineError::RecursiveProgram(m) => write!(f, "recursive transformation program: {m}"),
            EngineError::Incomplete { class, detail } => {
                write!(f, "incomplete description of class `{class}`: {detail}")
            }
            EngineError::Normalisation(m) => write!(f, "normalisation error: {m}"),
            EngineError::Model(m) => write!(f, "data model error: {m}"),
            EngineError::Lang(m) => write!(f, "language error: {m}"),
            EngineError::Invalid(m) => write!(f, "invalid: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<wol_model::ModelError> for EngineError {
    fn from(e: wol_model::ModelError) -> Self {
        EngineError::Model(e.to_string())
    }
}

impl From<wol_lang::LangError> for EngineError {
    fn from(e: wol_lang::LangError) -> Self {
        EngineError::Lang(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EngineError::Eval("x".into())
            .to_string()
            .contains("evaluation"));
        assert!(EngineError::ConstraintViolated {
            clause: "C4".into(),
            detail: "d".into()
        }
        .to_string()
        .contains("C4"));
        let many = EngineError::ConstraintsViolated {
            violations: vec![
                crate::constraints::Violation {
                    clause: "C4".into(),
                    detail: "first".into(),
                    oids: Vec::new(),
                },
                crate::constraints::Violation {
                    clause: "C8".into(),
                    detail: "second".into(),
                    oids: Vec::new(),
                },
            ],
        }
        .to_string();
        assert!(many.contains("2 constraint violation(s)"));
        assert!(many.contains("[C4] first"));
        assert!(many.contains("[C8] second"));
        assert!(EngineError::Certificate("bad crc".into())
            .to_string()
            .contains("certificate"));
        assert!(EngineError::RecursiveProgram("loop".into())
            .to_string()
            .contains("recursive"));
        assert!(EngineError::Incomplete {
            class: "CityT".into(),
            detail: "capital".into()
        }
        .to_string()
        .contains("CityT"));
    }

    #[test]
    fn conversions() {
        let m: EngineError = wol_model::ModelError::Invalid("m".into()).into();
        assert!(matches!(m, EngineError::Model(_)));
        let l: EngineError = wol_lang::LangError::Invalid("l".into()).into();
        assert!(matches!(l, EngineError::Lang(_)));
    }
}
