//! Row expressions over complex values.
//!
//! An expression is evaluated against a *row* (a binding of row variables to
//! values), a set of source instances (for dereferencing object identities),
//! and a Skolem factory (for `Mk_C` object creation).

use std::collections::BTreeMap;
use std::sync::Arc;

use wol_model::{ClassName, Instance, Label, Oid, SkolemClaims, SkolemFactory, Value, WorkerPool};

use crate::error::CplError;
use crate::Result;

/// A row: named values produced by a plan operator.
pub type Row = BTreeMap<String, Value>;

/// A complex-value expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A row variable.
    Var(String),
    /// A constant value.
    Const(Value),
    /// Project an attribute, dereferencing object identities through the
    /// source instances when necessary.
    Proj(Box<Expr>, Label),
    /// Build a record.
    Record(Vec<(Label, Expr)>),
    /// Build a variant value.
    Variant(Label, Box<Expr>),
    /// Create (or look up) the object identity of `class` keyed by the value
    /// of the argument expression.
    Skolem(ClassName, Box<Expr>),
    /// Equality of two values.
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality.
    Neq(Box<Expr>, Box<Expr>),
    /// Numeric / string less-than.
    Lt(Box<Expr>, Box<Expr>),
    /// Numeric / string less-than-or-equal.
    Leq(Box<Expr>, Box<Expr>),
    /// Boolean conjunction.
    And(Vec<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
}

impl Expr {
    /// A row variable.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// A constant.
    pub fn constant(value: impl Into<Value>) -> Expr {
        Expr::Const(value.into())
    }

    /// Project an attribute from this expression.
    pub fn proj(self, label: impl Into<Label>) -> Expr {
        Expr::Proj(Box::new(self), label.into())
    }

    /// Project a dotted attribute path.
    pub fn path(self, dotted: &str) -> Expr {
        dotted.split('.').fold(self, |e, seg| e.proj(seg))
    }

    /// Equality test.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Eq(Box::new(self), Box::new(other))
    }

    /// Conjunction of several predicates (true when empty).
    pub fn and(exprs: Vec<Expr>) -> Expr {
        Expr::And(exprs)
    }

    /// The row variables referenced by this expression.
    pub fn variables(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::Const(_) => {}
            Expr::Proj(e, _) | Expr::Variant(_, e) | Expr::Skolem(_, e) | Expr::Not(e) => {
                e.variables(out)
            }
            Expr::Record(fields) => fields.iter().for_each(|(_, e)| e.variables(out)),
            Expr::Eq(a, b) | Expr::Neq(a, b) | Expr::Lt(a, b) | Expr::Leq(a, b) => {
                a.variables(out);
                b.variables(out);
            }
            Expr::And(es) => es.iter().for_each(|e| e.variables(out)),
        }
    }

    /// The row variables referenced, as a set.
    pub fn var_set(&self) -> std::collections::BTreeSet<String> {
        let mut out = std::collections::BTreeSet::new();
        self.variables(&mut out);
        out
    }

    /// Whether the expression (or any sub-expression) creates object
    /// identities through a Skolem function. Skolem creation mutates the
    /// query-wide [`wol_model::SkolemFactory`], whose identity numbering
    /// depends on first-call order — so parallel workers may only evaluate
    /// Skolem-bearing expressions through the two-phase key-claim protocol
    /// ([`wol_model::SkolemClaims`]), and only where that is sound
    /// ([`Expr::skolem_parallel_safe`]); everywhere else the operator falls
    /// back to its sequential path, keeping targets bit-identical.
    pub fn contains_skolem(&self) -> bool {
        match self {
            Expr::Skolem(_, _) => true,
            Expr::Var(_) | Expr::Const(_) => false,
            Expr::Proj(e, _) | Expr::Variant(_, e) | Expr::Not(e) => e.contains_skolem(),
            Expr::Record(fields) => fields.iter().any(|(_, e)| e.contains_skolem()),
            Expr::Eq(a, b) | Expr::Neq(a, b) | Expr::Lt(a, b) | Expr::Leq(a, b) => {
                a.contains_skolem() || b.contains_skolem()
            }
            Expr::And(es) => es.iter().any(Expr::contains_skolem),
        }
    }

    /// Whether every Skolem application in this expression sits in **value
    /// position** — flowing only into the constructed output (directly, or
    /// through [`Expr::Record`] / [`Expr::Variant`] / another Skolem's key) —
    /// and never under a comparison, boolean connective, or projection.
    ///
    /// Value position is the soundness condition of the two-phase key-claim
    /// protocol: a worker's *provisional* identity ([`SkolemClaims`]) is a
    /// placeholder that gets rewritten to the real identity at resolution
    /// time, so it may be stored but never *inspected* — comparing it (two
    /// workers hold different provisionals for one key; a provisional never
    /// equals the real identity an earlier query created) or projecting
    /// through it would observe the placeholder and diverge from sequential
    /// evaluation. Expressions that fail this predicate keep the sequential
    /// pin. Skolem-free expressions are trivially safe.
    pub fn skolem_parallel_safe(&self) -> bool {
        self.skolem_claim_safe(&std::collections::BTreeSet::new())
    }

    /// Whether this expression may *hold* a provisional identity when
    /// evaluated on a claim context: it applies a Skolem function itself, or
    /// it reads a variable in `tainted` — the set of row variables whose
    /// bindings may carry one.
    pub fn carries_provisional(&self, tainted: &std::collections::BTreeSet<String>) -> bool {
        self.contains_skolem() || self.var_set().iter().any(|v| tainted.contains(v))
    }

    /// The flow-aware form of [`Expr::skolem_parallel_safe`]: safe iff every
    /// *provisional-valued* position — a Skolem application **or a variable
    /// in `tainted`**, i.e. one bound to a Skolem-bearing expression earlier
    /// in the same claim scope — sits in value position, never under a
    /// comparison, boolean connective, or projection. The per-expression
    /// predicate cannot see taint laundered through a variable binding
    /// (`T = Mk_C(…)` followed by `Eq(Var(T), …)` contains no Skolem node in
    /// the equality), so callers that evaluate several binding expressions
    /// against one claim arena must thread the taint set through.
    pub fn skolem_claim_safe(&self, tainted: &std::collections::BTreeSet<String>) -> bool {
        match self {
            Expr::Var(_) | Expr::Const(_) => true,
            // The skolem key itself is a value position (nested claims
            // resolve inside-out), but it must be safe recursively.
            Expr::Skolem(_, key) => key.skolem_claim_safe(tainted),
            Expr::Record(fields) => fields.iter().all(|(_, e)| e.skolem_claim_safe(tainted)),
            Expr::Variant(_, payload) => payload.skolem_claim_safe(tainted),
            // Inspection positions: nothing provisional-valued below these.
            Expr::Proj(base, _) => !base.carries_provisional(tainted),
            Expr::Not(e) => !e.carries_provisional(tainted),
            Expr::Eq(a, b) | Expr::Neq(a, b) | Expr::Lt(a, b) | Expr::Leq(a, b) => {
                !a.carries_provisional(tainted) && !b.carries_provisional(tainted)
            }
            Expr::And(es) => es.iter().all(|e| !e.carries_provisional(tainted)),
        }
    }

    /// Replace every row variable that has an entry in `defs` by its defining
    /// expression. The query planner uses this to inline `Map` bindings into
    /// filter predicates so join equalities range over base scan variables
    /// only; `defs` must already be fully resolved (its expressions must not
    /// reference each other's variables).
    pub fn substitute(&self, defs: &BTreeMap<String, Expr>) -> Expr {
        match self {
            Expr::Var(v) => defs.get(v).cloned().unwrap_or_else(|| self.clone()),
            Expr::Const(_) => self.clone(),
            Expr::Proj(e, l) => Expr::Proj(Box::new(e.substitute(defs)), l.clone()),
            Expr::Record(fields) => Expr::Record(
                fields
                    .iter()
                    .map(|(l, e)| (l.clone(), e.substitute(defs)))
                    .collect(),
            ),
            Expr::Variant(l, e) => Expr::Variant(l.clone(), Box::new(e.substitute(defs))),
            Expr::Skolem(c, e) => Expr::Skolem(c.clone(), Box::new(e.substitute(defs))),
            Expr::Eq(a, b) => Expr::Eq(Box::new(a.substitute(defs)), Box::new(b.substitute(defs))),
            Expr::Neq(a, b) => {
                Expr::Neq(Box::new(a.substitute(defs)), Box::new(b.substitute(defs)))
            }
            Expr::Lt(a, b) => Expr::Lt(Box::new(a.substitute(defs)), Box::new(b.substitute(defs))),
            Expr::Leq(a, b) => {
                Expr::Leq(Box::new(a.substitute(defs)), Box::new(b.substitute(defs)))
            }
            Expr::And(es) => Expr::And(es.iter().map(|e| e.substitute(defs)).collect()),
            Expr::Not(e) => Expr::Not(Box::new(e.substitute(defs))),
        }
    }
}

/// Propagate claim-context taint through an ordered list of `(var, expr)`
/// bindings (a [`crate::plan::Plan::Map`]'s bindings, evaluated in order
/// against one claim arena): every binding must keep provisional-valued
/// positions in value position w.r.t. the taint accumulated *so far* —
/// including identities laundered through an earlier binding of the same
/// list — and each Skolem-bearing (or taint-relaying) binding taints its own
/// variable. Returns whether all bindings are safe; `tainted` is extended
/// either way, so callers chaining several binding lists (the query-level
/// scheduler walking a whole plan) can keep threading it. This is the single
/// soundness condition both protocol gates — `cpl`'s operator-level Map gate
/// and `morphase`'s query-level overlap gate — must agree on, which is why
/// it lives here rather than in either caller.
pub fn bindings_claim_safe(
    bindings: &[(String, Expr)],
    tainted: &mut std::collections::BTreeSet<String>,
) -> bool {
    for (var, expr) in bindings {
        if !expr.skolem_claim_safe(tainted) {
            return false;
        }
        if expr.carries_provisional(tainted) {
            tainted.insert(var.clone());
        }
    }
    true
}

/// The evaluation context: the source instances (searched in order when
/// dereferencing object identities) and the Skolem factory.
pub struct EvalCtx<'a> {
    sources: Vec<&'a Instance>,
    /// Skolem factory shared across the whole query so identities are stable.
    pub factory: SkolemFactory,
    /// When set, Skolem evaluation records provisional claims here instead of
    /// touching `factory` — the worker side of the two-phase key-claim
    /// protocol ([`wol_model::SkolemClaims`]). `None` on main-thread contexts.
    claims: Option<SkolemClaims>,
    /// When enabled, the executor records each join operator's actual output
    /// row count here, in post-order — the same order
    /// [`crate::optimizer::estimate_join_outputs`] emits estimates in.
    join_trace: Option<Vec<crate::exec::JoinActual>>,
    /// How many worker threads parallel operators may use (see
    /// [`crate::exec`]'s module docs for the partitioning scheme). Defaults
    /// to [`Parallelism::from_env`]: the machine's cores, overridable via
    /// `WOL_THREADS`. The persistent pool operators dispatch to is fetched
    /// lazily from the process-wide registry ([`EvalCtx::pool`]), so a
    /// sequential run never spawns a thread.
    parallelism: wol_model::Parallelism,
    /// Minimum input rows before an operator goes parallel; below it the
    /// per-operator dispatch costs more than it saves. Tests lower it to
    /// exercise the partitioned paths on tiny inputs (results are identical
    /// either way — the threshold is purely a performance choice).
    parallel_min_rows: usize,
    /// Per-worker-slot statistics accumulated across every parallel operator
    /// this context executed (slot `i` collects what worker `i` did).
    shard_stats: Vec<crate::exec::ExecStats>,
    /// Whether scan→filter→project towers may run on the columnar executor
    /// ([`crate::columnar`]). Defaults to the `WOL_COLUMNAR` environment
    /// toggle (on unless set to `0`/`off`/`false`); the row path stays
    /// available as the differential baseline.
    columnar: bool,
    /// Telemetry of the columnar executor (kept out of [`ExecStats`] so the
    /// columnar/row differential contract — equal `ExecStats` — is not
    /// trivially violated by the path that ran).
    columnar_stats: crate::exec::ColumnarStats,
    /// Delta-aware execution: per scan *variable*, the only identities the
    /// scan may emit. Installed by the incremental maintainer
    /// (`morphase::maintain`) to run a plan restricted to a mutation delta —
    /// the semi-naive rotation. Scans apply their restriction directly; the
    /// index-probe fast path keeps firing and post-filters probe candidates
    /// by the probed variable's set (the attribute indexes answer from the
    /// full extent and do not see the restriction themselves). Only the
    /// columnar tower steps aside while any restriction is active.
    scan_restrictions: BTreeMap<String, std::sync::Arc<std::collections::BTreeSet<wol_model::Oid>>>,
}

/// Process-wide default for the columnar executor: on, unless `WOL_COLUMNAR`
/// is set to `0`, `off`, or `false`.
fn columnar_default() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| {
        !matches!(
            std::env::var("WOL_COLUMNAR").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

/// Default minimum input rows before an operator is worth partitioning.
/// Dispatching a round of closures to the persistent pool costs a few
/// microseconds (PR 4's per-operator `std::thread::scope` cost ~100µs, which
/// forced this threshold up to 1024); rows below this still process faster
/// than even that small dispatch, so tiny operators skip straight to the
/// sequential path.
const PARALLEL_MIN_ROWS: usize = 128;

impl<'a> EvalCtx<'a> {
    /// Create a context over the given source instances.
    pub fn new(sources: &[&'a Instance]) -> Self {
        EvalCtx {
            sources: sources.to_vec(),
            factory: SkolemFactory::new(),
            claims: None,
            join_trace: None,
            parallelism: wol_model::Parallelism::from_env(),
            parallel_min_rows: PARALLEL_MIN_ROWS,
            shard_stats: Vec::new(),
            columnar: columnar_default(),
            columnar_stats: crate::exec::ColumnarStats::default(),
            scan_restrictions: BTreeMap::new(),
        }
    }

    /// A sequential worker context over the given sources, as dispatched by
    /// the parallel operators: no env lookup (unlike [`EvalCtx::new`]) and
    /// never spawns nested workers. With `claims`, Skolem evaluation records
    /// provisional claims into the given arena (the claim phase of the
    /// two-phase protocol) instead of touching the worker's (unused) factory.
    pub(crate) fn worker(sources: &[&'a Instance], claims: Option<SkolemClaims>) -> Self {
        EvalCtx {
            sources: sources.to_vec(),
            factory: SkolemFactory::new(),
            claims,
            join_trace: None,
            parallelism: wol_model::Parallelism::sequential(),
            parallel_min_rows: PARALLEL_MIN_ROWS,
            shard_stats: Vec::new(),
            columnar: columnar_default(),
            columnar_stats: crate::exec::ColumnarStats::default(),
            scan_restrictions: BTreeMap::new(),
        }
    }

    /// A **claim-phase** context over the given sources, for evaluating a
    /// whole query off the main thread (query-level parallelism): Skolem
    /// evaluation records provisional claims instead of touching a shared
    /// factory. Sequential by default; give it a worker budget with
    /// [`EvalCtx::with_parallelism`] and its operators run pool morsels
    /// *inside* the concurrently evaluated query — nested claim arenas
    /// resolve into this context's arena, preserving input order. Pair with
    /// [`crate::exec::evaluate_query`] / [`crate::exec::apply_evaluated_query`].
    pub fn claim_worker(sources: &[&'a Instance]) -> Self {
        Self::worker(sources, Some(SkolemClaims::new()))
    }

    /// Number of claims recorded so far on a claim context (always 0 on main
    /// contexts): a mark delimiting one unit of work's claims, so resolution
    /// can interleave claim replay with direct factory calls exactly as a
    /// sequential run interleaved them.
    pub(crate) fn claims_mark(&self) -> usize {
        self.claims.as_ref().map_or(0, |c| c.mark())
    }

    /// Set the worker-thread budget (builder style).
    pub fn with_parallelism(mut self, parallelism: wol_model::Parallelism) -> Self {
        self.set_parallelism(parallelism);
        self
    }

    /// Set the worker-thread budget; parallel operators will dispatch to the
    /// shared persistent pool of that size.
    pub fn set_parallelism(&mut self, parallelism: wol_model::Parallelism) {
        self.parallelism = parallelism;
    }

    /// The persistent worker pool parallel operators dispatch to: the
    /// process-wide [`WorkerPool::shared`] pool for this context's
    /// parallelism, fetched lazily — a cheap registry lookup per parallel
    /// operator, and no threads are ever spawned for a context that never
    /// goes parallel.
    pub fn pool(&self) -> Arc<WorkerPool> {
        WorkerPool::shared(self.parallelism)
    }

    /// Apply `Mk_class(key)` through this context: provisionally via the
    /// claim arena on worker contexts, directly via the shared factory on
    /// the main context.
    pub fn mk_skolem(&mut self, class: &ClassName, key: &Value) -> Oid {
        match self.claims.as_mut() {
            Some(claims) => claims.mk(class, key),
            None => self.factory.mk(class, key),
        }
    }

    /// Take the claim arena out of a worker context after its work is done.
    pub(crate) fn take_claims(&mut self) -> Option<SkolemClaims> {
        self.claims.take()
    }

    /// Resolve per-worker claim arenas **in partition order** against this
    /// context's factory (the resolution phase of the two-phase protocol),
    /// returning the provisional→final identity map used to rewrite the
    /// workers' outputs. Replays through [`EvalCtx::mk_skolem`], so a claim
    /// context resolving nested arenas re-claims into its own arena.
    pub(crate) fn resolve_claim_arenas(&mut self, arenas: &[SkolemClaims]) -> BTreeMap<Oid, Oid> {
        let mut resolved = BTreeMap::new();
        for arena in arenas {
            arena.replay_range_into(0..arena.mark(), &mut resolved, &mut |class, key| {
                self.mk_skolem(class, key)
            });
        }
        resolved
    }

    /// The worker-thread budget parallel operators honour.
    pub fn parallelism(&self) -> wol_model::Parallelism {
        self.parallelism
    }

    /// Lower (or raise) the minimum input rows before an operator goes
    /// parallel. Intended for tests that exercise the partitioned paths on
    /// tiny, hand-checkable inputs.
    pub fn set_parallel_min_rows(&mut self, min_rows: usize) {
        self.parallel_min_rows = min_rows;
    }

    /// The current minimum input rows for parallel operators.
    pub fn parallel_min_rows(&self) -> usize {
        self.parallel_min_rows
    }

    /// Merge one parallel operator's — or a finished worker context's —
    /// per-worker statistics into the context-wide per-shard accumulators
    /// (slot-wise). The pipeline driver uses this to roll the operator-level
    /// shard breakdown of concurrently evaluated queries back into the main
    /// context's view.
    pub fn absorb_shard_stats(&mut self, per_worker: &[crate::exec::ExecStats]) {
        if self.shard_stats.len() < per_worker.len() {
            self.shard_stats
                .resize_with(per_worker.len(), Default::default);
        }
        for (slot, stats) in self.shard_stats.iter_mut().zip(per_worker) {
            slot.absorb(*stats);
        }
    }

    /// Per-worker-slot statistics accumulated across all parallel operators
    /// run so far (empty if nothing ran in parallel).
    pub fn shard_stats(&self) -> &[crate::exec::ExecStats] {
        &self.shard_stats
    }

    /// Drain the accumulated per-shard statistics.
    pub fn take_shard_stats(&mut self) -> Vec<crate::exec::ExecStats> {
        std::mem::take(&mut self.shard_stats)
    }

    /// Whether scan→filter→project towers may run on the columnar executor.
    pub fn columnar_enabled(&self) -> bool {
        self.columnar
    }

    /// Enable or disable the columnar executor for this context. Disabling
    /// pins every plan to the row-at-a-time baseline (results are identical
    /// either way — the differential tests prove it).
    pub fn set_columnar(&mut self, enabled: bool) {
        self.columnar = enabled;
    }

    /// Record one columnar pipeline execution (telemetry only).
    pub(crate) fn record_columnar(&mut self, batch_rows: usize, chunks: usize) {
        self.columnar_stats.pipelines += 1;
        self.columnar_stats.batch_rows += batch_rows;
        self.columnar_stats.chunks += chunks;
    }

    /// Telemetry of the columnar executor for this context.
    pub fn columnar_stats(&self) -> crate::exec::ColumnarStats {
        self.columnar_stats
    }

    /// Drain the columnar telemetry (used when rolling a finished worker
    /// context's counters into the pipeline-wide report).
    pub fn take_columnar_stats(&mut self) -> crate::exec::ColumnarStats {
        std::mem::take(&mut self.columnar_stats)
    }

    /// Merge another context's columnar telemetry into this one.
    pub fn absorb_columnar_stats(&mut self, other: crate::exec::ColumnarStats) {
        self.columnar_stats.absorb(&other);
    }

    /// Look up the value of an object identity in the sources.
    pub fn deref(&self, oid: &Oid) -> Option<&'a Value> {
        self.sources.iter().find_map(|i| i.value(oid))
    }

    /// The instances visible to this context.
    pub fn sources(&self) -> &[&'a Instance] {
        &self.sources
    }

    /// Restrict the scan bound to `var` to the given identity set (the
    /// delta-evaluation hook: a semi-naive rotation pins one scan slot to the
    /// changed identities and later slots to the pre-batch extent). The
    /// restriction is keyed by scan *variable*, so two scans of the same
    /// class restrict independently.
    pub fn restrict_scan(
        &mut self,
        var: impl Into<String>,
        oids: std::sync::Arc<std::collections::BTreeSet<wol_model::Oid>>,
    ) {
        self.scan_restrictions.insert(var.into(), oids);
    }

    /// Drop every scan restriction (back to full-extent evaluation).
    pub fn clear_scan_restrictions(&mut self) {
        self.scan_restrictions.clear();
    }

    /// The active restriction for a scan variable, if any.
    pub(crate) fn scan_restriction(
        &self,
        var: &str,
    ) -> Option<&std::sync::Arc<std::collections::BTreeSet<wol_model::Oid>>> {
        self.scan_restrictions.get(var)
    }

    /// Whether any scan restriction is active (gates the columnar tower,
    /// which answers scans from unrestricted structures).
    pub fn has_scan_restrictions(&self) -> bool {
        !self.scan_restrictions.is_empty()
    }

    /// The full restriction map, for handing to worker contexts (the
    /// parallel operators evaluate probe candidates off the main context and
    /// must observe the same deltas).
    pub(crate) fn scan_restrictions_map(
        &self,
    ) -> &BTreeMap<String, std::sync::Arc<std::collections::BTreeSet<wol_model::Oid>>> {
        &self.scan_restrictions
    }

    /// Install a restriction map wholesale (worker-context setup).
    pub(crate) fn set_scan_restrictions(
        &mut self,
        map: BTreeMap<String, std::sync::Arc<std::collections::BTreeSet<wol_model::Oid>>>,
    ) {
        self.scan_restrictions = map;
    }

    /// Start recording per-join actual output rows (no-op if already on).
    pub fn enable_join_trace(&mut self) {
        if self.join_trace.is_none() {
            self.join_trace = Some(Vec::new());
        }
    }

    /// Drain the join records collected so far; recording stays enabled.
    /// Empty if tracing was never enabled.
    pub fn take_join_trace(&mut self) -> Vec<crate::exec::JoinActual> {
        match self.join_trace.as_mut() {
            Some(trace) => std::mem::take(trace),
            None => Vec::new(),
        }
    }

    /// Record one executed join's actual output (no-op unless tracing).
    pub(crate) fn record_join(&mut self, kind: &'static str, rows: usize) {
        if let Some(trace) = self.join_trace.as_mut() {
            trace.push(crate::exec::JoinActual { kind, rows });
        }
    }
}

/// Evaluate an expression against a row.
pub fn eval(expr: &Expr, row: &Row, ctx: &mut EvalCtx<'_>) -> Result<Value> {
    match expr {
        Expr::Var(v) => row
            .get(v)
            .cloned()
            .ok_or_else(|| CplError::UnknownVariable(v.clone())),
        Expr::Const(value) => Ok(value.clone()),
        Expr::Proj(base, label) => {
            let base_value = eval(base, row, ctx)?;
            let record = match &base_value {
                Value::Oid(oid) => ctx
                    .deref(oid)
                    .cloned()
                    .ok_or_else(|| CplError::BadValue(format!("dangling object identity {oid}")))?,
                other => other.clone(),
            };
            record.project(label).cloned().ok_or_else(|| {
                CplError::BadValue(format!(
                    "value of kind `{}` has no attribute `{label}`",
                    record.kind()
                ))
            })
        }
        Expr::Record(fields) => {
            let mut out = BTreeMap::new();
            for (label, sub) in fields {
                out.insert(label.clone(), eval(sub, row, ctx)?);
            }
            Ok(Value::Record(out))
        }
        Expr::Variant(label, payload) => Ok(Value::Variant(
            label.clone(),
            Box::new(eval(payload, row, ctx)?),
        )),
        Expr::Skolem(class, key) => {
            let key_value = eval(key, row, ctx)?;
            Ok(Value::Oid(ctx.mk_skolem(class, &key_value)))
        }
        Expr::Eq(a, b) => Ok(Value::Bool(eval(a, row, ctx)? == eval(b, row, ctx)?)),
        Expr::Neq(a, b) => Ok(Value::Bool(eval(a, row, ctx)? != eval(b, row, ctx)?)),
        Expr::Lt(a, b) => compare(&eval(a, row, ctx)?, &eval(b, row, ctx)?)
            .map(|o| Value::Bool(o == std::cmp::Ordering::Less)),
        Expr::Leq(a, b) => compare(&eval(a, row, ctx)?, &eval(b, row, ctx)?)
            .map(|o| Value::Bool(o != std::cmp::Ordering::Greater)),
        Expr::And(es) => {
            for e in es {
                if !truthy(&eval(e, row, ctx)?)? {
                    return Ok(Value::Bool(false));
                }
            }
            Ok(Value::Bool(true))
        }
        Expr::Not(e) => Ok(Value::Bool(!truthy(&eval(e, row, ctx)?)?)),
    }
}

/// Evaluate a predicate expression to a boolean. Evaluation errors caused by
/// missing optional attributes count as `false` (the row simply does not
/// satisfy the predicate), mirroring the clause-matching semantics.
pub fn eval_predicate(expr: &Expr, row: &Row, ctx: &mut EvalCtx<'_>) -> Result<bool> {
    match eval(expr, row, ctx) {
        Ok(value) => truthy(&value),
        Err(CplError::BadValue(_)) => Ok(false),
        Err(other) => Err(other),
    }
}

fn truthy(value: &Value) -> Result<bool> {
    match value {
        Value::Bool(b) => Ok(*b),
        other => Err(CplError::BadValue(format!(
            "expected a boolean predicate value, found `{}`",
            other.kind()
        ))),
    }
}

fn compare(a: &Value, b: &Value) -> Result<std::cmp::Ordering> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(x.cmp(y)),
        (Value::Real(x), Value::Real(y)) => Ok(x.cmp(y)),
        (Value::Str(x), Value::Str(y)) => Ok(x.cmp(y)),
        (Value::Int(x), Value::Real(y)) => Ok(wol_model::RealVal(*x as f64).cmp(y)),
        (Value::Real(x), Value::Int(y)) => Ok(x.cmp(&wol_model::RealVal(*y as f64))),
        _ => Err(CplError::BadValue(format!(
            "cannot compare values of kinds `{}` and `{}`",
            a.kind(),
            b.kind()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Instance, Oid, Oid) {
        let mut inst = Instance::new("euro");
        let fr = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("France")),
                ("currency", Value::str("franc")),
            ]),
        );
        let paris = inst.insert_fresh(
            &ClassName::new("CityE"),
            Value::record([
                ("name", Value::str("Paris")),
                ("is_capital", Value::bool(true)),
                ("country", Value::oid(fr.clone())),
            ]),
        );
        (inst, fr, paris)
    }

    #[test]
    fn eval_projection_through_oid() {
        let (inst, _, paris) = sample();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let row = Row::from([("E".to_string(), Value::oid(paris))]);
        let expr = Expr::var("E").path("country.name");
        assert_eq!(eval(&expr, &row, &mut ctx).unwrap(), Value::str("France"));
    }

    #[test]
    fn eval_record_variant_skolem() {
        let (inst, _, _) = sample();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let row = Row::from([("N".to_string(), Value::str("France"))]);
        let expr = Expr::Record(vec![
            ("name".to_string(), Expr::var("N")),
            (
                "kind".to_string(),
                Expr::Variant("euro".to_string(), Box::new(Expr::Const(Value::Unit))),
            ),
        ]);
        let value = eval(&expr, &row, &mut ctx).unwrap();
        assert_eq!(value.project("kind"), Some(&Value::tag("euro")));

        let sk = Expr::Skolem(ClassName::new("CountryT"), Box::new(Expr::var("N")));
        let a = eval(&sk, &row, &mut ctx).unwrap();
        let b = eval(&sk, &row, &mut ctx).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn predicates_and_comparisons() {
        let (inst, _, paris) = sample();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let row = Row::from([
            ("E".to_string(), Value::oid(paris)),
            ("N".to_string(), Value::int(3)),
        ]);
        let p = Expr::var("E").proj("is_capital");
        assert!(eval_predicate(&p, &row, &mut ctx).unwrap());
        let cmp = Expr::Lt(
            Box::new(Expr::var("N")),
            Box::new(Expr::Const(Value::int(5))),
        );
        assert!(eval_predicate(&cmp, &row, &mut ctx).unwrap());
        let leq = Expr::Leq(
            Box::new(Expr::var("N")),
            Box::new(Expr::Const(Value::int(3))),
        );
        assert!(eval_predicate(&leq, &row, &mut ctx).unwrap());
        let and = Expr::and(vec![p, cmp, leq]);
        assert!(eval_predicate(&and, &row, &mut ctx).unwrap());
        let not = Expr::Not(Box::new(Expr::Eq(
            Box::new(Expr::var("N")),
            Box::new(Expr::Const(Value::int(4))),
        )));
        assert!(eval_predicate(&not, &row, &mut ctx).unwrap());
        let neq = Expr::Neq(
            Box::new(Expr::var("N")),
            Box::new(Expr::Const(Value::int(4))),
        );
        assert!(eval_predicate(&neq, &row, &mut ctx).unwrap());
    }

    #[test]
    fn missing_attribute_is_false_in_predicates_but_error_in_eval() {
        let (inst, fr, _) = sample();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let row = Row::from([("C".to_string(), Value::oid(fr))]);
        let expr = Expr::var("C")
            .proj("population")
            .eq(Expr::Const(Value::int(1)));
        assert!(!eval_predicate(&expr, &row, &mut ctx).unwrap());
        assert!(matches!(
            eval(&Expr::var("C").proj("population"), &row, &mut ctx),
            Err(CplError::BadValue(_))
        ));
    }

    #[test]
    fn unknown_variable_reported() {
        let (inst, _, _) = sample();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        assert!(matches!(
            eval(&Expr::var("missing"), &Row::new(), &mut ctx),
            Err(CplError::UnknownVariable(_))
        ));
    }

    #[test]
    fn var_set_collects_variables() {
        let expr = Expr::and(vec![
            Expr::var("A").proj("x").eq(Expr::var("B").proj("y")),
            Expr::Skolem(ClassName::new("C"), Box::new(Expr::var("K"))).eq(Expr::var("A")),
        ]);
        let vars = expr.var_set();
        assert_eq!(vars.len(), 3);
        assert!(vars.contains("A") && vars.contains("B") && vars.contains("K"));
    }

    #[test]
    fn substitute_inlines_definitions() {
        let defs = BTreeMap::from([("N".to_string(), Expr::var("C").proj("name"))]);
        let pred = Expr::var("E").path("country.name").eq(Expr::var("N"));
        let inlined = pred.substitute(&defs);
        assert_eq!(
            inlined,
            Expr::var("E")
                .path("country.name")
                .eq(Expr::var("C").proj("name"))
        );
        assert!(inlined.var_set().contains("C"));
        assert!(!inlined.var_set().contains("N"));
        // Variables without a definition are untouched, across all shapes.
        let all = Expr::and(vec![
            Expr::Not(Box::new(Expr::Neq(
                Box::new(Expr::var("N")),
                Box::new(Expr::Const(Value::int(1))),
            ))),
            Expr::Lt(Box::new(Expr::var("X")), Box::new(Expr::var("N"))),
            Expr::Leq(Box::new(Expr::var("X")), Box::new(Expr::var("X"))),
            Expr::Record(vec![("k".to_string(), Expr::var("N"))])
                .eq(Expr::Variant("t".to_string(), Box::new(Expr::var("N")))),
            Expr::Skolem(ClassName::new("T"), Box::new(Expr::var("N"))).eq(Expr::var("X")),
        ]);
        let inlined = all.substitute(&defs);
        assert!(!inlined.var_set().contains("N"));
        assert!(inlined.var_set().contains("X"));
    }

    #[test]
    fn non_boolean_predicate_rejected() {
        let (inst, fr, _) = sample();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let row = Row::from([("C".to_string(), Value::oid(fr))]);
        let expr = Expr::var("C").proj("name");
        assert!(eval_predicate(&expr, &row, &mut ctx).is_err());
    }
}
