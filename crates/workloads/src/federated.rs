//! E13: the genome warehouse split across three backend sources.
//!
//! The paper's trials pulled data from heterogeneous stores — a Sybase
//! relational database and an ACeDB tree store (Section 6). This workload
//! pushes that setting to its federated extreme: the warehouse integrates
//! *three* fragments, each served by a different [`storage::ScanProvider`]
//! backend:
//!
//! * `CloneR` — a relational table ([`storage::RelationalProvider`]),
//! * `MarkerA` — an ACeDB-style store ([`storage::AceProvider`]), and
//! * `AssayC` — a large CSV export ([`storage::CsvDirProvider`]).
//!
//! One WOL program joins all three into the `fedwh` warehouse. Every
//! fragment carries a selective comparison written directly on a scan
//! projection (`C.length < …`, `S.position < …`, `980 =< R.level`), so the
//! planner's pushdown split can divert all three into the providers; the
//! assay CSV also carries a `batch` column no clause reads, which the
//! projection push prunes at the source. The generators are *coupled* so
//! that no reference dangles after filtering: markers only reference clones
//! that pass the length cutoff, and assays only reference markers that pass
//! the position cutoff (a Skolem in value position mints an identity without
//! inserting into the extent, so a dangling reference would silently produce
//! an attribute-less object).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use storage::relational::{Column, Table, TableSchema};
use storage::{AceObject, AceStore, AceValue};
use storage::{AceProvider, CsvDirProvider, RelationalProvider};
use wol_lang::program::{Program, SchemaBinding};
use wol_model::{Schema, Type, Value};

/// Clones at or above this length stay out of the warehouse (pushed as
/// `C.length < 180000`).
pub const LENGTH_CUTOFF: i64 = 180_000;

/// Markers at or beyond this position stay out (pushed as
/// `S.position < 30000000`).
pub const POSITION_CUTOFF: i64 = 30_000_000;

/// Assays below this expression level stay out (pushed as
/// `980 =< R.level`); levels are uniform in `0..1000`, so roughly 2% of
/// assay rows survive — the selectivity behind the pushdown bench gap.
pub const LEVEL_FLOOR: i64 = 980;

/// The federated source schema: one class per backend fragment. Backends
/// stream *keyed* rows (references arrive as the referenced object's string
/// key), so `MarkerA.clone_name` and `AssayC.marker` are strings here and
/// only become object references in the warehouse.
pub fn source_schema() -> Schema {
    Schema::new("fedsrc")
        .with_class(
            "CloneR",
            Type::record([
                ("name", Type::str()),
                ("length", Type::int()),
                ("lab", Type::str()),
            ]),
        )
        .with_class(
            "MarkerA",
            Type::record([
                ("name", Type::str()),
                ("position", Type::int()),
                ("clone_name", Type::str()),
            ]),
        )
        .with_class(
            "AssayC",
            Type::record([
                ("sample", Type::str()),
                ("marker", Type::str()),
                ("tissue", Type::str()),
                ("level", Type::int()),
                ("batch", Type::str()),
            ]),
        )
}

/// The integrated warehouse schema with real object references.
pub fn target_schema() -> Schema {
    Schema::new("fedwh")
        .with_class(
            "CloneW",
            Type::record([
                ("name", Type::str()),
                ("length", Type::int()),
                ("lab", Type::str()),
            ]),
        )
        .with_class(
            "MarkerW",
            Type::record([
                ("name", Type::str()),
                ("position", Type::int()),
                ("clone", Type::class("CloneW")),
            ]),
        )
        .with_class(
            "AssayW",
            Type::record([
                ("sample", Type::str()),
                ("marker", Type::class("MarkerW")),
                ("tissue", Type::str()),
                ("level", Type::int()),
            ]),
        )
}

/// The integration program. The three selections are written directly on
/// scan projections (not through a bound variable) so the planner can
/// recognise them as pushable; each source class is scanned exactly once
/// across the program, which keeps all three eligible for pushdown.
pub fn program_text() -> &'static str {
    "F1: X in CloneW, X.name = N, X.length = L, X.lab = B <= \
         C in CloneR, N = C.name, L = C.length, B = C.lab, C.length < 180000;\n\
     F2: M in MarkerW, M.name = N, M.position = P, M.clone = X <= \
         S in MarkerA, N = S.name, P = S.position, S.position < 30000000, \
         X in CloneW, X.name = S.clone_name;\n\
     F3: W in AssayW, W.sample = A, W.marker = M, W.tissue = T, W.level = L <= \
         R in AssayC, A = R.sample, T = R.tissue, L = R.level, 980 =< R.level, \
         M in MarkerW, M.name = R.marker;\n\
     K1: X = Mk_CloneW(N) <= X in CloneW, N = X.name;\n\
     K2: M = Mk_MarkerW(N) <= M in MarkerW, N = M.name;\n\
     K3: W = Mk_AssayW(A, T) <= W in AssayW, A = W.sample, T = W.tissue;"
}

/// The federated warehouse-load program.
pub fn program() -> Program {
    Program::new(
        "fedsrc_to_fedwh",
        vec![SchemaBinding::new(source_schema())],
        SchemaBinding::new(target_schema()),
    )
    .with_text(program_text())
}

/// Parameters of the federated generator.
#[derive(Clone, Copy, Debug)]
pub struct FederatedParams {
    /// Number of clones in the relational fragment.
    pub clones: usize,
    /// Number of markers in the ACeDB-style fragment.
    pub markers: usize,
    /// Number of assay rows in the CSV fragment.
    pub assays: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FederatedParams {
    fn default() -> Self {
        FederatedParams {
            clones: 40,
            markers: 120,
            assays: 2_000,
            seed: 13,
        }
    }
}

impl FederatedParams {
    /// The E13 bench shape scaled `factor`×: the assay CSV dominates, so the
    /// pushdown gap is the cost of streaming (and ingesting) 20 000·factor
    /// rows versus the ~2% that pass the level floor.
    pub fn scaled(factor: usize) -> Self {
        FederatedParams {
            clones: 100 * factor,
            markers: 300 * factor,
            assays: 20_000 * factor,
            seed: 13,
        }
    }
}

const LABS: [&str; 3] = ["Sanger", "LANL", "WashU"];
const TISSUES: [&str; 6] = ["liver", "brain", "kidney", "muscle", "lung", "skin"];

/// Generate the relational fragment: one `CloneR` table keyed by `name`.
/// Clone 0 always passes the length cutoff so the downstream fragments have
/// at least one reference target.
pub fn generate_clone_tables(params: &FederatedParams) -> Vec<Table> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut table = Table::new(TableSchema {
        name: "CloneR".to_string(),
        key_column: "name".to_string(),
        columns: vec![
            Column::str("name"),
            Column::int("length"),
            Column::str("lab"),
        ],
    });
    for c in 0..params.clones {
        let length = if c == 0 {
            120_000
        } else {
            rng.gen_range(10_000..200_000)
        };
        let lab = LABS[rng.gen_range(0..LABS.len())];
        table
            .push_row(vec![
                Value::str(format!("cR-{c}")),
                Value::Int(length),
                Value::str(lab),
            ])
            .expect("generated clone rows conform to the table schema");
    }
    vec![table]
}

/// The clone names that survive the pushed length filter — the only valid
/// reference targets for generated markers.
fn passing_clone_names(params: &FederatedParams) -> Vec<String> {
    generate_clone_tables(params)
        .remove(0)
        .rows
        .into_iter()
        .filter_map(|row| match (&row[0], &row[1]) {
            (Value::Str(name), Value::Int(length)) if *length < LENGTH_CUTOFF => Some(name.clone()),
            _ => None,
        })
        .collect()
}

/// Generate the ACeDB-style fragment: `Marker` objects with `Position` and
/// `Clone` tags, plus the mapping that streams them as `MarkerA` rows.
/// Marker 0 always passes the position cutoff, and every marker references
/// a clone that passes the length cutoff.
pub fn generate_marker_store(
    params: &FederatedParams,
) -> (AceStore, Vec<storage::acedb::AceMapping>) {
    let clones = passing_clone_names(params);
    assert!(!clones.is_empty(), "clone 0 always passes the cutoff");
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(1));
    let mut store = AceStore::new();
    for m in 0..params.markers {
        let position = if m == 0 {
            1_000_000
        } else {
            rng.gen_range(0..50_000_000)
        };
        let clone = &clones[rng.gen_range(0..clones.len())];
        store.add(
            AceObject::new("Marker", format!("D13S{m}"))
                .with_tag("Position", AceValue::Int(position))
                .with_tag(
                    "Clone",
                    AceValue::ObjectRef("Clone".to_string(), clone.clone()),
                ),
        );
    }
    let mappings = vec![storage::acedb::AceMapping::new(
        "Marker",
        "MarkerA",
        &[("Position", "position"), ("Clone", "clone_name")],
    )];
    (store, mappings)
}

/// The marker names that survive the pushed position filter — the only
/// valid reference targets for generated assays.
fn passing_marker_names(params: &FederatedParams) -> Vec<String> {
    let (store, _) = generate_marker_store(params);
    store
        .of_class("Marker")
        .into_iter()
        .filter(|object| {
            matches!(object.tags.get("Position"),
                     Some(AceValue::Int(p)) if *p < POSITION_CUTOFF)
        })
        .map(|object| object.name.clone())
        .collect()
}

/// Generate the CSV fragment as text: `AssayC` rows keyed by `sample`, each
/// referencing a marker that passes the position cutoff. The `batch` column
/// is read by no clause, so the projection push prunes it at the source.
pub fn generate_assay_csv(params: &FederatedParams) -> String {
    let markers = passing_marker_names(params);
    assert!(!markers.is_empty(), "marker 0 always passes the cutoff");
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(2));
    let mut table = Table::new(TableSchema {
        name: "AssayC".to_string(),
        key_column: "sample".to_string(),
        columns: vec![
            Column::str("sample"),
            Column::str("marker"),
            Column::str("tissue"),
            Column::int("level"),
            Column::str("batch"),
        ],
    });
    for a in 0..params.assays {
        let marker = &markers[rng.gen_range(0..markers.len())];
        let tissue = TISSUES[a % TISSUES.len()];
        let level = rng.gen_range(0..1000);
        table
            .push_row(vec![
                Value::str(format!("A{a}")),
                Value::str(marker.clone()),
                Value::str(tissue),
                Value::Int(level),
                Value::str(format!("B{}", a % 7)),
            ])
            .expect("generated assay rows conform to the table schema");
    }
    storage::csv::to_csv(&table)
}

/// Build the three backend providers for `params`. Returned in source-class
/// order (`AssayC` CSV, `MarkerA` AceDB, `CloneR` relational); callers pass
/// them to [`morphase::Morphase::transform_federated`] as
/// `&[&csv, &ace, &rel]`.
pub fn providers(params: &FederatedParams) -> (CsvDirProvider, AceProvider, RelationalProvider) {
    let csv = CsvDirProvider::from_texts(vec![(
        "AssayC".to_string(),
        "generated://AssayC.csv".to_string(),
        generate_assay_csv(params),
    )])
    .expect("generated assay CSV parses cleanly");
    let (store, mappings) = generate_marker_store(params);
    let ace = AceProvider::new(store, mappings);
    let rel = RelationalProvider::new(generate_clone_tables(params));
    (csv, ace, rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::{Pushdown, ScanProvider, DEFAULT_CHUNK_ROWS};
    use wol_model::ClassName;

    #[test]
    fn schemas_and_program_validate() {
        assert!(source_schema().validate().is_ok());
        assert!(target_schema().validate().is_ok());
        program().validate().unwrap();
    }

    #[test]
    fn generators_are_deterministic() {
        let params = FederatedParams::default();
        assert_eq!(generate_assay_csv(&params), generate_assay_csv(&params));
        let (a, _) = generate_marker_store(&params);
        let (b, _) = generate_marker_store(&params);
        assert_eq!(a.of_class("Marker").len(), b.of_class("Marker").len());
        assert_eq!(
            generate_clone_tables(&params),
            generate_clone_tables(&params)
        );
    }

    #[test]
    fn every_reference_targets_a_surviving_object() {
        let params = FederatedParams {
            clones: 15,
            markers: 40,
            assays: 200,
            seed: 7,
        };
        let clones = passing_clone_names(&params);
        let (store, _) = generate_marker_store(&params);
        for object in store.of_class("Marker") {
            let Some(AceValue::ObjectRef(_, name)) = object.tags.get("Clone") else {
                panic!("every marker carries a Clone tag");
            };
            assert!(clones.contains(name), "marker references a filtered clone");
        }
        let markers = passing_marker_names(&params);
        let csv = generate_assay_csv(&params);
        let table = storage::csv::parse_csv("AssayC", &csv).unwrap();
        let marker_idx = table
            .schema
            .columns
            .iter()
            .position(|c| c.name == "marker")
            .unwrap();
        for row in &table.rows {
            let Value::Str(name) = &row[marker_idx] else {
                panic!("marker column is a string key");
            };
            assert!(markers.contains(name), "assay references a filtered marker");
        }
    }

    #[test]
    fn providers_cover_the_source_schema() {
        let params = FederatedParams {
            clones: 6,
            markers: 12,
            assays: 60,
            seed: 3,
        };
        let (csv, ace, rel) = providers(&params);
        let backends: [&dyn ScanProvider; 3] = [&csv, &ace, &rel];
        let mut classes: Vec<ClassName> = backends.iter().flat_map(|p| p.classes()).collect();
        classes.sort();
        assert_eq!(
            classes,
            vec![
                ClassName::new("AssayC"),
                ClassName::new("CloneR"),
                ClassName::new("MarkerA"),
            ]
        );
        for backend in backends {
            for class in backend.classes() {
                let stats = backend.stats(&class).unwrap();
                let mut rows = 0usize;
                backend
                    .scan(
                        &class,
                        &Pushdown::none(),
                        DEFAULT_CHUNK_ROWS,
                        &mut |chunk| {
                            rows += chunk.len();
                            Ok(())
                        },
                    )
                    .unwrap();
                assert_eq!(rows, stats.rows, "stats match the streamed extent");
                assert!(stats.ndvs.contains_key("name") || stats.ndvs.contains_key("sample"));
            }
        }
    }

    #[test]
    fn level_floor_is_selective() {
        let params = FederatedParams::default();
        let table = storage::csv::parse_csv("AssayC", &generate_assay_csv(&params)).unwrap();
        let level_idx = table
            .schema
            .columns
            .iter()
            .position(|c| c.name == "level")
            .unwrap();
        let passing = table
            .rows
            .iter()
            .filter(|row| matches!(&row[level_idx], Value::Int(l) if *l >= LEVEL_FLOOR))
            .count();
        assert!(passing > 0, "some assays pass the floor");
        assert!(
            passing * 10 < table.rows.len(),
            "the floor keeps under 10% of rows ({passing}/{})",
            table.rows.len()
        );
    }
}
