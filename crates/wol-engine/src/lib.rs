//! # wol-engine
//!
//! The WOL engine: the paper's primary contribution, implemented as a set of
//! composable analyses and rewrites over [`wol_lang`] programs and
//! [`wol_model`] instances.
//!
//! * [`env`] — reference evaluation: databases, bindings, term evaluation and
//!   body matching.
//! * [`constraints`] — constraint checking and constraint analysis (key
//!   extraction, classification).
//! * [`snf`] — semi-normal form rewriting (Section 5).
//! * [`headform`] — analysis of transformation-clause heads into partial
//!   object descriptions.
//! * [`normalize`] — normalisation by unify/unfold into normal-form clauses,
//!   plus a single-pass executor for normal-form programs.
//! * [`optimize`] — source-constraint-based simplification and unsatisfiable
//!   clause pruning (Section 4.2).
//! * [`semantics`] — the naive multi-pass evaluator (the strategy Section 5
//!   argues is inefficient), used as reference semantics and baseline.
//! * [`completeness`] — static completeness analysis (Section 3.2).
//! * [`info_preserve`] — empirical information-preservation (injectivity)
//!   checking (Section 4.3).

pub mod completeness;
pub mod constraints;
pub mod env;
pub mod error;
pub mod headform;
pub mod info_preserve;
pub mod normalize;
pub mod optimize;
pub mod rotation;
pub mod semantics;
pub mod snf;

pub use completeness::{check_completeness, CompletenessReport};
pub use constraints::{
    check_constraint, check_constraints, classify_constraint, enforce_constraints,
    extract_merge_keys, extract_object_keys, ConstraintClass, ObjectKey, Violation,
};
pub use env::{
    eval_term, match_body, match_body_partitioned, match_body_reference, match_body_with_stats,
    Bindings, Databases, MatchStats,
};
pub use error::EngineError;
pub use info_preserve::{canonical_form, check_injective, instances_equivalent, InjectivityReport};
pub use normalize::{execute, normalize, NormalClause, NormalProgram, NormalizeOptions};
pub use rotation::{batch_is_additive, delta_rotations, Rotation, Slot};
pub use semantics::{naive_transform, naive_transform_with_report, NaiveOptions, NaiveReport};
pub use snf::{program_to_snf, to_snf, SnfStats};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
