//! Completeness analysis of transformation programs.
//!
//! "A transformation program Tr is said to be complete iff whenever there is a
//! Tr-transformation of a particular source database instance, there is a
//! unique smallest such Tr-transformation ... In general, if a transformation
//! program is not complete, it is because the programmer has left out some
//! part of the description of the transformation." (Section 3.2)
//!
//! Completeness is undecidable in general (Section 5), so this module provides
//! the practical static analysis Morphase uses to point the programmer at the
//! likely omissions: target classes that nothing creates, and attributes that
//! no clause ever defines.

use std::collections::{BTreeMap, BTreeSet};

use wol_model::{ClassName, Label, Schema, Type};

use crate::normalize::NormalProgram;

/// Report of the completeness analysis of a normalised program against the
/// target schema.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompletenessReport {
    /// Target classes for which no clause creates any object.
    pub uncreated_classes: Vec<ClassName>,
    /// For each class, the required (non-optional) attributes that no clause
    /// defines.
    pub missing_attributes: BTreeMap<ClassName, Vec<Label>>,
    /// Classes that have creating clauses but no key, so partial descriptions
    /// cannot be merged deterministically.
    pub unkeyed_classes: Vec<ClassName>,
}

impl CompletenessReport {
    /// True when nothing suspicious was found.
    pub fn is_complete(&self) -> bool {
        self.uncreated_classes.is_empty()
            && self.missing_attributes.is_empty()
            && self.unkeyed_classes.is_empty()
    }

    /// Render a human-readable summary, one finding per line.
    pub fn summary(&self) -> String {
        let mut lines = Vec::new();
        for class in &self.uncreated_classes {
            lines.push(format!("no clause creates objects of class `{class}`"));
        }
        for (class, attrs) in &self.missing_attributes {
            lines.push(format!(
                "class `{class}` is missing definitions for required attributes {attrs:?}"
            ));
        }
        for class in &self.unkeyed_classes {
            lines.push(format!(
                "class `{class}` has creating clauses but no key constraint; partial descriptions \
                 cannot be merged deterministically"
            ));
        }
        if lines.is_empty() {
            "the program completely describes the target".to_string()
        } else {
            lines.join("\n")
        }
    }
}

/// Analyse a normalised program against the target schema.
pub fn check_completeness(normal: &NormalProgram, target_schema: &Schema) -> CompletenessReport {
    let mut report = CompletenessReport::default();
    for (class, ty) in target_schema.classes() {
        let creating = normal.creating_clauses(class);
        if creating.is_empty() {
            report.uncreated_classes.push(class.clone());
            continue;
        }
        // Which attributes does the program define, across all clauses for the class?
        let defined: BTreeSet<&Label> = normal
            .clauses
            .iter()
            .filter(|c| &c.class == class)
            .flat_map(|c| c.attrs.keys())
            .collect();
        if let Type::Record(fields) = ty {
            let missing: Vec<Label> = fields
                .iter()
                .filter(|(label, field_ty)| {
                    !matches!(field_ty, Type::Optional(_)) && !defined.contains(label)
                })
                .map(|(label, _)| label.clone())
                .collect();
            if !missing.is_empty() {
                report.missing_attributes.insert(class.clone(), missing);
            }
        }
        if !normal.keys.contains_key(class) && creating.len() > 1 {
            report.unkeyed_classes.push(class.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::{normalize, NormalizeOptions};
    use wol_lang::program::{Program, SchemaBinding};

    fn euro_schema() -> Schema {
        Schema::new("euro").with_class(
            "CountryE",
            Type::record([
                ("name", Type::str()),
                ("language", Type::str()),
                ("currency", Type::str()),
            ]),
        )
    }

    fn target_schema() -> Schema {
        Schema::new("target")
            .with_class(
                "CountryT",
                Type::record([
                    ("name", Type::str()),
                    ("language", Type::str()),
                    ("currency", Type::str()),
                    ("capital", Type::optional(Type::class("CityT"))),
                ]),
            )
            .with_class("CityT", Type::record([("name", Type::str())]))
    }

    #[test]
    fn complete_program_reported_complete_for_covered_classes() {
        let program = Program::new(
            "p",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            "T1: X in CountryT, X.name = E.name, X.language = E.language, X.currency = E.currency <= E in CountryE;\n\
             T2: Y in CityT, Y.name = E.name <= E in CountryE;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;\n\
             C4: Y = Mk_CityT(N) <= Y in CityT, N = Y.name;",
        );
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let report = check_completeness(&normal, &target_schema());
        assert!(report.is_complete(), "{}", report.summary());
        assert!(report.summary().contains("completely describes"));
    }

    #[test]
    fn missing_class_and_attribute_detected() {
        let program = Program::new(
            "p",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            // CityT is never created; CountryT.currency is never defined.
            "T1: X in CountryT, X.name = E.name, X.language = E.language <= E in CountryE;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;",
        );
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let report = check_completeness(&normal, &target_schema());
        assert!(!report.is_complete());
        assert_eq!(report.uncreated_classes, vec![ClassName::new("CityT")]);
        assert_eq!(
            report.missing_attributes[&ClassName::new("CountryT")],
            vec!["currency".to_string()]
        );
        let summary = report.summary();
        assert!(summary.contains("CityT"));
        assert!(summary.contains("currency"));
    }

    #[test]
    fn optional_attributes_are_not_required() {
        let program = Program::new(
            "p",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            "T1: X in CountryT, X.name = E.name, X.language = E.language, X.currency = E.currency <= E in CountryE;\n\
             T2: Y in CityT, Y.name = E.name <= E in CountryE;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;\n\
             C4: Y = Mk_CityT(N) <= Y in CityT, N = Y.name;",
        );
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let report = check_completeness(&normal, &target_schema());
        // `capital` is optional and undefined — still complete.
        assert!(!report
            .missing_attributes
            .contains_key(&ClassName::new("CountryT")));
    }

    #[test]
    fn unkeyed_class_with_multiple_creators_flagged() {
        let program = Program::new(
            "p",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            "T1: X in CountryT, X.name = E.name, X.language = E.language, X.currency = E.currency <= E in CountryE;\n\
             T1b: X in CountryT, X.name = E.name, X.language = E.language, X.currency = \"euro\" <= E in CountryE;",
        );
        let options = NormalizeOptions {
            use_target_keys: false,
            ..NormalizeOptions::default()
        };
        let normal = normalize(&program, &options).unwrap();
        let report = check_completeness(&normal, &target_schema());
        assert!(report.unkeyed_classes.contains(&ClassName::new("CountryT")));
    }
}
