//! Column-major derived storage over class extents.
//!
//! # Storage layout
//!
//! The authoritative representation of an instance stays row-major — a
//! `BTreeMap<Oid, Value>` holding one complex value per object — because the
//! WOL semantics (keyed merges, mutation logs, persistence) are defined over
//! whole objects. What dominates *query* time, however, is scanning one
//! attribute across a whole extent, and the row-major form makes every such
//! scan chase a `BTreeMap` node and a boxed [`Value`] tree per row.
//!
//! This module provides the derived, cache-resident column-major view the
//! vectorized executor (`cpl`'s batch pipelines) runs over:
//!
//! * **Row index** — per class, the extent's identities in extent (ascending
//!   `Oid`) order, shared as `Arc<Vec<Oid>>`. Row position `i` in every column
//!   of the class refers to the `i`-th identity of this index.
//! * **Attribute columns** ([`AttrColumn`]) — per `(class, attribute)`, the
//!   attribute's values in row-index order, stored as fixed-size
//!   [`ColumnChunk`]s of [`CHUNK_ROWS`] rows each.
//!
//! # Column formats
//!
//! Each chunk stores one of the typed layouts of [`ColumnData`]:
//!
//! * `Int(Vec<i64>)`, `Real(Vec<f64>)`, `Bool(Vec<bool>)` — dense primitive
//!   vectors. Reals keep their exact bit patterns (the model's `RealVal`
//!   total order distinguishes `-0.0` from `0.0` and NaN payloads, so the
//!   round-trip must too).
//! * `Str(Vec<u32>)` — **dictionary encoded**: each cell is a code into the
//!   instance-wide [`StringInterner`]. All string columns of an instance
//!   share one intern table, so two columns' codes are directly comparable
//!   and an equality against a constant is one dictionary lookup plus a
//!   `u32` compare per row.
//! * `Oid(Vec<Oid>)` — object references, dense.
//! * `Boxed(Vec<Value>)` — the fallback for everything the typed layouts
//!   cannot hold: nested values (sets, lists, records, variants), attributes
//!   whose values mix kinds across rows, attributes no row carries, and
//!   string columns whose dictionary hit its capacity limit.
//!
//! A chunk may carry a **missing bitmap**: rows whose object does not have
//! the attribute (optional fields) keep a placeholder in the typed vector
//! and set their bit. The executor treats a missing cell exactly as the
//! row-major evaluator treats a failed projection — an evaluation error that
//! makes predicates false and drops `Map` rows.
//!
//! # Interning rules
//!
//! The intern table is **append-only**: codes, once handed out, never change
//! meaning. Column invalidation therefore never touches the table — a
//! rebuilt column re-interns its strings and gets the same codes back. The
//! table only resets when the whole derived cache is dropped (instance
//! clone, or [`IndexCache::clear`](crate::index::IndexCache::clear)). A
//! capacity limit (normally `u32::MAX`) bounds the table; a column whose
//! strings would overflow it falls back to the boxed layout rather than
//! failing.
//!
//! # Invalidation rules
//!
//! Columns are derived data and live in the same per-class cache as the
//! attribute indexes and histograms ([`crate::index::IndexCache`]): **any**
//! mutation of a class (insert / update / remove) drops that class's row
//! index and all its columns wholesale, and the next scan rebuilds them
//! lazily. Equality and cloning of instances ignore the columnar cache
//! entirely.

use std::collections::HashMap;
use std::sync::Arc;

use crate::oid::Oid;
use crate::values::Value;

/// Rows per column chunk. Chunks are the batch granularity of the vectorized
/// executor and the morsel granularity of its parallel dispatch.
pub const CHUNK_ROWS: usize = 1024;

/// The shared, append-only string dictionary of an instance's columnar cache.
#[derive(Debug)]
pub struct StringInterner {
    strings: Vec<Arc<str>>,
    codes: HashMap<Arc<str>, u32>,
    limit: usize,
    /// Cached immutable snapshot of `strings`, rebuilt lazily after appends,
    /// so executors can hold the dictionary outside the cache lock for O(1).
    snapshot: Option<Arc<Vec<Arc<str>>>>,
}

impl Default for StringInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl StringInterner {
    /// An interner with the default capacity (`u32::MAX` distinct strings).
    pub fn new() -> Self {
        Self::with_limit(u32::MAX as usize)
    }

    /// An interner holding at most `limit` distinct strings. Tests use tiny
    /// limits to exercise the dictionary-overflow fallback.
    pub fn with_limit(limit: usize) -> Self {
        StringInterner {
            strings: Vec::new(),
            codes: HashMap::new(),
            limit: limit.min(u32::MAX as usize),
            snapshot: None,
        }
    }

    /// The code of `s`, interning it if new. `None` when the table is full —
    /// the caller falls back to a boxed column.
    pub fn intern(&mut self, s: &str) -> Option<u32> {
        if let Some(&code) = self.codes.get(s) {
            return Some(code);
        }
        if self.strings.len() >= self.limit {
            return None;
        }
        let code = self.strings.len() as u32;
        let arc: Arc<str> = Arc::from(s);
        self.strings.push(arc.clone());
        self.codes.insert(arc, code);
        self.snapshot = None;
        Some(code)
    }

    /// The code of `s` if it is already interned (no insertion).
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.codes.get(s).copied()
    }

    /// The string behind a code.
    pub fn resolve(&self, code: u32) -> Option<&Arc<str>> {
        self.strings.get(code as usize)
    }

    /// An immutable snapshot of the dictionary (code → string), cached so
    /// repeated snapshots after the same appends are O(1) `Arc` clones.
    pub fn snapshot(&mut self) -> Arc<Vec<Arc<str>>> {
        if self.snapshot.is_none() {
            self.snapshot = Some(Arc::new(self.strings.clone()));
        }
        self.snapshot.as_ref().expect("just installed").clone()
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// A packed row bitmap (one bit per row of a chunk).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    ones: usize,
}

impl Bitmap {
    /// An all-zero bitmap covering `len` rows.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            ones: 0,
        }
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize) {
        let (word, bit) = (i / 64, i % 64);
        if self.words[word] & (1 << bit) == 0 {
            self.words[word] |= 1 << bit;
            self.ones += 1;
        }
    }

    /// Whether bit `i` is set.
    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.ones
    }
}

/// The physical kind of a column (see the module docs for the formats).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnKind {
    /// Dense `i64` vector.
    Int,
    /// Dense `f64` vector (exact bit patterns).
    Real,
    /// Dense `bool` vector.
    Bool,
    /// Dictionary codes into the shared [`StringInterner`].
    Str,
    /// Dense object-identity vector.
    Oid,
    /// Boxed fallback (nested / mixed / all-missing / dictionary overflow).
    Boxed,
}

/// One chunk's cell storage.
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// Integers.
    Int(Vec<i64>),
    /// Reals, exact bits.
    Real(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Dictionary codes.
    Str(Vec<u32>),
    /// Object identities.
    Oid(Vec<Oid>),
    /// Boxed values (fallback layout).
    Boxed(Vec<Value>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Real(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Oid(v) => v.len(),
            ColumnData::Boxed(v) => v.len(),
        }
    }
}

/// A fixed-size run of one attribute's cells (see [`CHUNK_ROWS`]).
#[derive(Clone, Debug)]
pub struct ColumnChunk {
    base: usize,
    data: ColumnData,
    missing: Option<Bitmap>,
}

impl ColumnChunk {
    /// Global row position of this chunk's first cell.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Rows in this chunk.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The typed cell storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Whether the cell at chunk-local position `local` is missing (the
    /// object does not carry the attribute).
    pub fn is_missing(&self, local: usize) -> bool {
        self.missing.as_ref().is_some_and(|b| b.get(local))
    }

    /// Number of missing cells in this chunk.
    pub fn missing_count(&self) -> usize {
        self.missing.as_ref().map_or(0, Bitmap::count)
    }
}

/// One `(class, attribute)` column: the attribute's cells across the class
/// extent in row-index order, chunked.
#[derive(Clone, Debug)]
pub struct AttrColumn {
    kind: ColumnKind,
    chunks: Vec<ColumnChunk>,
    rows: usize,
    present: usize,
}

impl AttrColumn {
    /// Build a column from per-row projected values (`None` = the object
    /// does not carry the attribute). Strings are interned into `interner`;
    /// mixed-kind, nested, all-missing, and dictionary-overflow inputs fall
    /// back to the boxed layout.
    pub fn build(values: &[Option<&Value>], interner: &mut StringInterner) -> AttrColumn {
        let rows = values.len();
        let present = values.iter().flatten().count();
        let kind = Self::classify(values);
        let chunks = match kind {
            ColumnKind::Int => typed_chunks(
                values,
                ColumnData::Int,
                |v| match v {
                    Value::Int(i) => Some(*i),
                    _ => None,
                },
                || 0,
            ),
            ColumnKind::Real => typed_chunks(
                values,
                ColumnData::Real,
                |v| match v {
                    Value::Real(r) => Some(r.get()),
                    _ => None,
                },
                || 0.0,
            ),
            ColumnKind::Bool => typed_chunks(
                values,
                ColumnData::Bool,
                |v| match v {
                    Value::Bool(b) => Some(*b),
                    _ => None,
                },
                || false,
            ),
            ColumnKind::Oid => typed_chunks(
                values,
                ColumnData::Oid,
                |v| match v {
                    Value::Oid(o) => Some(o.clone()),
                    _ => None,
                },
                || Oid::new(crate::types::ClassName::new(""), 0),
            ),
            ColumnKind::Str => typed_chunks(
                values,
                ColumnData::Str,
                |v| match v {
                    Value::Str(s) => interner.intern(s),
                    _ => None,
                },
                || 0,
            ),
            ColumnKind::Boxed => None,
        };
        match chunks {
            Some(chunks) => AttrColumn {
                kind,
                chunks,
                rows,
                present,
            },
            // Kind mismatch is impossible after classification, so reaching
            // here means the dictionary overflowed: fall back to boxing.
            None => AttrColumn {
                kind: ColumnKind::Boxed,
                chunks: boxed_chunks(values),
                rows,
                present,
            },
        }
    }

    fn classify(values: &[Option<&Value>]) -> ColumnKind {
        let mut kind: Option<ColumnKind> = None;
        for value in values.iter().flatten() {
            let k = match value {
                Value::Int(_) => ColumnKind::Int,
                Value::Real(_) => ColumnKind::Real,
                Value::Bool(_) => ColumnKind::Bool,
                Value::Str(_) => ColumnKind::Str,
                Value::Oid(_) => ColumnKind::Oid,
                _ => return ColumnKind::Boxed,
            };
            match kind {
                None => kind = Some(k),
                Some(k0) if k0 != k => return ColumnKind::Boxed,
                Some(_) => {}
            }
        }
        kind.unwrap_or(ColumnKind::Boxed)
    }

    /// The physical layout this column uses.
    pub fn kind(&self) -> ColumnKind {
        self.kind
    }

    /// Rows covered (the class extent size at build time).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Rows that actually carry the attribute.
    pub fn present(&self) -> usize {
        self.present
    }

    /// The chunks, in row order.
    pub fn chunks(&self) -> &[ColumnChunk] {
        &self.chunks
    }

    /// The chunk holding global row `row`, with the chunk-local position.
    #[inline]
    pub fn locate(&self, row: usize) -> (&ColumnChunk, usize) {
        (&self.chunks[row / CHUNK_ROWS], row % CHUNK_ROWS)
    }

    /// Materialise the cell at global row `row` back into a row-major
    /// [`Value`], resolving dictionary codes through `dict` (a
    /// [`StringInterner::snapshot`]). `None` when the cell is missing. The
    /// result is bit-identical to the value the row-major projection holds.
    pub fn value_at(&self, row: usize, dict: &[Arc<str>]) -> Option<Value> {
        let (chunk, local) = self.locate(row);
        if chunk.is_missing(local) {
            return None;
        }
        Some(match &chunk.data {
            ColumnData::Int(v) => Value::Int(v[local]),
            ColumnData::Real(v) => Value::real(v[local]),
            ColumnData::Bool(v) => Value::Bool(v[local]),
            ColumnData::Str(v) => Value::Str(dict[v[local] as usize].to_string()),
            ColumnData::Oid(v) => Value::Oid(v[local].clone()),
            ColumnData::Boxed(v) => v[local].clone(),
        })
    }
}

/// Build typed chunks, lowering each present cell with `lower` (`None` from
/// `lower` aborts the whole attempt — dictionary overflow). Missing cells
/// push a never-read `placeholder` and set the chunk's missing bit.
fn typed_chunks<T>(
    values: &[Option<&Value>],
    wrap: impl Fn(Vec<T>) -> ColumnData,
    mut lower: impl FnMut(&Value) -> Option<T>,
    placeholder: impl Fn() -> T,
) -> Option<Vec<ColumnChunk>> {
    let mut chunks = Vec::with_capacity(values.len().div_ceil(CHUNK_ROWS));
    for (ci, block) in values.chunks(CHUNK_ROWS).enumerate() {
        let mut data = Vec::with_capacity(block.len());
        let mut missing: Option<Bitmap> = None;
        for (i, cell) in block.iter().enumerate() {
            match cell {
                Some(value) => data.push(lower(value)?),
                None => {
                    missing
                        .get_or_insert_with(|| Bitmap::new(block.len()))
                        .set(i);
                    data.push(placeholder());
                }
            }
        }
        chunks.push(ColumnChunk {
            base: ci * CHUNK_ROWS,
            data: wrap(data),
            missing,
        });
    }
    Some(chunks)
}

fn boxed_chunks(values: &[Option<&Value>]) -> Vec<ColumnChunk> {
    let mut chunks = Vec::with_capacity(values.len().div_ceil(CHUNK_ROWS));
    for (ci, block) in values.chunks(CHUNK_ROWS).enumerate() {
        let mut data = Vec::with_capacity(block.len());
        let mut missing: Option<Bitmap> = None;
        for (i, cell) in block.iter().enumerate() {
            match cell {
                Some(value) => data.push((*value).clone()),
                None => {
                    missing
                        .get_or_insert_with(|| Bitmap::new(block.len()))
                        .set(i);
                    data.push(Value::Unit);
                }
            }
        }
        chunks.push(ColumnChunk {
            base: ci * CHUNK_ROWS,
            data: ColumnData::Boxed(data),
            missing,
        });
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClassName;

    fn build(values: &[Option<Value>]) -> (AttrColumn, StringInterner) {
        let mut interner = StringInterner::new();
        let refs: Vec<Option<&Value>> = values.iter().map(Option::as_ref).collect();
        let col = AttrColumn::build(&refs, &mut interner);
        (col, interner)
    }

    #[test]
    fn empty_input_builds_an_empty_column() {
        let (col, _) = build(&[]);
        assert_eq!(col.rows(), 0);
        assert_eq!(col.present(), 0);
        assert!(col.chunks().is_empty());
        assert_eq!(col.kind(), ColumnKind::Boxed);
    }

    #[test]
    fn int_column_round_trips_bit_identically() {
        let values: Vec<Option<Value>> = (0..3000)
            .map(|i| (i % 7 != 0).then(|| Value::int(i)))
            .collect();
        let (col, mut interner) = build(&values);
        assert_eq!(col.kind(), ColumnKind::Int);
        assert_eq!(col.rows(), 3000);
        assert_eq!(col.chunks().len(), 3); // 1024-row chunks
        assert_eq!(col.present(), values.iter().flatten().count());
        let dict = interner.snapshot();
        for (i, v) in values.iter().enumerate() {
            assert_eq!(col.value_at(i, &dict), *v, "row {i}");
        }
    }

    #[test]
    fn real_column_preserves_exact_bits() {
        let values = vec![
            Some(Value::real(0.0)),
            Some(Value::real(-0.0)),
            Some(Value::real(f64::NAN)),
            None,
            Some(Value::real(1.5)),
        ];
        let (col, mut interner) = build(&values);
        assert_eq!(col.kind(), ColumnKind::Real);
        let dict = interner.snapshot();
        for (i, v) in values.iter().enumerate() {
            // Value equality on reals is total_cmp equality: exact bits.
            assert_eq!(col.value_at(i, &dict), *v, "row {i}");
        }
    }

    #[test]
    fn string_column_dictionary_encodes_through_the_shared_interner() {
        let values = vec![
            Some(Value::str("hot")),
            Some(Value::str("cold")),
            Some(Value::str("hot")),
            None,
        ];
        let (col, mut interner) = build(&values);
        assert_eq!(col.kind(), ColumnKind::Str);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.code_of("hot"), Some(0));
        assert_eq!(interner.code_of("cold"), Some(1));
        assert_eq!(interner.code_of("absent"), None);
        let ColumnData::Str(codes) = col.chunks()[0].data() else {
            panic!("expected dictionary codes");
        };
        assert_eq!(codes, &[0, 1, 0, 0]);
        assert!(col.chunks()[0].is_missing(3));
        let dict = interner.snapshot();
        assert_eq!(col.value_at(0, &dict), Some(Value::str("hot")));
        assert_eq!(col.value_at(3, &dict), None);
    }

    #[test]
    fn dictionary_overflow_falls_back_to_the_boxed_layout() {
        let mut interner = StringInterner::with_limit(2);
        let values = [
            Some(Value::str("a")),
            Some(Value::str("b")),
            Some(Value::str("c")),
        ];
        let refs: Vec<Option<&Value>> = values.iter().map(Option::as_ref).collect();
        let col = AttrColumn::build(&refs, &mut interner);
        assert_eq!(col.kind(), ColumnKind::Boxed);
        assert_eq!(col.present(), 3);
        // Boxed cells still round-trip exactly.
        let dict = interner.snapshot();
        assert_eq!(col.value_at(2, &dict), Some(Value::str("c")));
        // Re-interning already-seen strings keeps working at the limit.
        assert_eq!(interner.intern("a"), Some(0));
        assert_eq!(interner.intern("z"), None);
    }

    #[test]
    fn mixed_kinds_and_nested_values_fall_back_to_boxed() {
        let (col, mut interner) = build(&[Some(Value::int(1)), Some(Value::str("x"))]);
        assert_eq!(col.kind(), ColumnKind::Boxed);
        let dict = interner.snapshot();
        assert_eq!(col.value_at(0, &dict), Some(Value::int(1)));
        let (col, _) = build(&[Some(Value::set([Value::int(1)]))]);
        assert_eq!(col.kind(), ColumnKind::Boxed);
    }

    #[test]
    fn all_missing_column_is_boxed_with_every_bit_set() {
        let values: Vec<Option<Value>> = vec![None; 10];
        let (col, mut interner) = build(&values);
        assert_eq!(col.kind(), ColumnKind::Boxed);
        assert_eq!(col.present(), 0);
        assert_eq!(col.chunks()[0].missing_count(), 10);
        let dict = interner.snapshot();
        for i in 0..10 {
            assert_eq!(col.value_at(i, &dict), None);
        }
    }

    #[test]
    fn oid_column_stores_identities_densely() {
        let class = ClassName::new("C");
        let values: Vec<Option<Value>> = (0..5)
            .map(|i| (i != 2).then(|| Value::oid(Oid::new(class.clone(), i))))
            .collect();
        let (col, mut interner) = build(&values);
        assert_eq!(col.kind(), ColumnKind::Oid);
        let dict = interner.snapshot();
        assert_eq!(col.value_at(0, &dict), values[0].clone());
        assert_eq!(col.value_at(2, &dict), None);
    }

    #[test]
    fn interner_snapshot_is_cached_and_invalidated_by_appends() {
        let mut interner = StringInterner::new();
        interner.intern("a");
        let s1 = interner.snapshot();
        let s2 = interner.snapshot();
        assert!(Arc::ptr_eq(&s1, &s2));
        interner.intern("b");
        let s3 = interner.snapshot();
        assert!(!Arc::ptr_eq(&s1, &s3));
        assert_eq!(s3.len(), 2);
    }

    #[test]
    fn bitmap_counts_and_bounds() {
        let mut b = Bitmap::new(70);
        assert!(!b.get(69));
        b.set(0);
        b.set(69);
        b.set(69); // idempotent
        assert_eq!(b.count(), 2);
        assert!(b.get(0) && b.get(69) && !b.get(1));
        assert!(!b.get(1000)); // out of range reads as unset
    }
}
