//! Tokens of the WOL concrete syntax.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// An identifier: a variable, class name, attribute label, or the prefix
    /// of a Skolem (`Mk_...`) or variant-injection (`ins_...`) term.
    Ident(String),
    /// A string literal.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A real literal.
    Real(f64),
    /// The keyword `in` (class membership).
    KwIn,
    /// The keyword `member` (set membership).
    KwMember,
    /// The keyword `true`.
    KwTrue,
    /// The keyword `false`.
    KwFalse,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `=<` (less than or equal; `<=` is reserved for the clause arrow)
    Leq,
    /// `<=` — the clause arrow separating head from body.
    Arrow,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Str(s) => write!(f, "string literal {s:?}"),
            Token::Int(i) => write!(f, "integer literal {i}"),
            Token::Real(r) => write!(f, "real literal {r}"),
            Token::KwIn => write!(f, "`in`"),
            Token::KwMember => write!(f, "`member`"),
            Token::KwTrue => write!(f, "`true`"),
            Token::KwFalse => write!(f, "`false`"),
            Token::Comma => write!(f, "`,`"),
            Token::Semicolon => write!(f, "`;`"),
            Token::Dot => write!(f, "`.`"),
            Token::Colon => write!(f, "`:`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::Eq => write!(f, "`=`"),
            Token::Neq => write!(f, "`!=`"),
            Token::Lt => write!(f, "`<`"),
            Token::Leq => write!(f, "`=<`"),
            Token::Arrow => write!(f, "`<=`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with the byte offset where it starts.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset in the source text.
    pub offset: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_display() {
        assert_eq!(
            Token::Ident("CityE".into()).to_string(),
            "identifier `CityE`"
        );
        assert_eq!(Token::Arrow.to_string(), "`<=`");
        assert_eq!(Token::Leq.to_string(), "`=<`");
        assert_eq!(Token::Str("x".into()).to_string(), "string literal \"x\"");
        assert_eq!(Token::Eof.to_string(), "end of input");
    }
}
