//! Evaluation environment: databases, bindings, term evaluation and
//! body matching.
//!
//! WOL clause bodies are matched against one or more database instances (the
//! source databases, and — for non-normal-form clauses — also the target
//! database built so far). The matcher enumerates all bindings of the body's
//! variables that make every body atom true.
//!
//! Two matchers are provided:
//!
//! * [`match_body`] — the **indexed** matcher. It compiles each body into a
//!   one-shot greedy join plan (cheap filters first, then atoms ordered by
//!   estimated selectivity from extent sizes and bound-variable coverage),
//!   answers `Member` atoms that are equated to a bound attribute value
//!   through the instances' secondary attribute indexes
//!   ([`wol_model::index`]) instead of enumerating extents, and executes the
//!   plan over a single mutable [`Bindings`] frame with an undo trail, so
//!   extending a binding never deep-clones the binding map.
//! * [`match_body_reference`] — the naive generate-and-test matcher the paper
//!   contrasts Morphase with: it scans full extents and clones the binding
//!   set at every atom extension. It is kept as the reference semantics the
//!   indexed matcher is property-tested against, and as the "pre-index"
//!   baseline the benchmarks measure speed-ups over.
//!
//! Both report [`MatchStats`] so callers (the naive evaluator, the Morphase
//! pipeline, benches E2/E4/E6) can quantify the work done.

use std::collections::{BTreeMap, BTreeSet};

use wol_lang::ast::{Atom, SkolemArgs, Term, Var};
use wol_model::{
    chunk_ranges, ClassName, Instance, Job, Label, Oid, Parallelism, SharedValue, SkolemFactory,
    Value, WorkerPool,
};

use crate::error::EngineError;
use crate::Result;

/// A set of database instances visible to clause evaluation, in order.
#[derive(Clone)]
pub struct Databases<'a> {
    instances: Vec<&'a Instance>,
}

impl<'a> Databases<'a> {
    /// View over the given instances (sources first, target last by
    /// convention).
    pub fn new(instances: &[&'a Instance]) -> Self {
        Databases {
            instances: instances.to_vec(),
        }
    }

    /// Look up the value of an object identity in whichever instance holds it.
    pub fn value_of(&self, oid: &Oid) -> Option<&'a Value> {
        self.instances.iter().find_map(|i| i.value(oid))
    }

    /// Iterate over the extent of `class` across all instances.
    pub fn extent(&self, class: &ClassName) -> Vec<&'a Oid> {
        self.instances
            .iter()
            .flat_map(|i| i.extent(class))
            .collect()
    }

    /// Total number of objects of `class` across all instances.
    pub fn extent_size(&self, class: &ClassName) -> usize {
        self.instances.iter().map(|i| i.extent_size(class)).sum()
    }

    /// All identities of `class` whose attribute `attr` equals `value`,
    /// answered through each instance's lazily built attribute index.
    pub fn lookup_by_attr(&self, class: &ClassName, attr: &str, value: &Value) -> Vec<Oid> {
        let mut out = Vec::new();
        for instance in &self.instances {
            out.extend(instance.lookup_by_attr(class, attr, value));
        }
        out
    }

    /// Whether `oid` is present in the extent of its class in any instance.
    pub fn contains(&self, oid: &Oid) -> bool {
        self.instances.iter().any(|i| i.contains(oid))
    }

    /// The instances visible to this view.
    pub fn instances(&self) -> &[&'a Instance] {
        &self.instances
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True if there are no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

/// A binding of clause variables to values.
///
/// Values are held behind [`SharedValue`] (`Arc`) handles, so cloning a
/// binding — which the matcher does once per *emitted result*, and the
/// reference matcher once per *extension* — bumps reference counts instead of
/// deep-cloning value trees. The map API mirrors the `BTreeMap<Var, Value>`
/// this type used to be, so callers are unaffected.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Bindings {
    map: BTreeMap<Var, SharedValue>,
}

impl Bindings {
    /// An empty binding.
    pub fn new() -> Self {
        Self::default()
    }

    /// The value bound to `var`, if any.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.map.get(var).map(|v| v.as_ref())
    }

    /// The shared handle bound to `var`, if any.
    pub fn get_shared(&self, var: &str) -> Option<&SharedValue> {
        self.map.get(var)
    }

    /// Whether `var` is bound.
    pub fn contains_key(&self, var: &str) -> bool {
        self.map.contains_key(var)
    }

    /// Bind `var` to `value`, returning the previous handle if it was bound.
    pub fn insert(&mut self, var: impl Into<Var>, value: Value) -> Option<SharedValue> {
        self.map.insert(var.into(), value.shared())
    }

    /// Bind `var` to an already-shared value without re-wrapping it.
    pub fn insert_shared(
        &mut self,
        var: impl Into<Var>,
        value: SharedValue,
    ) -> Option<SharedValue> {
        self.map.insert(var.into(), value)
    }

    /// Remove the binding of `var`.
    pub fn remove(&mut self, var: &str) -> Option<SharedValue> {
        self.map.remove(var)
    }

    /// Iterate over `(variable, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Value)> {
        self.map.iter().map(|(k, v)| (k, v.as_ref()))
    }

    /// The bound variables.
    pub fn keys(&self) -> impl Iterator<Item = &Var> {
        self.map.keys()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl<const N: usize> From<[(Var, Value); N]> for Bindings {
    fn from(entries: [(Var, Value); N]) -> Self {
        entries.into_iter().collect()
    }
}

impl FromIterator<(Var, Value)> for Bindings {
    fn from_iter<I: IntoIterator<Item = (Var, Value)>>(iter: I) -> Self {
        Bindings {
            map: iter
                .into_iter()
                .map(|(var, value)| (var, value.shared()))
                .collect(),
        }
    }
}

impl std::ops::Index<&str> for Bindings {
    type Output = Value;

    fn index(&self, var: &str) -> &Value {
        self.get(var)
            .unwrap_or_else(|| panic!("no binding for variable `{var}`"))
    }
}

/// Statistics of a body-matching run, for benchmarks and regression tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Full extent enumerations performed.
    pub extents_scanned: usize,
    /// Attribute-index probes performed (indexed matcher only).
    pub index_probes: usize,
    /// Candidate bindings enumerated across all atom-processing steps.
    pub bindings_considered: usize,
}

impl MatchStats {
    /// Accumulate another stats value into this one.
    pub fn absorb(&mut self, other: MatchStats) {
        self.extents_scanned += other.extents_scanned;
        self.index_probes += other.index_probes;
        self.bindings_considered += other.bindings_considered;
    }
}

/// Evaluate a term under `bindings`. Skolem terms are resolved through
/// `skolem`, creating object identities on demand; projections dereference
/// object identities through `dbs`.
pub fn eval_term(
    term: &Term,
    bindings: &Bindings,
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
) -> Result<Value> {
    match term {
        Term::Var(v) => bindings
            .get(v)
            .cloned()
            .ok_or_else(|| EngineError::Eval(format!("unbound variable {v}"))),
        Term::Const(value) => Ok(value.clone()),
        Term::Proj(base, label) => {
            let base_value = eval_term(base, bindings, dbs, skolem)?;
            let record = match &base_value {
                Value::Oid(oid) => dbs
                    .value_of(oid)
                    .ok_or_else(|| EngineError::Eval(format!("dangling object identity {oid}")))?,
                other => other,
            };
            record.project(label).cloned().ok_or_else(|| {
                EngineError::Eval(format!(
                    "value of kind `{}` has no attribute `{label}`",
                    record.kind()
                ))
            })
        }
        Term::Record(fields) => {
            let mut out = BTreeMap::new();
            for (label, sub) in fields {
                out.insert(label.clone(), eval_term(sub, bindings, dbs, skolem)?);
            }
            Ok(Value::Record(out))
        }
        Term::Variant(label, payload) => Ok(Value::Variant(
            label.clone(),
            Box::new(eval_term(payload, bindings, dbs, skolem)?),
        )),
        Term::Skolem(class, args) => {
            let key = eval_skolem_key(args, bindings, dbs, skolem)?;
            Ok(Value::Oid(skolem.mk(class, &key)))
        }
    }
}

/// Evaluate the key value of a Skolem term's arguments: a single positional
/// argument is the key itself, multiple positional arguments form a list, and
/// named arguments form a record.
pub fn eval_skolem_key(
    args: &SkolemArgs,
    bindings: &Bindings,
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
) -> Result<Value> {
    match args {
        SkolemArgs::Positional(ts) => {
            let mut values = Vec::new();
            for t in ts {
                values.push(eval_term(t, bindings, dbs, skolem)?);
            }
            Ok(match values.len() {
                1 => values.into_iter().next().expect("length checked"),
                _ => Value::List(values),
            })
        }
        SkolemArgs::Named(fields) => {
            let mut out = BTreeMap::new();
            for (label, t) in fields {
                out.insert(label.clone(), eval_term(t, bindings, dbs, skolem)?);
            }
            Ok(Value::Record(out))
        }
    }
}

/// Evaluate a term if all of its variables are bound; `None` otherwise.
pub fn try_eval_term(
    term: &Term,
    bindings: &Bindings,
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
) -> Option<Value> {
    if term.var_set().iter().all(|v| bindings.contains_key(v)) {
        eval_term(term, bindings, dbs, skolem).ok()
    } else {
        None
    }
}

/// Match a term used as a *pattern* against a value, extending `bindings`.
///
/// Patterns are variables (bind or check), constants (check), record terms
/// (destructure fields) and variant terms (check the label, destructure the
/// payload). Projections and Skolem terms are not patterns; if they are fully
/// evaluable they are checked for equality, otherwise the match fails.
pub fn match_pattern(
    pattern: &Term,
    value: &Value,
    bindings: &Bindings,
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
) -> Option<Bindings> {
    let mut extended = bindings.clone();
    let mut trail = Vec::new();
    if match_pattern_in_place(pattern, value, &mut extended, &mut trail, dbs, skolem) {
        Some(extended)
    } else {
        None
    }
}

/// In-place pattern matching over a mutable frame: newly bound variables are
/// recorded on `trail` so the caller can undo the extension with
/// [`unwind_trail`]. On failure, partial bindings may remain on the trail;
/// the caller must unwind to its own mark.
fn match_pattern_in_place(
    pattern: &Term,
    value: &Value,
    bindings: &mut Bindings,
    trail: &mut Vec<Var>,
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
) -> bool {
    match pattern {
        Term::Var(v) => match bindings.get(v) {
            Some(existing) => existing == value,
            None => {
                bindings.insert(v.clone(), value.clone());
                trail.push(v.clone());
                true
            }
        },
        Term::Const(c) => c == value,
        Term::Record(fields) => {
            let Value::Record(actual) = value else {
                return false;
            };
            for (label, sub) in fields {
                let Some(sub_value) = actual.get(label) else {
                    return false;
                };
                if !match_pattern_in_place(sub, sub_value, bindings, trail, dbs, skolem) {
                    return false;
                }
            }
            true
        }
        Term::Variant(label, payload) => {
            let Value::Variant(actual_label, actual_payload) = value else {
                return false;
            };
            label == actual_label
                && match_pattern_in_place(payload, actual_payload, bindings, trail, dbs, skolem)
        }
        Term::Proj(_, _) | Term::Skolem(_, _) => {
            match try_eval_term(pattern, bindings, dbs, skolem) {
                Some(evaluated) => &evaluated == value,
                None => false,
            }
        }
    }
}

/// Undo frame extensions recorded on the trail past `mark`.
fn unwind_trail(bindings: &mut Bindings, trail: &mut Vec<Var>, mark: usize) {
    while trail.len() > mark {
        let var = trail.pop().expect("trail length checked");
        bindings.remove(&var);
    }
}

/// Whether the term (or any sub-term) applies a Skolem function. Skolem
/// application mutates the clause-wide [`SkolemFactory`], whose identity
/// numbering depends on first-call order, so the partitioned matcher refuses
/// to run Skolem-bearing bodies off the main thread.
fn term_contains_skolem(term: &Term) -> bool {
    match term {
        Term::Skolem(_, _) => true,
        Term::Var(_) | Term::Const(_) => false,
        Term::Proj(base, _) => term_contains_skolem(base),
        Term::Record(fields) => fields.iter().any(|(_, t)| term_contains_skolem(t)),
        Term::Variant(_, payload) => term_contains_skolem(payload),
    }
}

/// Whether any term of the atom applies a Skolem function (see
/// [`term_contains_skolem`]).
pub(crate) fn atom_contains_skolem(atom: &Atom) -> bool {
    match atom {
        Atom::Member(term, _) => term_contains_skolem(term),
        Atom::Eq(s, t) | Atom::Neq(s, t) | Atom::Lt(s, t) | Atom::Leq(s, t) => {
            term_contains_skolem(s) || term_contains_skolem(t)
        }
        Atom::InSet(elem, set) => term_contains_skolem(elem) || term_contains_skolem(set),
    }
}

/// Is the term usable as a *pattern* for destructuring (see
/// [`match_pattern`]): variables, constants, and record/variant shapes over
/// patterns? Projections and Skolem terms are not patterns.
fn is_pattern(term: &Term) -> bool {
    match term {
        Term::Var(_) | Term::Const(_) => true,
        Term::Record(fields) => fields.iter().all(|(_, t)| is_pattern(t)),
        Term::Variant(_, payload) => is_pattern(payload),
        Term::Proj(_, _) | Term::Skolem(_, _) => false,
    }
}

fn compare_numeric(a: &Value, b: &Value) -> Result<std::cmp::Ordering> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(x.cmp(y)),
        (Value::Real(x), Value::Real(y)) => Ok(x.cmp(y)),
        (Value::Int(x), Value::Real(y)) => Ok(wol_model::RealVal(*x as f64).cmp(y)),
        (Value::Real(x), Value::Int(y)) => Ok(x.cmp(&wol_model::RealVal(*y as f64))),
        (Value::Str(x), Value::Str(y)) => Ok(x.cmp(y)),
        _ => Err(EngineError::Eval(format!(
            "cannot compare values of kinds `{}` and `{}`",
            a.kind(),
            b.kind()
        ))),
    }
}

// ---------------------------------------------------------------------------
// The indexed matcher: greedy join plans over an undo-trail frame.
// ---------------------------------------------------------------------------

/// How one body atom is processed by a join plan.
#[derive(Clone, Debug)]
enum StepKind {
    /// All variables bound: check the atom and keep or drop the binding.
    Filter,
    /// Equality with one side evaluable and the other a pattern: evaluate,
    /// destructure, bind.
    BindEq {
        /// Whether the evaluable side is the left one.
        bound_is_left: bool,
    },
    /// Membership of a fully-determined object: an O(1) presence check.
    MemberCheck,
    /// Membership enumerated from the class extent, matching the term as a
    /// pattern.
    MemberScan,
    /// Membership answered by probing the attribute index: the member
    /// variable is equated to a bound value through `attr` by the consumed
    /// equality atom.
    MemberProbe {
        /// The attribute the equality constrains.
        attr: Label,
        /// Index of the consumed equality atom in the body.
        eq_atom: usize,
        /// Whether the *key* (evaluable) side of that equality is its left
        /// term.
        key_is_left: bool,
    },
    /// Set membership with a bound set: enumerate elements, bind the element
    /// pattern.
    InSetBind,
    /// No remaining atom can ever be processed: the body is not
    /// range-restricted. Raised only if a binding actually reaches this step.
    Stuck,
}

/// One step of a join plan: which atom, processed how.
#[derive(Clone, Debug)]
struct Step {
    atom: usize,
    kind: StepKind,
}

/// Cost assigned to a dead scan (an enumeration that cannot bind anything);
/// chosen last so that genuinely productive atoms run first.
const DEAD_SCAN_COST: u64 = 1 << 40;

/// If `term` is a single projection `v.attr` off the given variable, return
/// the attribute.
fn single_proj_attr<'t>(term: &'t Term, var: &str) -> Option<&'t Label> {
    match term {
        Term::Proj(base, label) => match base.as_ref() {
            Term::Var(v) if v == var => Some(label),
            _ => None,
        },
        _ => None,
    }
}

/// Build a one-shot greedy join plan for `atoms`, given the initially bound
/// variables. At each step the cheapest processable atom is chosen:
///
/// * fully bound atoms are free filters (cost 0);
/// * oriented equalities bind pattern variables (cost 1);
/// * `Member` atoms whose variable is equated to a bound attribute value are
///   answered through the attribute index (cost scales with a fraction of the
///   extent, standing in for the expected bucket size);
/// * remaining `Member` atoms enumerate their extent (cost = extent size), so
///   the smallest extents are scanned first.
///
/// Variable boundness depends only on *which* atoms have been processed, not
/// on any particular binding, so the plan is valid for every branch of the
/// search.
fn build_plan(atoms: &[Atom], initially_bound: &BTreeSet<Var>, dbs: &Databases<'_>) -> Vec<Step> {
    let mut used = vec![false; atoms.len()];
    let mut bound = initially_bound.clone();
    let mut steps = Vec::new();

    fn remaining(used: &[bool]) -> impl Iterator<Item = usize> + '_ {
        used.iter()
            .enumerate()
            .filter(|(_, u)| !**u)
            .map(|(i, _)| i)
    }

    while remaining(&used).next().is_some() {
        let mut best: Option<(u64, Step, Vec<Var>, Option<usize>)> = None;
        for i in remaining(&used) {
            let Some(candidate) = classify_atom(i, &atoms[i], atoms, &used, &bound, dbs) else {
                continue;
            };
            if best.as_ref().is_none_or(|(cost, ..)| candidate.0 < *cost) {
                best = Some(candidate);
            }
        }
        match best {
            Some((_, step, binds, consumed)) => {
                used[step.atom] = true;
                if let Some(eq) = consumed {
                    used[eq] = true;
                }
                bound.extend(binds);
                steps.push(step);
            }
            None => {
                // Whatever is left can never be processed; fail any binding
                // that reaches this point (zero bindings fail nothing, which
                // matches the dynamic matcher's behaviour).
                steps.push(Step {
                    atom: atoms.len(),
                    kind: StepKind::Stuck,
                });
                break;
            }
        }
    }
    steps
}

/// Classify one unused atom against the current bound-variable set: the cost
/// of processing it now, the step to run, the variables it binds, and an
/// equality atom it consumes (for index probes). `None` if it cannot be
/// processed yet.
fn classify_atom(
    index: usize,
    atom: &Atom,
    atoms: &[Atom],
    used: &[bool],
    bound: &BTreeSet<Var>,
    dbs: &Databases<'_>,
) -> Option<(u64, Step, Vec<Var>, Option<usize>)> {
    let term_bound = |t: &Term| t.var_set().iter().all(|v| bound.contains(v));
    let unbound_vars = |t: &Term| -> Vec<Var> {
        t.var_set()
            .into_iter()
            .filter(|v| !bound.contains(v))
            .collect()
    };
    let step = |kind: StepKind| Step { atom: index, kind };

    match atom {
        Atom::Member(term, class) => {
            if term_bound(term) {
                return Some((0, step(StepKind::MemberCheck), Vec::new(), None));
            }
            let extent = dbs.extent_size(class) as u64;
            if let Term::Var(v) = term {
                // Probe partner: an unused equality `v.attr = key` (either
                // orientation) whose key side is already evaluable.
                for (j, other) in atoms.iter().enumerate() {
                    if used[j] || j == index {
                        continue;
                    }
                    let Atom::Eq(left, right) = other else {
                        continue;
                    };
                    let probe = match (single_proj_attr(left, v), single_proj_attr(right, v)) {
                        (Some(attr), _) if term_bound(right) => Some((attr, false)),
                        (_, Some(attr)) if term_bound(left) => Some((attr, true)),
                        _ => None,
                    };
                    if let Some((attr, key_is_left)) = probe {
                        return Some((
                            1 + extent / 16,
                            step(StepKind::MemberProbe {
                                attr: attr.clone(),
                                eq_atom: j,
                                key_is_left,
                            }),
                            vec![v.clone()],
                            Some(j),
                        ));
                    }
                }
            }
            if is_pattern(term) {
                Some((
                    2 + extent,
                    step(StepKind::MemberScan),
                    unbound_vars(term),
                    None,
                ))
            } else {
                // Not a pattern and not evaluable: enumerating can only yield
                // the empty result, and binds nothing. Do it last.
                Some((
                    DEAD_SCAN_COST + extent,
                    step(StepKind::MemberScan),
                    Vec::new(),
                    None,
                ))
            }
        }
        Atom::Eq(s, t) => {
            let (s_bound, t_bound) = (term_bound(s), term_bound(t));
            if s_bound && t_bound {
                return Some((0, step(StepKind::Filter), Vec::new(), None));
            }
            if s_bound && is_pattern(t) {
                return Some((
                    1,
                    step(StepKind::BindEq {
                        bound_is_left: true,
                    }),
                    unbound_vars(t),
                    None,
                ));
            }
            if t_bound && is_pattern(s) {
                return Some((
                    1,
                    step(StepKind::BindEq {
                        bound_is_left: false,
                    }),
                    unbound_vars(s),
                    None,
                ));
            }
            None
        }
        Atom::Neq(s, t) | Atom::Lt(s, t) | Atom::Leq(s, t) => {
            if term_bound(s) && term_bound(t) {
                Some((0, step(StepKind::Filter), Vec::new(), None))
            } else {
                None
            }
        }
        Atom::InSet(elem, set) => {
            if !term_bound(set) {
                return None;
            }
            if term_bound(elem) {
                Some((0, step(StepKind::Filter), Vec::new(), None))
            } else if is_pattern(elem) {
                Some((4, step(StepKind::InSetBind), unbound_vars(elem), None))
            } else {
                Some((DEAD_SCAN_COST, step(StepKind::InSetBind), Vec::new(), None))
            }
        }
    }
}

/// Check a fully-bound atom against the current frame. Missing optional
/// attributes make equalities and memberships fail quietly; comparison atoms
/// keep their hard-error semantics.
fn check_bound_atom(
    atom: &Atom,
    bindings: &Bindings,
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
) -> Result<bool> {
    match atom {
        Atom::Member(term, class) => Ok(match try_eval_term(term, bindings, dbs, skolem) {
            Some(Value::Oid(oid)) => oid.class() == class && dbs.contains(&oid),
            _ => false,
        }),
        Atom::Eq(s, t) => {
            let sv = try_eval_term(s, bindings, dbs, skolem);
            let tv = try_eval_term(t, bindings, dbs, skolem);
            Ok(matches!((sv, tv), (Some(a), Some(b)) if a == b))
        }
        Atom::Neq(s, t) => {
            let a = eval_term(s, bindings, dbs, skolem)?;
            let b = eval_term(t, bindings, dbs, skolem)?;
            Ok(a != b)
        }
        Atom::Lt(s, t) | Atom::Leq(s, t) => {
            let a = eval_term(s, bindings, dbs, skolem)?;
            let b = eval_term(t, bindings, dbs, skolem)?;
            let ordering = compare_numeric(&a, &b)?;
            Ok(match atom {
                Atom::Lt(_, _) => ordering == std::cmp::Ordering::Less,
                _ => ordering != std::cmp::Ordering::Greater,
            })
        }
        Atom::InSet(elem, set) => {
            let set_value = eval_term(set, bindings, dbs, skolem)?;
            let Some(elem_value) = try_eval_term(elem, bindings, dbs, skolem) else {
                return Ok(false);
            };
            match set_value {
                Value::Set(items) => Ok(items.contains(&elem_value)),
                Value::List(items) => Ok(items.contains(&elem_value)),
                other => Err(EngineError::Eval(format!(
                    "`member` applied to a non-set value of kind `{}`",
                    other.kind()
                ))),
            }
        }
    }
}

/// Execute the plan from `step_index` onwards, emitting complete bindings
/// into `out`. The frame is mutated in place; every extension is recorded on
/// `trail` and undone before returning, so the caller's frame is unchanged.
#[allow(clippy::too_many_arguments)]
fn run_plan(
    step_index: usize,
    steps: &[Step],
    atoms: &[Atom],
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
    bindings: &mut Bindings,
    trail: &mut Vec<Var>,
    out: &mut Vec<Bindings>,
    stats: &mut MatchStats,
) -> Result<()> {
    let Some(step) = steps.get(step_index) else {
        out.push(bindings.clone());
        return Ok(());
    };
    match &step.kind {
        StepKind::Stuck => Err(EngineError::Eval(
            "no atom can be processed: the clause body is not range-restricted".to_string(),
        )),
        StepKind::Filter | StepKind::MemberCheck => {
            if check_bound_atom(&atoms[step.atom], bindings, dbs, skolem)? {
                stats.bindings_considered += 1;
                run_plan(
                    step_index + 1,
                    steps,
                    atoms,
                    dbs,
                    skolem,
                    bindings,
                    trail,
                    out,
                    stats,
                )?;
            }
            Ok(())
        }
        StepKind::BindEq { bound_is_left } => {
            let Atom::Eq(left, right) = &atoms[step.atom] else {
                unreachable!("BindEq steps are built from Eq atoms");
            };
            let (evaluable, pattern) = if *bound_is_left {
                (left, right)
            } else {
                (right, left)
            };
            // The evaluable side's variables are bound by construction; a
            // `None` here means a missing optional attribute, which simply
            // has no witness.
            let Some(value) = try_eval_term(evaluable, bindings, dbs, skolem) else {
                return Ok(());
            };
            let mark = trail.len();
            if match_pattern_in_place(pattern, &value, bindings, trail, dbs, skolem) {
                stats.bindings_considered += 1;
                run_plan(
                    step_index + 1,
                    steps,
                    atoms,
                    dbs,
                    skolem,
                    bindings,
                    trail,
                    out,
                    stats,
                )?;
            }
            unwind_trail(bindings, trail, mark);
            Ok(())
        }
        StepKind::MemberProbe {
            attr,
            eq_atom,
            key_is_left,
        } => {
            let Atom::Member(Term::Var(var), class) = &atoms[step.atom] else {
                unreachable!("MemberProbe steps are built from variable Member atoms");
            };
            let Atom::Eq(left, right) = &atoms[*eq_atom] else {
                unreachable!("MemberProbe consumes an Eq atom");
            };
            let key_term = if *key_is_left { left } else { right };
            let Some(key) = try_eval_term(key_term, bindings, dbs, skolem) else {
                return Ok(());
            };
            stats.index_probes += 1;
            for oid in dbs.lookup_by_attr(class, attr, &key) {
                stats.bindings_considered += 1;
                let mark = trail.len();
                bindings.insert(var.clone(), Value::Oid(oid));
                trail.push(var.clone());
                run_plan(
                    step_index + 1,
                    steps,
                    atoms,
                    dbs,
                    skolem,
                    bindings,
                    trail,
                    out,
                    stats,
                )?;
                unwind_trail(bindings, trail, mark);
            }
            Ok(())
        }
        StepKind::MemberScan => {
            let Atom::Member(term, class) = &atoms[step.atom] else {
                unreachable!("MemberScan steps are built from Member atoms");
            };
            stats.extents_scanned += 1;
            for oid in dbs.extent(class) {
                let value = Value::Oid(oid.clone());
                let mark = trail.len();
                if match_pattern_in_place(term, &value, bindings, trail, dbs, skolem) {
                    stats.bindings_considered += 1;
                    run_plan(
                        step_index + 1,
                        steps,
                        atoms,
                        dbs,
                        skolem,
                        bindings,
                        trail,
                        out,
                        stats,
                    )?;
                }
                unwind_trail(bindings, trail, mark);
            }
            Ok(())
        }
        StepKind::InSetBind => {
            let Atom::InSet(elem, set) = &atoms[step.atom] else {
                unreachable!("InSetBind steps are built from InSet atoms");
            };
            let set_value = eval_term(set, bindings, dbs, skolem)?;
            let elements: Vec<Value> = match set_value {
                Value::Set(items) => items.into_iter().collect(),
                Value::List(items) => items,
                other => {
                    return Err(EngineError::Eval(format!(
                        "`member` applied to a non-set value of kind `{}`",
                        other.kind()
                    )))
                }
            };
            for item in elements {
                let mark = trail.len();
                if match_pattern_in_place(elem, &item, bindings, trail, dbs, skolem) {
                    stats.bindings_considered += 1;
                    run_plan(
                        step_index + 1,
                        steps,
                        atoms,
                        dbs,
                        skolem,
                        bindings,
                        trail,
                        out,
                        stats,
                    )?;
                }
                unwind_trail(bindings, trail, mark);
            }
            Ok(())
        }
    }
}

/// Minimum extent size before the partitioned matcher spawns workers; below
/// it the per-body thread spawn costs more than the matching it divides.
const PAR_MIN_EXTENT: usize = 64;

/// Enumerate every binding of the body's variables (extending `initial`) that
/// makes all `atoms` true against `dbs`, using the indexed plan-based matcher
/// at the environment's default parallelism ([`Parallelism::from_env`]).
pub fn match_body(
    atoms: &[Atom],
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
    initial: Bindings,
) -> Result<Vec<Bindings>> {
    let mut stats = MatchStats::default();
    match_body_partitioned(
        atoms,
        dbs,
        skolem,
        initial,
        &mut stats,
        Parallelism::from_env(),
    )
}

/// [`match_body`], additionally accumulating [`MatchStats`].
pub fn match_body_with_stats(
    atoms: &[Atom],
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
    initial: Bindings,
    stats: &mut MatchStats,
) -> Result<Vec<Bindings>> {
    match_body_partitioned(atoms, dbs, skolem, initial, stats, Parallelism::from_env())
}

/// [`match_body_with_stats`] with an explicit worker budget.
///
/// When the compiled join plan opens with an extent enumeration
/// (`MemberScan`), the extent is split into contiguous chunks and each chunk
/// is matched on the persistent [`WorkerPool`] by running the *rest of the
/// same plan* over its own undo-trail [`Bindings`] frame. Results
/// concatenate in chunk order, which is the extent order the sequential
/// matcher enumerates in, so the binding list — and the accumulated
/// [`MatchStats`] totals — are identical at every thread count. Bodies that
/// apply Skolem functions (which mutate the shared factory in first-call
/// order) and plans that do not open with a scan stay on the sequential
/// path.
pub fn match_body_partitioned(
    atoms: &[Atom],
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
    initial: Bindings,
    stats: &mut MatchStats,
    parallelism: Parallelism,
) -> Result<Vec<Bindings>> {
    let initially_bound: BTreeSet<Var> = initial.keys().cloned().collect();
    let steps = build_plan(atoms, &initially_bound, dbs);
    let threads = parallelism.threads();
    if threads > 1 && !atoms.iter().any(atom_contains_skolem) {
        if let Some(Step {
            atom,
            kind: StepKind::MemberScan,
        }) = steps.first()
        {
            let Atom::Member(term, class) = &atoms[*atom] else {
                unreachable!("MemberScan steps are built from Member atoms");
            };
            let extent = dbs.extent(class);
            if extent.len() >= PAR_MIN_EXTENT {
                stats.extents_scanned += 1;
                let (extent, steps, initial) = (&extent, &steps, &initial);
                let pool = WorkerPool::shared(parallelism);
                let jobs: Vec<Job<'_, (MatchStats, Result<Vec<Bindings>>)>> =
                    chunk_ranges(extent.len(), threads)
                        .into_iter()
                        .map(|range| {
                            Box::new(move || {
                                // Fresh factory per worker: sound because
                                // Skolem-bearing bodies never get here.
                                let mut factory = SkolemFactory::new();
                                let mut worker_stats = MatchStats::default();
                                let mut frame = initial.clone();
                                let mut trail = Vec::new();
                                let mut out = Vec::new();
                                let result = (|| {
                                    for oid in &extent[range] {
                                        let value = Value::Oid((*oid).clone());
                                        let mark = trail.len();
                                        if match_pattern_in_place(
                                            term,
                                            &value,
                                            &mut frame,
                                            &mut trail,
                                            dbs,
                                            &mut factory,
                                        ) {
                                            worker_stats.bindings_considered += 1;
                                            run_plan(
                                                1,
                                                steps,
                                                atoms,
                                                dbs,
                                                &mut factory,
                                                &mut frame,
                                                &mut trail,
                                                &mut out,
                                                &mut worker_stats,
                                            )?;
                                        }
                                        unwind_trail(&mut frame, &mut trail, mark);
                                    }
                                    Ok(())
                                })();
                                (worker_stats, result.map(|()| out))
                            }) as Job<'_, _>
                        })
                        .collect();
                let outcomes = pool.scope(jobs);
                let mut all = Vec::new();
                let mut first_err = None;
                for (worker_stats, result) in outcomes {
                    stats.absorb(worker_stats);
                    match result {
                        Ok(bindings) => all.extend(bindings),
                        Err(err) => first_err = first_err.or(Some(err)),
                    }
                }
                return match first_err {
                    Some(err) => Err(err),
                    None => Ok(all),
                };
            }
        }
    }
    let mut bindings = initial;
    let mut trail = Vec::new();
    let mut out = Vec::new();
    run_plan(
        0,
        &steps,
        atoms,
        dbs,
        skolem,
        &mut bindings,
        &mut trail,
        &mut out,
        stats,
    )?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// The reference matcher: naive generate-and-test, one clone per extension.
// ---------------------------------------------------------------------------

/// Can this atom be processed under the current bindings?
fn atom_ready(atom: &Atom, bindings: &Bindings) -> bool {
    let bound = |t: &Term| t.var_set().iter().all(|v| bindings.contains_key(v));
    match atom {
        // Membership can always be processed: either check (bound) or
        // enumerate the extent (unbound variable / pattern).
        Atom::Member(_, _) => true,
        Atom::Eq(s, t) => {
            (bound(s) && bound(t)) || (bound(s) && is_pattern(t)) || (bound(t) && is_pattern(s))
        }
        Atom::Neq(s, t) | Atom::Lt(s, t) | Atom::Leq(s, t) => bound(s) && bound(t),
        Atom::InSet(_, set) => bound(set),
    }
}

/// Extend `bindings` in every way that makes `atom` true, cloning the binding
/// map once per extension (the naive strategy).
fn match_atom(
    atom: &Atom,
    bindings: &Bindings,
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
    stats: &mut MatchStats,
) -> Result<Vec<Bindings>> {
    match atom {
        Atom::Member(term, class) => {
            if let Some(value) = try_eval_term(term, bindings, dbs, skolem) {
                // Check membership of an already-determined object.
                match value {
                    Value::Oid(oid) => {
                        if oid.class() == class && dbs.contains(&oid) {
                            Ok(vec![bindings.clone()])
                        } else {
                            Ok(vec![])
                        }
                    }
                    _ => Ok(vec![]),
                }
            } else {
                // Enumerate the extent and match the term as a pattern.
                stats.extents_scanned += 1;
                let mut out = Vec::new();
                for oid in dbs.extent(class) {
                    let value = Value::Oid(oid.clone());
                    if let Some(extended) = match_pattern(term, &value, bindings, dbs, skolem) {
                        out.push(extended);
                    }
                }
                Ok(out)
            }
        }
        Atom::Eq(s, t) => {
            let sv = try_eval_term(s, bindings, dbs, skolem);
            let tv = try_eval_term(t, bindings, dbs, skolem);
            let bound = |term: &Term| term.var_set().iter().all(|v| bindings.contains_key(v));
            match (sv, tv) {
                (Some(a), Some(b)) => Ok(if a == b {
                    vec![bindings.clone()]
                } else {
                    vec![]
                }),
                (Some(a), None) => {
                    if bound(t) {
                        // Fully bound but not evaluable (e.g. a missing
                        // optional attribute): the equality simply fails.
                        Ok(vec![])
                    } else {
                        Ok(match_pattern(t, &a, bindings, dbs, skolem)
                            .into_iter()
                            .collect())
                    }
                }
                (None, Some(b)) => {
                    if bound(s) {
                        Ok(vec![])
                    } else {
                        Ok(match_pattern(s, &b, bindings, dbs, skolem)
                            .into_iter()
                            .collect())
                    }
                }
                (None, None) => {
                    if bound(s) || bound(t) {
                        // At least one side is fully bound but cannot be
                        // evaluated (e.g. a missing optional field): the
                        // equality has no witness.
                        Ok(vec![])
                    } else {
                        Err(EngineError::Eval(format!(
                            "cannot orient equality {} = {}: neither side is evaluable",
                            wol_lang::render_term(s),
                            wol_lang::render_term(t)
                        )))
                    }
                }
            }
        }
        Atom::Neq(s, t) => {
            let a = eval_term(s, bindings, dbs, skolem)?;
            let b = eval_term(t, bindings, dbs, skolem)?;
            Ok(if a != b {
                vec![bindings.clone()]
            } else {
                vec![]
            })
        }
        Atom::Lt(s, t) | Atom::Leq(s, t) => {
            let a = eval_term(s, bindings, dbs, skolem)?;
            let b = eval_term(t, bindings, dbs, skolem)?;
            let ordering = compare_numeric(&a, &b)?;
            let holds = match atom {
                Atom::Lt(_, _) => ordering == std::cmp::Ordering::Less,
                _ => ordering != std::cmp::Ordering::Greater,
            };
            Ok(if holds {
                vec![bindings.clone()]
            } else {
                vec![]
            })
        }
        Atom::InSet(elem, set) => {
            let set_value = eval_term(set, bindings, dbs, skolem)?;
            let elements: Vec<Value> = match set_value {
                Value::Set(items) => items.into_iter().collect(),
                Value::List(items) => items,
                other => {
                    return Err(EngineError::Eval(format!(
                        "`member` applied to a non-set value of kind `{}`",
                        other.kind()
                    )))
                }
            };
            let mut out = Vec::new();
            for item in elements {
                if let Some(extended) = match_pattern(elem, &item, bindings, dbs, skolem) {
                    out.push(extended);
                }
            }
            Ok(out)
        }
    }
}

/// The naive generate-and-test matcher: repeatedly picks a *ready* atom —
/// preferring cheap filters over extent enumerations — and extends the
/// binding set by cloning it at every extension. This is the "apply the
/// clauses directly" strategy the paper contrasts Morphase with; it is kept
/// as the reference semantics for the indexed [`match_body`] and as the
/// pre-index baseline measured by the benchmarks.
pub fn match_body_reference(
    atoms: &[Atom],
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
    initial: Bindings,
    stats: &mut MatchStats,
) -> Result<Vec<Bindings>> {
    fn go(
        remaining: &[Atom],
        dbs: &Databases<'_>,
        skolem: &mut SkolemFactory,
        bindings: Bindings,
        out: &mut Vec<Bindings>,
        stats: &mut MatchStats,
    ) -> Result<()> {
        if remaining.is_empty() {
            out.push(bindings);
            return Ok(());
        }
        // Pick the best ready atom: prefer fully-bound filters, then oriented
        // equalities, then memberships/enumerations.
        let fully_bound = |atom: &Atom| atom.var_set().iter().all(|v| bindings.contains_key(v));
        let position = remaining
            .iter()
            .position(fully_bound)
            .or_else(|| {
                remaining
                    .iter()
                    .position(|a| matches!(a, Atom::Eq(_, _)) && atom_ready(a, &bindings))
            })
            .or_else(|| remaining.iter().position(|a| atom_ready(a, &bindings)));
        let Some(position) = position else {
            return Err(EngineError::Eval(
                "no atom can be processed: the clause body is not range-restricted".to_string(),
            ));
        };
        let atom = &remaining[position];
        let rest: Vec<Atom> = remaining
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != position)
            .map(|(_, a)| a.clone())
            .collect();
        let extensions = match_atom(atom, &bindings, dbs, skolem, stats)?;
        stats.bindings_considered += extensions.len();
        for extended in extensions {
            go(&rest, dbs, skolem, extended, out, stats)?;
        }
        Ok(())
    }

    let mut out = Vec::new();
    go(atoms, dbs, skolem, initial, &mut out, stats)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_lang::parse_clause;

    fn euro_instance() -> (Instance, Oid, Oid) {
        let mut inst = Instance::new("euro");
        let uk = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("United Kingdom")),
                ("language", Value::str("English")),
                ("currency", Value::str("sterling")),
            ]),
        );
        let fr = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("France")),
                ("language", Value::str("French")),
                ("currency", Value::str("franc")),
            ]),
        );
        for (name, capital, country) in [
            ("London", true, &uk),
            ("Manchester", false, &uk),
            ("Paris", true, &fr),
        ] {
            inst.insert_fresh(
                &ClassName::new("CityE"),
                Value::record([
                    ("name", Value::str(name)),
                    ("is_capital", Value::bool(capital)),
                    ("country", Value::oid(country.clone())),
                ]),
            );
        }
        (inst, uk, fr)
    }

    #[test]
    fn eval_projection_through_oid() {
        let (inst, _, fr) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let bindings = Bindings::from([("X".to_string(), Value::oid(fr))]);
        let term = Term::var("X").path("name");
        assert_eq!(
            eval_term(&term, &bindings, &dbs, &mut sk).unwrap(),
            Value::str("France")
        );
    }

    #[test]
    fn eval_unbound_variable_fails() {
        let (inst, _, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        assert!(eval_term(&Term::var("X"), &Bindings::new(), &dbs, &mut sk).is_err());
        assert!(try_eval_term(&Term::var("X"), &Bindings::new(), &dbs, &mut sk).is_none());
    }

    #[test]
    fn eval_record_variant_and_skolem() {
        let (inst, _, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let bindings = Bindings::from([("N".to_string(), Value::str("France"))]);
        let term = Term::record([("name", Term::var("N")), ("kind", Term::tag("euro"))]);
        let value = eval_term(&term, &bindings, &dbs, &mut sk).unwrap();
        assert_eq!(
            value,
            Value::record([("name", Value::str("France")), ("kind", Value::tag("euro"))])
        );
        // Skolem terms create deterministic identities.
        let sk_term = Term::skolem("CountryT", [Term::var("N")]);
        let a = eval_term(&sk_term, &bindings, &dbs, &mut sk).unwrap();
        let b = eval_term(&sk_term, &bindings, &dbs, &mut sk).unwrap();
        assert_eq!(a, b);
        match a {
            Value::Oid(oid) => assert_eq!(oid.class(), &ClassName::new("CountryT")),
            other => panic!("expected an oid, got {other:?}"),
        }
    }

    #[test]
    fn skolem_key_styles() {
        let (inst, _, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let bindings = Bindings::from([
            ("N".to_string(), Value::str("Paris")),
            ("C".to_string(), Value::str("France")),
        ]);
        let positional = SkolemArgs::Positional(vec![Term::var("N"), Term::var("C")]);
        assert_eq!(
            eval_skolem_key(&positional, &bindings, &dbs, &mut sk).unwrap(),
            Value::list([Value::str("Paris"), Value::str("France")])
        );
        let named = SkolemArgs::Named(vec![
            ("name".to_string(), Term::var("N")),
            ("country_name".to_string(), Term::var("C")),
        ]);
        assert_eq!(
            eval_skolem_key(&named, &bindings, &dbs, &mut sk).unwrap(),
            Value::record([
                ("name", Value::str("Paris")),
                ("country_name", Value::str("France"))
            ])
        );
        let single = SkolemArgs::Positional(vec![Term::var("N")]);
        assert_eq!(
            eval_skolem_key(&single, &bindings, &dbs, &mut sk).unwrap(),
            Value::str("Paris")
        );
    }

    #[test]
    fn match_body_of_clause_c4_style() {
        // Find all (X country, Y capital city) pairs.
        let (inst, uk, fr) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let clause = parse_clause(
            "Z = Y.name <= X in CountryE, Y in CityE, Y.country = X, Y.is_capital = true",
        )
        .unwrap();
        let results = match_body(&clause.body, &dbs, &mut sk, Bindings::new()).unwrap();
        assert_eq!(results.len(), 2);
        let mut countries: Vec<&Value> = results.iter().map(|b| &b["X"]).collect();
        countries.sort();
        countries.dedup();
        assert_eq!(countries.len(), 2);
        assert!(results.iter().any(|b| b["X"] == Value::oid(uk.clone())));
        assert!(results.iter().any(|b| b["X"] == Value::oid(fr.clone())));
    }

    #[test]
    fn match_body_joins_on_attribute() {
        // Cities paired with the country record they reference by name.
        let (inst, _, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let clause =
            parse_clause("Z = E.name <= E in CityE, X in CountryE, X.name = E.country.name")
                .unwrap();
        let results = match_body(&clause.body, &dbs, &mut sk, Bindings::new()).unwrap();
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn match_body_with_initial_bindings() {
        let (inst, uk, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let clause = parse_clause("Z = Y.name <= Y in CityE, Y.country = X").unwrap();
        let initial = Bindings::from([("X".to_string(), Value::oid(uk))]);
        let results = match_body(&clause.body, &dbs, &mut sk, initial).unwrap();
        assert_eq!(results.len(), 2); // London and Manchester
    }

    #[test]
    fn comparisons_filter() {
        let mut inst = Instance::new("nums");
        for (name, pop) in [("a", 10i64), ("b", 20), ("c", 30)] {
            inst.insert_fresh(
                &ClassName::new("CityA"),
                Value::record([("name", Value::str(name)), ("population", Value::int(pop))]),
            );
        }
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let clause =
            parse_clause("Z = X.name <= X in CityA, Y in CityA, X.population < Y.population")
                .unwrap();
        let results = match_body(&clause.body, &dbs, &mut sk, Bindings::new()).unwrap();
        assert_eq!(results.len(), 3); // (a,b), (a,c), (b,c)
        let leq =
            parse_clause("Z = X.name <= X in CityA, Y in CityA, X.population =< Y.population")
                .unwrap();
        let results = match_body(&leq.body, &dbs, &mut sk, Bindings::new()).unwrap();
        assert_eq!(results.len(), 6);
        let neq = parse_clause("Z = X.name <= X in CityA, Y in CityA, X != Y").unwrap();
        let results = match_body(&neq.body, &dbs, &mut sk, Bindings::new()).unwrap();
        assert_eq!(results.len(), 6);
    }

    #[test]
    fn set_membership_enumerates() {
        let mut inst = Instance::new("clusters");
        inst.insert_fresh(
            &ClassName::new("Cluster"),
            Value::record([
                ("name", Value::str("c22")),
                (
                    "markers",
                    Value::set([
                        Value::str("D22S1"),
                        Value::str("D22S2"),
                        Value::str("D22S3"),
                    ]),
                ),
            ]),
        );
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let clause = parse_clause("Z = M <= X in Cluster, M member X.markers").unwrap();
        let results = match_body(&clause.body, &dbs, &mut sk, Bindings::new()).unwrap();
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn variant_pattern_matching() {
        let mut inst = Instance::new("people");
        inst.insert_fresh(
            &ClassName::new("Person"),
            Value::record([("name", Value::str("Ada")), ("sex", Value::tag("female"))]),
        );
        inst.insert_fresh(
            &ClassName::new("Person"),
            Value::record([("name", Value::str("Alan")), ("sex", Value::tag("male"))]),
        );
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let clause = parse_clause("Z = Y.name <= Y in Person, Y.sex = ins_male()").unwrap();
        let results = match_body(&clause.body, &dbs, &mut sk, Bindings::new()).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].get("Y").and_then(|v| v.as_oid()).map(|o| o.id()),
            Some(1)
        );
    }

    #[test]
    fn unorientable_equality_reported() {
        let (inst, _, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        // Neither side of `A = B` can ever be evaluated.
        let clause = parse_clause("Z = 1 <= A = B").unwrap();
        assert!(match_body(&clause.body, &dbs, &mut sk, Bindings::new()).is_err());
        let mut stats = MatchStats::default();
        assert!(
            match_body_reference(&clause.body, &dbs, &mut sk, Bindings::new(), &mut stats).is_err()
        );
    }

    #[test]
    fn databases_lookup_across_instances() {
        let (inst, uk, _) = euro_instance();
        let mut other = Instance::new("target");
        let t = other.insert_fresh(
            &ClassName::new("CountryT"),
            Value::record([("name", Value::str("UK"))]),
        );
        let all = [&inst, &other];
        let dbs = Databases::new(&all[..]);
        assert!(dbs.value_of(&uk).is_some());
        assert!(dbs.value_of(&t).is_some());
        assert!(dbs.contains(&t));
        assert_eq!(dbs.len(), 2);
        assert!(!dbs.is_empty());
        assert_eq!(dbs.extent(&ClassName::new("CountryT")).len(), 1);
        assert_eq!(dbs.extent_size(&ClassName::new("CountryT")), 1);
        assert_eq!(
            dbs.lookup_by_attr(&ClassName::new("CountryT"), "name", &Value::str("UK")),
            vec![t]
        );
    }

    #[test]
    fn pattern_matching_records_and_conflicts() {
        let (inst, _, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let value = Value::record([
            ("name", Value::str("Paris")),
            ("country_name", Value::str("France")),
        ]);
        let pattern = Term::record([("name", Term::var("N")), ("country_name", Term::var("C"))]);
        let bound = match_pattern(&pattern, &value, &Bindings::new(), &dbs, &mut sk).unwrap();
        assert_eq!(bound["N"], Value::str("Paris"));
        assert_eq!(bound["C"], Value::str("France"));
        // A conflicting existing binding rejects the match.
        let existing = Bindings::from([("N".to_string(), Value::str("Lyon"))]);
        assert!(match_pattern(&pattern, &value, &existing, &dbs, &mut sk).is_none());
        // Matching a non-record fails.
        assert!(match_pattern(&pattern, &Value::int(1), &Bindings::new(), &dbs, &mut sk).is_none());
    }

    /// The indexed matcher and the reference matcher agree on every body the
    /// unit suite exercises, and the indexed one probes instead of scanning.
    #[test]
    fn indexed_and_reference_matchers_agree() {
        let (inst, _, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        for body in [
            "Z = 1 <= X in CountryE, Y in CityE, Y.country = X, Y.is_capital = true",
            "Z = 1 <= E in CityE, X in CountryE, X.name = E.country.name",
            "Z = 1 <= X in CountryE",
            "Z = 1 <= X in CountryE, X.language = \"French\"",
            "Z = 1 <= X in CountryE, Y in CountryE, X != Y",
        ] {
            let clause = parse_clause(body).unwrap();
            let mut sk = SkolemFactory::new();
            let mut indexed_stats = MatchStats::default();
            let mut indexed = match_body_with_stats(
                &clause.body,
                &dbs,
                &mut sk,
                Bindings::new(),
                &mut indexed_stats,
            )
            .unwrap();
            let mut sk = SkolemFactory::new();
            let mut reference_stats = MatchStats::default();
            let mut reference = match_body_reference(
                &clause.body,
                &dbs,
                &mut sk,
                Bindings::new(),
                &mut reference_stats,
            )
            .unwrap();
            indexed.sort();
            reference.sort();
            assert_eq!(indexed, reference, "matchers disagree on `{body}`");
            assert!(
                indexed_stats.bindings_considered <= reference_stats.bindings_considered,
                "indexed matcher considered more bindings on `{body}`"
            );
        }
    }

    #[test]
    fn indexed_matcher_probes_instead_of_scanning() {
        let (inst, _, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let clause =
            parse_clause("Z = 1 <= X in CountryE, Y in CityE, Y.country = X, Y.is_capital = true")
                .unwrap();
        let mut stats = MatchStats::default();
        let results =
            match_body_with_stats(&clause.body, &dbs, &mut sk, Bindings::new(), &mut stats)
                .unwrap();
        assert_eq!(results.len(), 2);
        // The plan probes CityE on the constant `is_capital = true`, binds the
        // country through `Y.country = X`, and checks membership — no extent
        // is ever enumerated.
        assert_eq!(stats.extents_scanned, 0);
        assert_eq!(stats.index_probes, 1);
        assert!(stats.bindings_considered > 0);
    }

    /// The partitioned matcher enumerates a large extent over worker chunks
    /// (each with its own undo-trail frame) and reproduces the sequential
    /// matcher's binding *list* — same bindings, same order — with equal
    /// stats, at every thread count.
    #[test]
    fn partitioned_matcher_equals_sequential_on_large_extents() {
        let mut inst = Instance::new("euro");
        let mut countries = Vec::new();
        for c in 0..10 {
            countries.push(inst.insert_fresh(
                &ClassName::new("CountryE"),
                Value::record([("name", Value::str(format!("country{c}")))]),
            ));
        }
        for i in 0..200 {
            inst.insert_fresh(
                &ClassName::new("CityE"),
                Value::record([
                    ("name", Value::str(format!("city{i}"))),
                    ("is_capital", Value::bool(i % 10 == 0)),
                    ("country", Value::oid(countries[i % 10].clone())),
                ]),
            );
        }
        let dbs = Databases::new(&[&inst][..]);
        for body in [
            "Z = 1 <= E in CityE, E.is_capital = true",
            "Z = 1 <= E in CityE, X in CountryE, X = E.country",
            "Z = 1 <= E in CityE, F in CityE, E.country = F.country, F.is_capital = true",
        ] {
            let clause = parse_clause(body).unwrap();
            let mut sk = SkolemFactory::new();
            let mut seq_stats = MatchStats::default();
            let sequential = match_body_partitioned(
                &clause.body,
                &dbs,
                &mut sk,
                Bindings::new(),
                &mut seq_stats,
                Parallelism::sequential(),
            )
            .unwrap();
            assert!(!sequential.is_empty());
            for threads in [2, 4, 8] {
                let mut sk = SkolemFactory::new();
                let mut par_stats = MatchStats::default();
                let parallel = match_body_partitioned(
                    &clause.body,
                    &dbs,
                    &mut sk,
                    Bindings::new(),
                    &mut par_stats,
                    Parallelism::new(threads),
                )
                .unwrap();
                assert_eq!(parallel, sequential, "bindings diverged on `{body}`");
                assert_eq!(par_stats, seq_stats, "stats diverged on `{body}`");
            }
        }
    }

    /// Skolem-bearing bodies stay on the sequential path (the factory is
    /// shared, ordered state), and still match correctly at any requested
    /// parallelism.
    #[test]
    fn partitioned_matcher_gates_skolem_bodies_to_sequential() {
        let mut inst = Instance::new("euro");
        for i in 0..100 {
            inst.insert_fresh(
                &ClassName::new("CountryE"),
                Value::record([("name", Value::str(format!("c{i}")))]),
            );
        }
        let dbs = Databases::new(&[&inst][..]);
        let clause = parse_clause("Z = 1 <= X in CountryE, Y = Mk_CountryT(X.name)").unwrap();
        let mut sk = SkolemFactory::new();
        let mut stats = MatchStats::default();
        let results = match_body_partitioned(
            &clause.body,
            &dbs,
            &mut sk,
            Bindings::new(),
            &mut stats,
            Parallelism::new(8),
        )
        .unwrap();
        assert_eq!(results.len(), 100);
        // The shared factory minted the identities in extent order.
        assert_eq!(sk.count(&ClassName::new("CountryT")), 100);
    }

    #[test]
    fn bindings_frame_is_shared_not_deep_cloned() {
        let big = Value::set((0..100).map(Value::int));
        let mut bindings = Bindings::new();
        bindings.insert("S", big);
        let shared = bindings.get_shared("S").unwrap().clone();
        let copy = bindings.clone();
        // Three handles, one value.
        assert_eq!(std::sync::Arc::strong_count(&shared), 3);
        assert_eq!(copy.get("S"), bindings.get("S"));
        drop(copy);
        assert_eq!(std::sync::Arc::strong_count(&shared), 2);
    }

    #[test]
    fn bindings_map_api_round_trips() {
        let mut bindings = Bindings::new();
        assert!(bindings.is_empty());
        assert!(bindings.insert("X", Value::int(1)).is_none());
        assert!(bindings.contains_key("X"));
        assert_eq!(bindings.len(), 1);
        assert_eq!(bindings["X"], Value::int(1));
        let previous = bindings.insert("X", Value::int(2)).unwrap();
        assert_eq!(*previous, Value::int(1));
        let collected: Vec<(String, Value)> = bindings
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        assert_eq!(collected, vec![("X".to_string(), Value::int(2))]);
        assert_eq!(bindings.keys().collect::<Vec<_>>(), vec!["X"]);
        assert!(bindings.remove("X").is_some());
        assert!(bindings.get("X").is_none());
    }
}
