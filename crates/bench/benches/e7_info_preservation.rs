//! Experiment E7 — information preservation under constraints (Example 4.2).
//!
//! Paper claim (Section 4.3): the Person → Male/Female/Marriage schema
//! evolution "is not information preserving" in general, but "is information
//! preserving on those instances of the first schema that satisfy" the spouse
//! constraints (C9)–(C11). The bench measures the cost of the empirical
//! injectivity check and of constraint checking as the instance family grows,
//! and prints the collision counts with and without constraint filtering.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wol_engine::{check_injective, execute, normalize, NormalizeOptions};
use wol_model::{ClassName, Instance, Oid, Value};
use workloads::people::{generate_couples, PeopleWorkload};

/// Make the spouse attribute of the i-th wife point at herself, producing an
/// instance that violates (C11) but maps to the same target.
fn break_symmetry(mut instance: Instance, couple: usize) -> Instance {
    let class = ClassName::new("Person");
    let wife = Oid::new(class, (couple * 2 + 1) as u64);
    let mut value = instance.value(&wife).expect("wife exists").clone();
    if let Value::Record(ref mut fields) = value {
        fields.insert("spouse".into(), Value::oid(wife.clone()));
    }
    instance.update(&wife, value).expect("update succeeds");
    instance
}

fn bench_info_preservation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_info_preservation");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));

    let workload = PeopleWorkload::new();
    let program = workload.program();
    let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
    let transform = |source: &Instance| execute(&normal, &[source][..], "people_v2");

    for &couples in &[5usize, 20, 50] {
        // A family of valid instances plus their symmetry-broken twins.
        let mut family = Vec::new();
        for seed in 0..4u64 {
            let valid = generate_couples(couples, seed);
            family.push(break_symmetry(valid.clone(), 0));
            family.push(valid);
        }
        group.bench_with_input(
            BenchmarkId::new("injectivity_check", couples),
            &family,
            |b, family| b.iter(|| check_injective(family, transform, 3).expect("checks")),
        );
        let constraints = workload.constraints();
        let clause_refs: Vec<&wol_lang::Clause> = constraints.iter().collect();
        group.bench_with_input(
            BenchmarkId::new("constraint_filtering", couples),
            &family,
            |b, family| {
                b.iter(|| {
                    wol_engine::info_preserve::satisfying_instances(family, &clause_refs)
                        .expect("filters")
                        .len()
                })
            },
        );
    }
    group.finish();

    // Paper-style summary.
    let couples = 10;
    let valid = generate_couples(couples, 1);
    let broken = break_symmetry(valid.clone(), 0);
    let family = vec![valid, broken];
    let unfiltered = check_injective(&family, transform, 3).unwrap();
    let constraints = PeopleWorkload::new().constraints();
    let clause_refs: Vec<&wol_lang::Clause> = constraints.iter().collect();
    let satisfying: Vec<Instance> =
        wol_engine::info_preserve::satisfying_instances(&family, &clause_refs)
            .unwrap()
            .into_iter()
            .cloned()
            .collect();
    let filtered = check_injective(&satisfying, transform, 3).unwrap();
    eprintln!(
        "[E7] without constraints: {} collisions over {} instances; \
         with constraints (C9)-(C11): {} collisions over {} instances",
        unfiltered.collisions.len(),
        unfiltered.sources,
        filtered.collisions.len(),
        filtered.sources
    );
}

criterion_group!(benches, bench_info_preservation);
criterion_main!(benches);
