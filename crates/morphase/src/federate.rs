//! The federated pipeline path: backend scan providers as planner-visible
//! sources, with filter/projection pushdown and streaming ingest.
//!
//! A plain [`crate::Morphase::transform`] needs its sources fully
//! materialized before planning. [`transform_federated`] instead plans
//! *first*, against the per-class cardinality and distinct-value statistics
//! each [`storage::ScanProvider`] reports, then streams only the rows the
//! plan actually needs:
//!
//! 1. **Compile** with provider statistics
//!    ([`cpl::ExternalClassStats`]) — no rows have moved yet.
//! 2. **Split** each scan's single-variable conjunct pool into predicates
//!    the owning provider can evaluate at the source
//!    ([`cpl::PushdownCatalog`]) and residual ones, and compute a per-class
//!    projection from every attribute the compiled queries reference.
//! 3. **Ingest** each provider class chunk-at-a-time
//!    ([`storage::ingest_class`]), building attribute indexes and
//!    histograms alongside the stream.
//! 4. **Execute** the compiled queries against the ingested instance, via
//!    the same stage-5/6 driver as a plain run.
//!
//! ## Eligibility and bit-identity
//!
//! A class's predicates may be pushed only when **every scan of the class
//! across the whole compiled program reports the identical predicate set**
//! — the ingested extent is shared by every query, so a filter serving one
//! scan must not starve another. (Normalisation unfolds clause bodies into
//! their dependents, so a scan guard usually reappears verbatim at every
//! scan of its class, keeping the class eligible even when scanned many
//! times.)
//!
//! Both modes execute the **same plans**: a pushed conjunct stays in its
//! plan as a residual re-check that admits every row the provider already
//! filtered (see [`cpl::optimize_with_pushdown`]). With pushdown off
//! (`WOL_PUSHDOWN=0` or [`crate::PipelineOptions::pushdown`] false) ingest
//! streams unfiltered and the very same filter does the trimming at run
//! time instead; because [`storage::PushedFilter::matches`] mirrors the
//! executor's comparison semantics, the surviving rows, their order, the
//! Skolem numbering, and hence the produced **target are bit-identical in
//! both modes** — only scan-volume counters (and ingest work) differ.
//! Projection is applied in *both* modes (it never changes the row set,
//! only trims unreferenced attributes), and is disabled wholesale for a
//! class whose objects are used whole by any expression.
//!
//! Source-constraint checking (`check_source_constraints`) disables
//! pushdown and projection entirely: constraints quantify over the full
//! unprojected extents, so they are checked against a complete ingest.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use cpl::{Expr, Plan};
use storage::provider::{PushOp, Pushdown, PushedFilter, ScanProvider, DEFAULT_CHUNK_ROWS};
use wol_lang::program::Program;
use wol_model::{ClassName, Instance};

use crate::pipeline::{compile_stages_ext, execute_pipeline, MorphaseRun, PipelineOptions};
use crate::{MorphaseError, Result};

/// Run the federated pipeline: compile against provider statistics, push
/// eligible filters/projections, stream-ingest, execute. See the module docs
/// for the contract; see [`crate::Morphase::transform_federated`] for the
/// public entry point.
pub(crate) fn transform_federated(
    options: PipelineOptions,
    program: &Program,
    providers: &[&dyn ScanProvider],
) -> Result<MorphaseRun> {
    // Which provider serves which class, plus the planner-facing statistics.
    let mut owner: BTreeMap<ClassName, usize> = BTreeMap::new();
    let mut external: Vec<cpl::ExternalClassStats> = Vec::new();
    for (index, provider) in providers.iter().enumerate() {
        for class in provider.classes() {
            if let Some(&other) = owner.get(&class) {
                return Err(MorphaseError::Compilation(format!(
                    "class `{class}` is served by both provider `{}` and provider `{}`",
                    providers[other].name(),
                    provider.name()
                )));
            }
            let stats = provider.stats(&class).ok_or_else(|| {
                MorphaseError::Compilation(format!(
                    "provider `{}` lists class `{class}` but reports no statistics for it",
                    provider.name()
                ))
            })?;
            owner.insert(class.clone(), index);
            external.push(cpl::ExternalClassStats {
                class: stats.class,
                rows: stats.rows,
                ndvs: stats.ndvs,
            });
        }
    }

    // Compile once, with every provider attribute in the catalog when
    // pushdown is on. The catalog does not change the produced plans — a
    // pushable conjunct stays in its plan as a residual re-check (see
    // `cpl::optimize_with_pushdown`) — it only *reports* which predicates
    // each scan could evaluate at the source, so these are exactly the plans
    // a pushdown-off run executes too.
    let pushdown_on =
        options.pushdown && options.optimize_plans && !options.check_source_constraints;
    let catalog = if pushdown_on {
        let mut catalog = cpl::PushdownCatalog::default();
        for stats in &external {
            for attr in stats.ndvs.keys() {
                catalog.allow(&stats.class, attr);
            }
        }
        Some(catalog)
    } else {
        None
    };
    let (compiled, pushed) =
        compile_stages_ext(options, program, &[], &external, catalog.as_ref())?;

    let mut scan_counts: BTreeMap<ClassName, usize> = BTreeMap::new();
    for query in &compiled.queries {
        count_scans(&query.plan, &mut scan_counts);
    }
    let projections = class_projections(&compiled.queries, &owner);

    // Restrict the reported predicates to the eligible classes (the module
    // docs' starvation condition: every scan of the class reported the same
    // set), then deduplicate — any one scan's predicates stand for the
    // class as a whole.
    let eligible = eligible_classes(&pushed, &scan_counts);
    let mut filters: BTreeMap<ClassName, Vec<PushedFilter>> = BTreeMap::new();
    for predicate in pushed.into_iter().flatten() {
        if !eligible.contains(&predicate.class) {
            continue;
        }
        let entry = filters.entry(predicate.class.clone()).or_default();
        let filter = PushedFilter {
            attr: predicate.attr,
            op: convert_cmp(predicate.cmp),
            value: predicate.value,
        };
        if !entry.contains(&filter) {
            entry.push(filter);
        }
    }
    let pushed_filters: usize = filters.values().map(Vec::len).sum();

    // Ingest every provider class (in class order — deterministic), with its
    // pushed filters and projection.
    let start = Instant::now();
    let schema_name = program
        .sources
        .first()
        .map(|binding| binding.schema.name().to_string())
        .unwrap_or_else(|| "federated".to_string());
    let mut instance = Instance::new(schema_name);
    let mut rows_in = 0usize;
    let mut rows_out = 0usize;
    let use_projection = !options.check_source_constraints;
    for (class, &index) in &owner {
        let class_filters = filters.remove(class).unwrap_or_default();
        let pushdown = Pushdown {
            filters: class_filters,
            projection: if use_projection {
                projections.get(class).cloned().flatten()
            } else {
                None
            },
        };
        let stats = storage::ingest_class(
            &mut instance,
            providers[index],
            class,
            &pushdown,
            DEFAULT_CHUNK_ROWS,
        )
        .map_err(|e| MorphaseError::Execution(e.to_string()))?;
        rows_in += stats.rows_in;
        rows_out += stats.rows_out;
    }
    let ingest = start.elapsed();

    // Stage 1b ran against no instances at compile time; check the source
    // constraints against the (complete, unprojected) ingest instead.
    if options.check_source_constraints {
        let constraints: Vec<&wol_lang::Clause> = compiled
            .augmented
            .source_constraints()
            .into_iter()
            .map(|(_, c)| c)
            .collect();
        let refs: Vec<&Instance> = vec![&instance];
        let dbs = wol_engine::Databases::new(&refs);
        wol_engine::enforce_constraints(&constraints, &dbs)
            .map_err(|e| MorphaseError::Verification(e.to_string()))?;
    }

    let mut run = execute_pipeline(options, compiled, &[&instance], true, None)?;
    run.timings.ingest = ingest;
    run.exec.pushed_filters = pushed_filters;
    run.exec.provider_rows_in = rows_in;
    run.exec.provider_rows_out = rows_out;
    Ok(run)
}

/// The classes whose every scan reported an identical pushable predicate
/// set. A scan is identified by `(query index, scan variable)` — variables
/// are unique within one compiled query but reused across queries. A class
/// scanned more times than it has reporting scans has a scan whose conjunct
/// pool lacked the predicates; filtering the shared extent would starve it,
/// so the class is ineligible.
fn eligible_classes(
    pushed: &[Vec<cpl::PushedPredicate>],
    scan_counts: &BTreeMap<ClassName, usize>,
) -> BTreeSet<ClassName> {
    type PredKey = (String, String, wol_model::Value);
    let mut per_scan: BTreeMap<ClassName, BTreeMap<(usize, String), BTreeSet<PredKey>>> =
        BTreeMap::new();
    for (query, predicates) in pushed.iter().enumerate() {
        for p in predicates {
            per_scan
                .entry(p.class.clone())
                .or_default()
                .entry((query, p.var.clone()))
                .or_default()
                .insert((p.attr.clone(), format!("{:?}", p.cmp), p.value.clone()));
        }
    }
    per_scan
        .into_iter()
        .filter(|(class, scans)| {
            scan_counts.get(class) == Some(&scans.len())
                && scans.values().collect::<BTreeSet<_>>().len() == 1
        })
        .map(|(class, _)| class)
        .collect()
}

/// Count `Scan` operators per class across a plan.
fn count_scans(plan: &Plan, counts: &mut BTreeMap<ClassName, usize>) {
    match plan {
        Plan::Scan { class, .. } => *counts.entry(class.clone()).or_default() += 1,
        Plan::Filter { input, .. } | Plan::Map { input, .. } | Plan::Distinct { input } => {
            count_scans(input, counts)
        }
        Plan::NestedLoopJoin { left, right, .. }
        | Plan::HashJoin { left, right, .. }
        | Plan::CrossJoin { left, right } => {
            count_scans(left, counts);
            count_scans(right, counts);
        }
    }
}

/// The per-class projection the ingest may apply: `Some(attrs)` when every
/// use of the class's objects is an attribute projection, `None` (keep
/// everything) when any expression uses an object whole — as a record value,
/// a Skolem key, an equality operand — or when the class is never scanned.
/// Computed over the pass-A plans, whose filters still reference the
/// pushable attributes, so the result is identical in both pushdown modes.
fn class_projections(
    queries: &[cpl::Query],
    owner: &BTreeMap<ClassName, usize>,
) -> BTreeMap<ClassName, Option<BTreeSet<String>>> {
    let mut needed: BTreeMap<ClassName, BTreeSet<String>> = BTreeMap::new();
    let mut whole: BTreeSet<ClassName> = BTreeSet::new();
    for query in queries {
        let mut var_class: BTreeMap<String, ClassName> = BTreeMap::new();
        collect_scan_vars(&query.plan, &mut var_class);
        let mut record = |expr: &Expr| {
            record_expr_attrs(expr, &var_class, &mut needed, &mut whole);
        };
        for expr in query.plan.expressions() {
            record(expr);
        }
        for insert in &query.inserts {
            record(&insert.key);
            for (_, expr) in &insert.attrs {
                record(expr);
            }
        }
    }
    owner
        .keys()
        .map(|class| {
            let projection = match needed.get(class) {
                Some(attrs) if !whole.contains(class) => Some(attrs.clone()),
                _ => None,
            };
            (class.clone(), projection)
        })
        .collect()
}

/// Map each scan variable to its class.
fn collect_scan_vars(plan: &Plan, out: &mut BTreeMap<String, ClassName>) {
    match plan {
        Plan::Scan { class, var } => {
            out.insert(var.clone(), class.clone());
        }
        Plan::Filter { input, .. } | Plan::Map { input, .. } | Plan::Distinct { input } => {
            collect_scan_vars(input, out)
        }
        Plan::NestedLoopJoin { left, right, .. }
        | Plan::HashJoin { left, right, .. }
        | Plan::CrossJoin { left, right } => {
            collect_scan_vars(left, out);
            collect_scan_vars(right, out);
        }
    }
}

/// Walk an expression recording, per scanned class, the attributes projected
/// off its row variables; a variable used in any non-projection position
/// marks its class as needing whole objects.
fn record_expr_attrs(
    expr: &Expr,
    var_class: &BTreeMap<String, ClassName>,
    needed: &mut BTreeMap<ClassName, BTreeSet<String>>,
    whole: &mut BTreeSet<ClassName>,
) {
    match expr {
        Expr::Proj(base, attr) => {
            if let Expr::Var(var) = base.as_ref() {
                if let Some(class) = var_class.get(var) {
                    needed
                        .entry(class.clone())
                        .or_default()
                        .insert(attr.clone());
                    return;
                }
            }
            record_expr_attrs(base, var_class, needed, whole);
        }
        Expr::Var(var) => {
            if let Some(class) = var_class.get(var) {
                whole.insert(class.clone());
            }
        }
        Expr::Const(_) => {}
        Expr::Record(fields) => {
            for (_, e) in fields {
                record_expr_attrs(e, var_class, needed, whole);
            }
        }
        Expr::Variant(_, payload) | Expr::Skolem(_, payload) | Expr::Not(payload) => {
            record_expr_attrs(payload, var_class, needed, whole);
        }
        Expr::Eq(a, b) | Expr::Neq(a, b) | Expr::Lt(a, b) | Expr::Leq(a, b) => {
            record_expr_attrs(a, var_class, needed, whole);
            record_expr_attrs(b, var_class, needed, whole);
        }
        Expr::And(exprs) => {
            for e in exprs {
                record_expr_attrs(e, var_class, needed, whole);
            }
        }
    }
}

/// Planner comparison → provider comparison (structurally identical; `cpl`
/// and `storage` cannot share the type without a dependency between them).
fn convert_cmp(cmp: cpl::PushCmp) -> PushOp {
    match cmp {
        cpl::PushCmp::Eq => PushOp::Eq,
        cpl::PushCmp::Neq => PushOp::Neq,
        cpl::PushCmp::Lt => PushOp::Lt,
        cpl::PushCmp::Leq => PushOp::Leq,
        cpl::PushCmp::Gt => PushOp::Gt,
        cpl::PushCmp::Geq => PushOp::Geq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Morphase;
    use workloads::federated as fed;

    fn run(pushdown: bool, check_source: bool) -> MorphaseRun {
        let params = fed::FederatedParams {
            clones: 12,
            markers: 40,
            assays: 400,
            seed: 5,
        };
        let (csv, ace, rel) = fed::providers(&params);
        let options = PipelineOptions {
            pushdown,
            check_source_constraints: check_source,
            ..PipelineOptions::default()
        };
        Morphase::with_options(options)
            .transform_federated(&fed::program(), &[&csv, &ace, &rel])
            .unwrap()
    }

    #[test]
    fn federated_run_pushes_all_three_filters() {
        let run = run(true, false);
        assert_eq!(run.exec.pushed_filters, 3);
        assert!(
            run.exec.provider_rows_out < run.exec.provider_rows_in,
            "filters trim the stream ({} -> {})",
            run.exec.provider_rows_in,
            run.exec.provider_rows_out
        );
        for class in ["CloneW", "MarkerW", "AssayW"] {
            assert!(
                run.target.extent_size(&ClassName::new(class)) > 0,
                "`{class}` is populated"
            );
        }
    }

    #[test]
    fn pushdown_off_is_bit_identical() {
        let on = run(true, false);
        let off = run(false, false);
        assert_eq!(off.exec.pushed_filters, 0);
        assert_eq!(off.exec.provider_rows_in, off.exec.provider_rows_out);
        assert_eq!(on.exec.rows_output, off.exec.rows_output);
        assert_eq!(on.exec.objects_written, off.exec.objects_written);
        assert_eq!(on.target.deep_eq_report(&off.target), None);
    }

    #[test]
    fn source_constraint_checking_forces_full_ingest() {
        let run = run(true, true);
        assert_eq!(run.exec.pushed_filters, 0);
        assert_eq!(run.exec.provider_rows_in, run.exec.provider_rows_out);
    }

    #[test]
    fn duplicate_class_ownership_is_rejected() {
        let params = fed::FederatedParams {
            clones: 4,
            markers: 8,
            assays: 20,
            seed: 1,
        };
        let rel_a = storage::RelationalProvider::new(fed::generate_clone_tables(&params));
        let rel_b = storage::RelationalProvider::new(fed::generate_clone_tables(&params));
        let err = Morphase::new()
            .transform_federated(&fed::program(), &[&rel_a, &rel_b])
            .unwrap_err();
        assert!(matches!(err, MorphaseError::Compilation(_)));
        assert!(err.to_string().contains("CloneR"));
    }
}
