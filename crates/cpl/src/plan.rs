//! The physical algebra.
//!
//! A [`Plan`] produces a stream of rows; a [`Query`] couples a plan with the
//! *insert actions* that build target objects from each row. Queries are the
//! unit Morphase compiles one normal-form WOL clause into.

use wol_model::{ClassName, Label};

use crate::expr::Expr;

/// A relational-style plan over complex-value rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Plan {
    /// Scan the extent of a class, binding each object identity to `var`.
    Scan {
        /// Class to scan.
        class: ClassName,
        /// Row variable receiving each object identity.
        var: String,
    },
    /// Keep only rows satisfying the predicate.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// Extend each row with computed bindings.
    Map {
        /// Input plan.
        input: Box<Plan>,
        /// New row variables and their defining expressions.
        bindings: Vec<(String, Expr)>,
    },
    /// Nested-loop join with an optional residual predicate.
    NestedLoopJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join predicate (over the combined row); `None` means a product.
        predicate: Option<Expr>,
    },
    /// Hash join on the (possibly composite) equality of key expressions:
    /// rows combine when every `(left_key, right_key)` pair evaluates equal.
    HashJoin {
        /// Left input (build side, or the index-probed side on the fast path).
        left: Box<Plan>,
        /// Right input (probe side).
        right: Box<Plan>,
        /// Equality key pairs, `(computed from left rows, computed from right
        /// rows)`. Must be non-empty.
        keys: Vec<(Expr, Expr)>,
    },
    /// Cartesian product of two inputs. Emitted by the planner only when the
    /// join graph is genuinely disconnected, so its presence in a plan is an
    /// auditable statement that no predicate relates the two sides.
    CrossJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Remove duplicate rows.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
}

impl Plan {
    /// Scan helper.
    pub fn scan(class: impl Into<ClassName>, var: impl Into<String>) -> Plan {
        Plan::Scan {
            class: class.into(),
            var: var.into(),
        }
    }

    /// Filter helper.
    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Map helper.
    pub fn map(self, bindings: Vec<(String, Expr)>) -> Plan {
        Plan::Map {
            input: Box::new(self),
            bindings,
        }
    }

    /// Nested-loop join helper.
    pub fn join(self, right: Plan, predicate: Option<Expr>) -> Plan {
        Plan::NestedLoopJoin {
            left: Box::new(self),
            right: Box::new(right),
            predicate,
        }
    }

    /// Single-key hash join helper.
    pub fn hash_join(self, right: Plan, left_key: Expr, right_key: Expr) -> Plan {
        self.hash_join_multi(right, vec![(left_key, right_key)])
    }

    /// Multi-key (composite) hash join helper.
    pub fn hash_join_multi(self, right: Plan, keys: Vec<(Expr, Expr)>) -> Plan {
        Plan::HashJoin {
            left: Box::new(self),
            right: Box::new(right),
            keys,
        }
    }

    /// Cross-join helper.
    pub fn cross(self, right: Plan) -> Plan {
        Plan::CrossJoin {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Distinct helper.
    pub fn distinct(self) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
        }
    }

    /// The row variables this plan is guaranteed to produce.
    pub fn produced_vars(&self) -> std::collections::BTreeSet<String> {
        match self {
            Plan::Scan { var, .. } => std::collections::BTreeSet::from([var.clone()]),
            Plan::Filter { input, .. } | Plan::Distinct { input } => input.produced_vars(),
            Plan::Map { input, bindings } => {
                let mut vars = input.produced_vars();
                vars.extend(bindings.iter().map(|(v, _)| v.clone()));
                vars
            }
            Plan::NestedLoopJoin { left, right, .. }
            | Plan::HashJoin { left, right, .. }
            | Plan::CrossJoin { left, right } => {
                let mut vars = left.produced_vars();
                vars.extend(right.produced_vars());
                vars
            }
        }
    }

    /// The classes this plan scans — a query's *read set*, used by the
    /// pipeline's query scheduler to order queries that read an extent after
    /// queries that write it.
    pub fn scanned_classes(&self) -> std::collections::BTreeSet<ClassName> {
        fn go(plan: &Plan, out: &mut std::collections::BTreeSet<ClassName>) {
            match plan {
                Plan::Scan { class, .. } => {
                    out.insert(class.clone());
                }
                Plan::Filter { input, .. } | Plan::Map { input, .. } | Plan::Distinct { input } => {
                    go(input, out)
                }
                Plan::NestedLoopJoin { left, right, .. }
                | Plan::HashJoin { left, right, .. }
                | Plan::CrossJoin { left, right } => {
                    go(left, out);
                    go(right, out);
                }
            }
        }
        let mut out = std::collections::BTreeSet::new();
        go(self, &mut out);
        out
    }

    /// Every expression embedded in the plan (filter predicates, map
    /// bindings, join predicates and keys), for whole-plan analyses like the
    /// scheduler's Skolem-safety gate.
    pub fn expressions(&self) -> Vec<&Expr> {
        fn go<'p>(plan: &'p Plan, out: &mut Vec<&'p Expr>) {
            match plan {
                Plan::Scan { .. } => {}
                Plan::Filter { input, predicate } => {
                    out.push(predicate);
                    go(input, out);
                }
                Plan::Map { input, bindings } => {
                    out.extend(bindings.iter().map(|(_, e)| e));
                    go(input, out);
                }
                Plan::Distinct { input } => go(input, out),
                Plan::NestedLoopJoin {
                    left,
                    right,
                    predicate,
                } => {
                    out.extend(predicate.iter());
                    go(left, out);
                    go(right, out);
                }
                Plan::HashJoin { left, right, keys } => {
                    out.extend(keys.iter().flat_map(|(l, r)| [l, r]));
                    go(left, out);
                    go(right, out);
                }
                Plan::CrossJoin { left, right } => {
                    go(left, out);
                    go(right, out);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out
    }

    /// Number of operators in the plan (used in reports).
    pub fn operator_count(&self) -> usize {
        match self {
            Plan::Scan { .. } => 1,
            Plan::Filter { input, .. } | Plan::Map { input, .. } | Plan::Distinct { input } => {
                1 + input.operator_count()
            }
            Plan::NestedLoopJoin { left, right, .. }
            | Plan::HashJoin { left, right, .. }
            | Plan::CrossJoin { left, right } => 1 + left.operator_count() + right.operator_count(),
        }
    }

    /// Render the plan as an indented tree (for reports and debugging).
    pub fn render(&self) -> String {
        fn go(plan: &Plan, indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            match plan {
                Plan::Scan { class, var } => out.push_str(&format!("{pad}Scan {class} as {var}\n")),
                Plan::Filter { input, .. } => {
                    out.push_str(&format!("{pad}Filter\n"));
                    go(input, indent + 1, out);
                }
                Plan::Map { input, bindings } => {
                    out.push_str(&format!(
                        "{pad}Map [{}]\n",
                        bindings
                            .iter()
                            .map(|(v, _)| v.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                    go(input, indent + 1, out);
                }
                Plan::NestedLoopJoin { left, right, .. } => {
                    out.push_str(&format!("{pad}NestedLoopJoin\n"));
                    go(left, indent + 1, out);
                    go(right, indent + 1, out);
                }
                Plan::HashJoin { left, right, keys } => {
                    out.push_str(&format!("{pad}HashJoin ({} key(s))\n", keys.len()));
                    go(left, indent + 1, out);
                    go(right, indent + 1, out);
                }
                Plan::CrossJoin { left, right } => {
                    out.push_str(&format!("{pad}CrossJoin\n"));
                    go(left, indent + 1, out);
                    go(right, indent + 1, out);
                }
                Plan::Distinct { input } => {
                    out.push_str(&format!("{pad}Distinct\n"));
                    go(input, indent + 1, out);
                }
            }
        }
        let mut out = String::new();
        go(self, 0, &mut out);
        out
    }
}

/// An insert action: for each row of the plan, create (or merge into) the
/// object of `class` identified by the value of `key`, setting the given
/// attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InsertAction {
    /// Target class.
    pub class: ClassName,
    /// Key expression; its value identifies the object (via the Skolem factory).
    pub key: Expr,
    /// Attribute expressions.
    pub attrs: Vec<(Label, Expr)>,
}

/// A compiled query: a plan plus the insert actions applied to each row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// Human-readable name (usually the originating clause label).
    pub name: String,
    /// The row-producing plan.
    pub plan: Plan,
    /// Insert actions applied per row.
    pub inserts: Vec<InsertAction>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_produced_vars() {
        let plan = Plan::scan("CountryE", "C")
            .map(vec![("N".to_string(), Expr::var("C").proj("name"))])
            .filter(Expr::var("C").proj("name").eq(Expr::Const("France".into())))
            .distinct();
        let vars = plan.produced_vars();
        assert!(vars.contains("C"));
        assert!(vars.contains("N"));
        assert_eq!(plan.operator_count(), 4);
    }

    #[test]
    fn join_produced_vars_and_render() {
        let plan = Plan::scan("CityE", "E").hash_join(
            Plan::scan("CountryE", "C"),
            Expr::var("E").path("country.name"),
            Expr::var("C").proj("name"),
        );
        let vars = plan.produced_vars();
        assert!(vars.contains("E") && vars.contains("C"));
        let rendered = plan.render();
        assert!(rendered.contains("HashJoin"));
        assert!(rendered.contains("Scan CityE as E"));

        let nl = Plan::scan("A", "a").join(Plan::scan("B", "b"), None);
        assert!(nl.render().contains("NestedLoopJoin"));
        assert_eq!(nl.operator_count(), 3);
    }

    #[test]
    fn cross_join_and_multi_key_render() {
        let cross = Plan::scan("A", "a").cross(Plan::scan("B", "b"));
        assert!(cross.render().contains("CrossJoin"));
        assert_eq!(cross.operator_count(), 3);
        let vars = cross.produced_vars();
        assert!(vars.contains("a") && vars.contains("b"));

        let multi = Plan::scan("A", "a").hash_join_multi(
            Plan::scan("B", "b"),
            vec![
                (Expr::var("a").proj("x"), Expr::var("b").proj("x")),
                (Expr::var("a").proj("y"), Expr::var("b").proj("y")),
            ],
        );
        assert!(multi.render().contains("HashJoin (2 key(s))"));
    }
}
