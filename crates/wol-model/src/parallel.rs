//! The workspace-wide parallelism knob.
//!
//! Both execution engines (`cpl`'s plan executor and `wol-engine`'s clause
//! matcher) partition their work over [`std::thread::scope`] workers. How many
//! workers is a *policy* decision threaded down from the pipeline driver, so
//! it lives here in the shared model crate: a [`Parallelism`] value is "use
//! `n` OS threads", defaulting to the machine's available cores and
//! overridable with the `WOL_THREADS` environment variable (the hook the CI
//! thread-matrix uses to run the whole suite single- and multi-threaded).
//!
//! Parallel execution is required to be *deterministic*: the same inputs must
//! produce bit-identical outputs at every thread count. The executors achieve
//! that by partitioning work by data (contiguous chunks, or key-hash shards)
//! rather than by scheduling, and by reassembling results in input order —
//! `Parallelism` only decides how many partitions run concurrently, never
//! what any partition computes.

/// Number of worker threads parallel operators may use. Always at least 1;
/// `1` means fully sequential execution (no scoped threads are spawned).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Parallelism(usize);

impl Parallelism {
    /// Exactly `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        Parallelism(threads.max(1))
    }

    /// Sequential execution: one worker, no threads spawned.
    pub fn sequential() -> Self {
        Parallelism(1)
    }

    /// The environment's parallelism: `WOL_THREADS` if set to an integer
    /// (`0` clamps to sequential, matching [`Parallelism::new`]), otherwise
    /// the number of available cores (1 if unknown).
    pub fn from_env() -> Self {
        match std::env::var("WOL_THREADS") {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) => Parallelism::new(n),
                Err(_) => Self::available(),
            },
            Err(_) => Self::available(),
        }
    }

    /// The machine's available cores, ignoring `WOL_THREADS`.
    pub fn available() -> Self {
        Parallelism(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The number of worker threads.
    pub fn threads(self) -> usize {
        self.0
    }

    /// True when no scoped threads would be spawned.
    pub fn is_sequential(self) -> bool {
        self.0 <= 1
    }
}

impl Default for Parallelism {
    /// The environment default ([`Parallelism::from_env`]).
    fn default() -> Self {
        Self::from_env()
    }
}

/// Split `n` items into at most `threads` contiguous, order-preserving index
/// ranges of near-equal length (the first `n % threads` ranges are one item
/// longer). Empty ranges are never emitted, so the result has
/// `min(threads, n)` entries; concatenating the ranges in order yields
/// `0..n`. Partitioning work this way keeps parallel results mergeable in
/// input order, which is what makes the executors deterministic.
pub fn chunk_ranges(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let workers = threads.max(1).min(n);
    if workers == 0 {
        return Vec::new();
    }
    let base = n / workers;
    let extra = n % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for i in 0..workers {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_clamps_and_reports() {
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert_eq!(Parallelism::new(8).threads(), 8);
        assert!(Parallelism::sequential().is_sequential());
        assert!(!Parallelism::new(2).is_sequential());
        assert!(Parallelism::available().threads() >= 1);
        assert!(Parallelism::from_env().threads() >= 1);
        assert!(Parallelism::default().threads() >= 1);
    }

    #[test]
    fn chunk_ranges_cover_exactly_in_order() {
        for n in 0..40usize {
            for threads in 1..10usize {
                let ranges = chunk_ranges(n, threads);
                assert_eq!(ranges.len(), threads.min(n));
                let mut expected = 0usize;
                for range in &ranges {
                    assert_eq!(range.start, expected);
                    assert!(!range.is_empty());
                    expected = range.end;
                }
                assert_eq!(expected, n);
                // Near-equal: lengths differ by at most one.
                if let (Some(max), Some(min)) = (
                    ranges.iter().map(|r| r.len()).max(),
                    ranges.iter().map(|r| r.len()).min(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }
}
