//! The write-ahead log.
//!
//! The log is a sequence of length-prefixed, CRC-checksummed records framed
//! into *batches* by explicit commit markers:
//!
//! ```text
//! record  := len:u32le  crc:u32le  payload           (crc = CRC-32 of payload)
//! payload := tag:u8     body                          (see WalRecord)
//! batch   := record*    commit-record                 (tag 0x08, body = seq varint)
//! ```
//!
//! Batches are atomic: recovery replays a batch only if its commit record is
//! intact and its sequence number is the next expected one. Anything after
//! the last intact committed batch — a torn record, a checksum mismatch, an
//! uncommitted tail — is *discarded*, never partially applied, realising the
//! consistent-update-set recovery contract (replay lands on a prefix of whole
//! update sets).

use std::io::Write;

use wol_model::{ClassName, Instance, Mutation, Oid, SkolemFactory, Value};

use crate::error::StorageError;
use crate::persist::codec::{self, ByteReader};
use crate::Result;

/// One write-ahead-log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// An object was inserted.
    Insert(Oid, Value),
    /// An object's value was replaced.
    Update(Oid, Value),
    /// An object was removed.
    Remove(Oid),
    /// A Skolem assignment `Mk_class(key) = oid` was created.
    SkolemAssign(ClassName, Value, Oid),
    /// A class's fresh-identity counter advanced to `n`.
    OidCounter(ClassName, u64),
    /// Pipeline query `index` finished applying (durable-pipeline journal).
    QueryDone(u64),
    /// The pipeline journal's plan fingerprint (first record of a journal).
    Fingerprint(u64),
    /// Commit marker closing a batch; `seq` numbers batches consecutively.
    Commit {
        /// The batch sequence number.
        seq: u64,
    },
}

const TAG_INSERT: u8 = 0x01;
const TAG_UPDATE: u8 = 0x02;
const TAG_REMOVE: u8 = 0x03;
const TAG_SKOLEM_ASSIGN: u8 = 0x04;
const TAG_OID_COUNTER: u8 = 0x05;
const TAG_QUERY_DONE: u8 = 0x06;
const TAG_FINGERPRINT: u8 = 0x07;
const TAG_COMMIT: u8 = 0x08;

/// Reject implausible record lengths before allocating (a corrupted length
/// field must not look like a multi-gigabyte record).
const MAX_RECORD_LEN: u32 = 1 << 30;

/// Encode one record's payload (tag + body, without framing).
fn encode_payload(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        WalRecord::Insert(oid, value) => {
            out.push(TAG_INSERT);
            codec::put_oid(&mut out, oid);
            codec::put_value(&mut out, value);
        }
        WalRecord::Update(oid, value) => {
            out.push(TAG_UPDATE);
            codec::put_oid(&mut out, oid);
            codec::put_value(&mut out, value);
        }
        WalRecord::Remove(oid) => {
            out.push(TAG_REMOVE);
            codec::put_oid(&mut out, oid);
        }
        WalRecord::SkolemAssign(class, key, oid) => {
            out.push(TAG_SKOLEM_ASSIGN);
            codec::put_str(&mut out, class.as_str());
            codec::put_value(&mut out, key);
            codec::put_oid(&mut out, oid);
        }
        WalRecord::OidCounter(class, n) => {
            out.push(TAG_OID_COUNTER);
            codec::put_str(&mut out, class.as_str());
            codec::put_varint(&mut out, *n);
        }
        WalRecord::QueryDone(index) => {
            out.push(TAG_QUERY_DONE);
            codec::put_varint(&mut out, *index);
        }
        WalRecord::Fingerprint(fp) => {
            out.push(TAG_FINGERPRINT);
            codec::put_u64(&mut out, *fp);
        }
        WalRecord::Commit { seq } => {
            out.push(TAG_COMMIT);
            codec::put_varint(&mut out, *seq);
        }
    }
    out
}

/// Decode one record payload.
fn decode_payload(payload: &[u8], source: &str, base_offset: u64) -> Result<WalRecord> {
    let mut r = ByteReader::new(payload, source);
    let record = match r.u8()? {
        TAG_INSERT => WalRecord::Insert(r.oid()?, r.value()?),
        TAG_UPDATE => WalRecord::Update(r.oid()?, r.value()?),
        TAG_REMOVE => WalRecord::Remove(r.oid()?),
        TAG_SKOLEM_ASSIGN => {
            WalRecord::SkolemAssign(ClassName::new(r.str()?), r.value()?, r.oid()?)
        }
        TAG_OID_COUNTER => WalRecord::OidCounter(ClassName::new(r.str()?), r.varint()?),
        TAG_QUERY_DONE => WalRecord::QueryDone(r.varint()?),
        TAG_FINGERPRINT => WalRecord::Fingerprint(r.u64()?),
        TAG_COMMIT => WalRecord::Commit { seq: r.varint()? },
        other => {
            return Err(StorageError::corrupt_at_offset(
                source,
                base_offset,
                "a WAL record tag in 0x01..=0x08",
                format!("tag {other:#04x}"),
            ));
        }
    };
    if !r.is_at_end() {
        return Err(StorageError::corrupt_at_offset(
            source,
            base_offset + r.pos() as u64,
            "end of record payload",
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok(record)
}

/// Frame one record: `len | crc | payload`.
fn frame_record(out: &mut Vec<u8>, record: &WalRecord) {
    let payload = encode_payload(record);
    codec::put_u32(out, payload.len() as u32);
    codec::put_u32(out, codec::crc32(&payload));
    out.extend_from_slice(&payload);
}

/// An appender writing committed batches to a sink.
///
/// The sink is generic so the fault-injection shim
/// ([`FaultyFile`](crate::persist::FaultyFile)) and in-memory buffers thread
/// through the same code path as real files.
#[derive(Debug)]
pub struct WalWriter<W: Write> {
    sink: W,
    next_seq: u64,
    offset: u64,
}

impl<W: Write> WalWriter<W> {
    /// A writer appending to `sink`, which already holds `offset` bytes of
    /// log whose next batch sequence number is `next_seq`. Fresh logs start
    /// at `(0, 0)`.
    pub fn new(sink: W, next_seq: u64, offset: u64) -> Self {
        WalWriter {
            sink,
            next_seq,
            offset,
        }
    }

    /// Append one atomic batch: the records followed by a commit marker, in a
    /// single write, flushed before returning. Returns the end offset of the
    /// committed batch. An empty batch writes nothing.
    pub fn append_batch(&mut self, records: &[WalRecord], path: &str) -> Result<u64> {
        if records.is_empty() {
            return Ok(self.offset);
        }
        let mut frame = Vec::new();
        for record in records {
            debug_assert!(
                !matches!(record, WalRecord::Commit { .. }),
                "commit markers are framed by the writer"
            );
            frame_record(&mut frame, record);
        }
        frame_record(&mut frame, &WalRecord::Commit { seq: self.next_seq });
        self.sink
            .write_all(&frame)
            .and_then(|()| self.sink.flush())
            .map_err(|e| StorageError::io(path, e))?;
        self.next_seq += 1;
        self.offset += frame.len() as u64;
        Ok(self.offset)
    }

    /// The sequence number the next committed batch will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Byte offset at the end of the last committed batch.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Access the sink (for tests and fault-policy installation).
    pub fn sink_mut(&mut self) -> &mut W {
        &mut self.sink
    }

    /// Unwrap the sink.
    pub fn into_sink(self) -> W {
        self.sink
    }
}

/// Why a log's tail was discarded during replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset at which the log stops being replayable (the end of the
    /// last committed batch).
    pub offset: u64,
    /// Human-readable reason (truncated header, checksum mismatch, ...).
    pub reason: String,
}

/// The result of scanning a log image: the committed batches, where the
/// committed prefix ends, and why the rest (if any) was discarded.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalReplay {
    /// Each committed batch's records, commit markers excluded, in commit
    /// order.
    pub batches: Vec<Vec<WalRecord>>,
    /// Byte offset of the end of the last committed batch; the log should be
    /// truncated here before further appends.
    pub committed_len: u64,
    /// Sequence number the next committed batch must carry.
    pub next_seq: u64,
    /// Present when bytes past `committed_len` were discarded.
    pub tail: Option<TornTail>,
}

/// Scan a log image, returning every intact committed batch and discarding
/// the torn tail. Never fails: *any* malformation — truncated header or
/// body, checksum mismatch, undecodable payload, out-of-order commit,
/// uncommitted trailing records — ends the committed prefix there.
pub fn replay_wal(bytes: &[u8], source: &str, first_seq: u64) -> WalReplay {
    let mut replay = WalReplay {
        next_seq: first_seq,
        ..WalReplay::default()
    };
    let mut pending: Vec<WalRecord> = Vec::new();
    let mut pos = 0usize;
    let torn = |offset: u64, reason: String| TornTail { offset, reason };
    loop {
        if pos == bytes.len() {
            if !pending.is_empty() {
                replay.tail = Some(torn(
                    replay.committed_len,
                    "uncommitted batch tail".to_string(),
                ));
            }
            return replay;
        }
        let record_start = pos as u64;
        if bytes.len() - pos < 8 {
            replay.tail = Some(torn(
                replay.committed_len,
                format!(
                    "truncated record header at byte {record_start} \
                     ({} of 8 bytes)",
                    bytes.len() - pos
                ),
            ));
            return replay;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            replay.tail = Some(torn(
                replay.committed_len,
                format!("implausible record length {len} at byte {record_start}"),
            ));
            return replay;
        }
        if bytes.len() - pos - 8 < len as usize {
            replay.tail = Some(torn(
                replay.committed_len,
                format!(
                    "truncated record body at byte {record_start} \
                     ({} of {len} bytes)",
                    bytes.len() - pos - 8
                ),
            ));
            return replay;
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if codec::crc32(payload) != crc {
            replay.tail = Some(torn(
                replay.committed_len,
                format!("checksum mismatch at byte {record_start}"),
            ));
            return replay;
        }
        let record = match decode_payload(payload, source, record_start + 8) {
            Ok(record) => record,
            Err(e) => {
                replay.tail = Some(torn(replay.committed_len, e.to_string()));
                return replay;
            }
        };
        pos += 8 + len as usize;
        match record {
            WalRecord::Commit { seq } => {
                if seq != replay.next_seq {
                    replay.tail = Some(torn(
                        replay.committed_len,
                        format!(
                            "commit sequence mismatch at byte {record_start}: \
                             expected {}, found {seq}",
                            replay.next_seq
                        ),
                    ));
                    return replay;
                }
                replay.batches.push(std::mem::take(&mut pending));
                replay.committed_len = pos as u64;
                replay.next_seq += 1;
            }
            record => pending.push(record),
        }
    }
}

/// Apply one replayed record to an instance and Skolem factory.
pub fn apply_record(
    record: &WalRecord,
    instance: &mut Instance,
    skolem: &mut SkolemFactory,
) -> Result<()> {
    match record {
        WalRecord::Insert(oid, value) => instance.insert(oid.clone(), value.clone())?,
        WalRecord::Update(oid, value) => instance.update(oid, value.clone())?,
        WalRecord::Remove(oid) => {
            instance.remove(oid);
        }
        WalRecord::SkolemAssign(class, key, oid) => {
            skolem.restore_assignment(class, key.clone(), oid.clone());
        }
        WalRecord::OidCounter(class, n) => instance.restore_oid_counter(class, *n),
        WalRecord::QueryDone(_) | WalRecord::Fingerprint(_) => {}
        WalRecord::Commit { .. } => {}
    }
    Ok(())
}

/// Turn an applied [`Mutation`] (from [`Instance::take_mutation_log`]) into
/// its WAL record.
pub fn record_of_mutation(mutation: Mutation) -> WalRecord {
    match mutation {
        Mutation::Insert(oid, value) => WalRecord::Insert(oid, value),
        Mutation::Update(oid, value) => WalRecord::Update(oid, value),
        Mutation::Remove(oid) => WalRecord::Remove(oid),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        let class = ClassName::new("CityT");
        let oid = Oid::new(class.clone(), 0);
        vec![
            WalRecord::Insert(oid.clone(), Value::record([("name", Value::str("Paris"))])),
            WalRecord::Update(oid.clone(), Value::record([("name", Value::str("Lyon"))])),
            WalRecord::SkolemAssign(class.clone(), Value::str("Lyon"), oid.clone()),
            WalRecord::OidCounter(class, 1),
            WalRecord::Remove(oid),
            WalRecord::QueryDone(3),
            WalRecord::Fingerprint(0xDEAD_BEEF),
        ]
    }

    #[test]
    fn payloads_round_trip() {
        for record in sample_records() {
            let payload = encode_payload(&record);
            assert_eq!(decode_payload(&payload, "<t>", 0).unwrap(), record);
        }
        let commit = WalRecord::Commit { seq: 42 };
        let payload = encode_payload(&commit);
        assert_eq!(decode_payload(&payload, "<t>", 0).unwrap(), commit);
    }

    #[test]
    fn writer_frames_batches_and_replay_returns_them() {
        let mut writer = WalWriter::new(Vec::new(), 0, 0);
        let records = sample_records();
        let end1 = writer.append_batch(&records[..3], "<t>").unwrap();
        let end2 = writer.append_batch(&records[3..], "<t>").unwrap();
        assert!(end2 > end1);
        assert_eq!(writer.next_seq(), 2);
        // Empty batches write nothing.
        assert_eq!(writer.append_batch(&[], "<t>").unwrap(), end2);
        let bytes = writer.into_sink();
        assert_eq!(bytes.len() as u64, end2);

        let replay = replay_wal(&bytes, "<t>", 0);
        assert_eq!(replay.batches.len(), 2);
        assert_eq!(replay.batches[0], records[..3].to_vec());
        assert_eq!(replay.batches[1], records[3..].to_vec());
        assert_eq!(replay.committed_len, end2);
        assert_eq!(replay.next_seq, 2);
        assert_eq!(replay.tail, None);
    }

    #[test]
    fn truncation_discards_only_the_torn_batch() {
        let mut writer = WalWriter::new(Vec::new(), 0, 0);
        let records = sample_records();
        let end1 = writer.append_batch(&records[..3], "<t>").unwrap();
        writer.append_batch(&records[3..], "<t>").unwrap();
        let bytes = writer.into_sink();
        // Cut anywhere inside the second batch: only the first survives.
        for cut in (end1 as usize + 1)..bytes.len() {
            let replay = replay_wal(&bytes[..cut], "<t>", 0);
            assert_eq!(replay.batches.len(), 1, "cut at {cut}");
            assert_eq!(replay.committed_len, end1, "cut at {cut}");
            assert!(replay.tail.is_some(), "cut at {cut}");
        }
    }

    #[test]
    fn checksum_mismatch_detected_and_tail_discarded() {
        let mut writer = WalWriter::new(Vec::new(), 0, 0);
        writer.append_batch(&sample_records()[..3], "<t>").unwrap();
        let end1 = writer.offset();
        writer.append_batch(&sample_records()[3..], "<t>").unwrap();
        let mut bytes = writer.into_sink();
        // Flip a payload byte in the second batch.
        let target = end1 as usize + 9;
        bytes[target] ^= 0x40;
        let replay = replay_wal(&bytes, "<t>", 0);
        assert_eq!(replay.batches.len(), 1);
        let tail = replay.tail.unwrap();
        assert_eq!(tail.offset, end1);
        assert!(
            tail.reason.contains("checksum") || tail.reason.contains("corrupt"),
            "{}",
            tail.reason
        );
    }

    #[test]
    fn commit_sequence_gaps_rejected() {
        let mut writer = WalWriter::new(Vec::new(), 5, 0);
        writer.append_batch(&sample_records()[..2], "<t>").unwrap();
        let bytes = writer.into_sink();
        // Expecting seq 0 but the log starts at 5: nothing replays.
        let replay = replay_wal(&bytes, "<t>", 0);
        assert!(replay.batches.is_empty());
        assert!(replay
            .tail
            .unwrap()
            .reason
            .contains("commit sequence mismatch"));
        // With the right starting seq it replays fine.
        assert_eq!(replay_wal(&bytes, "<t>", 5).batches.len(), 1);
    }

    #[test]
    fn apply_record_mirrors_instance_mutations() {
        let class = ClassName::new("CityT");
        let mut reference = Instance::new("target");
        reference.begin_mutation_log();
        let oid = reference.insert_fresh(&class, Value::record([("name", Value::str("Paris"))]));
        reference
            .update(&oid, Value::record([("name", Value::str("Lyon"))]))
            .unwrap();
        let mutations = reference.end_mutation_log();

        let mut recovered = Instance::new("target");
        let mut skolem = SkolemFactory::new();
        for m in mutations {
            apply_record(&record_of_mutation(m), &mut recovered, &mut skolem).unwrap();
        }
        for (c, n) in reference.oid_counters() {
            recovered.restore_oid_counter(c, n);
        }
        assert_eq!(recovered.deep_eq_report(&reference), None);
    }
}
