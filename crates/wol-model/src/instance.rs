//! Database instances.
//!
//! An instance of a schema consists of a finite set of object identities for
//! each class and a mapping from each identity to its associated value, such
//! that every identity occurring inside a value belongs to one of the
//! instance's extents (Section 2.1).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, RwLock};

use crate::column::AttrColumn;
use crate::error::ModelError;
use crate::histogram::{AttrHistogram, SAMPLE_THRESHOLD};
use crate::index::{value_hash, AttrIndex, IndexCache};
use crate::oid::{Oid, OidGen};
use crate::types::ClassName;
use crate::values::Value;
use crate::Result;

/// Per-`(class, attribute)` statistics derived from the lazy attribute index,
/// consumed by cost-based query planning (see
/// [`attr_stats`](Instance::attr_stats)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttrStats {
    /// Objects of the class that carry the attribute (optional attributes
    /// make this smaller than the extent).
    pub entries: usize,
    /// Approximate number of distinct values the attribute takes.
    pub distinct: usize,
}

/// One applied change to an instance's object population, as recorded by the
/// optional mutation log (see [`Instance::begin_mutation_log`]). The
/// persistence layer in `storage` turns these into write-ahead-log records;
/// replaying them in order onto the pre-mutation instance reproduces the
/// post-mutation instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// An object was inserted (via [`Instance::insert`] or
    /// [`Instance::insert_fresh`]).
    Insert(Oid, Value),
    /// An existing object's value was replaced.
    Update(Oid, Value),
    /// An object was removed.
    Remove(Oid),
}

/// A database instance: extents of object identities per class, plus the value
/// associated with each identity.
///
/// Instances also carry a lazily built cache of secondary attribute indexes
/// (see [`crate::index`]) used by the engine's join machinery; the cache is
/// derived data and is ignored by equality and excluded from clones.
///
/// The cache sits behind an [`RwLock`], so an `Instance` is [`Sync`]: the
/// parallel executors share `&Instance` across [`std::thread::scope`] workers,
/// which probe extents, attribute indexes and histograms concurrently.
/// Mutation still requires `&mut self`, so a read-only parallel section can
/// never observe a write — the lock exists only to let concurrent readers
/// build missing index entries lazily.
#[derive(Debug, Default)]
pub struct Instance {
    schema_name: String,
    extents: BTreeMap<ClassName, BTreeSet<Oid>>,
    values: BTreeMap<Oid, Value>,
    oid_gen: OidGen,
    index: RwLock<IndexCache>,
    /// Optional mutation log (see [`begin_mutation_log`](Self::begin_mutation_log)).
    /// Like the index cache this is bookkeeping, not data: it is ignored by
    /// equality and excluded from clones.
    mutation_log: Option<Vec<Mutation>>,
}

impl Clone for Instance {
    fn clone(&self) -> Self {
        Instance {
            schema_name: self.schema_name.clone(),
            extents: self.extents.clone(),
            values: self.values.clone(),
            oid_gen: self.oid_gen.clone(),
            index: RwLock::new(IndexCache::default()),
            mutation_log: None,
        }
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.schema_name == other.schema_name
            && self.extents == other.extents
            && self.values == other.values
            && self.oid_gen == other.oid_gen
    }
}

impl Eq for Instance {}

impl Instance {
    /// Create an empty instance labelled with the name of the schema it is an
    /// instance of.
    pub fn new(schema_name: impl Into<String>) -> Self {
        Instance {
            schema_name: schema_name.into(),
            extents: BTreeMap::new(),
            values: BTreeMap::new(),
            oid_gen: OidGen::new(),
            index: RwLock::new(IndexCache::default()),
            mutation_log: None,
        }
    }

    /// The name of the schema this instance belongs to.
    pub fn schema_name(&self) -> &str {
        &self.schema_name
    }

    /// Insert an object with a caller-provided identity.
    ///
    /// The identity's class must match the extent it is inserted into, and the
    /// identity must not already be present.
    pub fn insert(&mut self, oid: Oid, value: Value) -> Result<()> {
        let class = oid.class().clone();
        if self.values.contains_key(&oid) {
            return Err(ModelError::DuplicateOid(oid.to_string()));
        }
        self.reindex(&oid, None, Some(&value));
        self.extents.entry(class).or_default().insert(oid.clone());
        if let Some(log) = &mut self.mutation_log {
            log.push(Mutation::Insert(oid.clone(), value.clone()));
        }
        self.values.insert(oid, value);
        Ok(())
    }

    /// Insert many objects of one class at once, paying the cache
    /// invalidation and per-class extent lookup once for the whole batch
    /// instead of once per object. Identities must belong to `class`. On a
    /// duplicate identity (against the instance or within the batch) nothing
    /// is inserted. Snapshot restore decodes through this path.
    pub fn bulk_insert(&mut self, class: &ClassName, objects: Vec<(Oid, Value)>) -> Result<()> {
        if objects.is_empty() {
            return Ok(());
        }
        let mut batch_seen = BTreeSet::new();
        for (oid, _) in &objects {
            debug_assert_eq!(oid.class(), class, "bulk_insert identity of foreign class");
            if self.values.contains_key(oid) || !batch_seen.insert(oid.clone()) {
                return Err(ModelError::DuplicateOid(oid.to_string()));
            }
        }
        self.cache_write().invalidate_class(class);
        let extent = self.extents.entry(class.clone()).or_default();
        for (oid, value) in objects {
            extent.insert(oid.clone());
            if let Some(log) = &mut self.mutation_log {
                log.push(Mutation::Insert(oid.clone(), value.clone()));
            }
            self.values.insert(oid, value);
        }
        Ok(())
    }

    /// Declare a class, giving it an (empty) extent if it has none yet.
    /// Restoring a persisted instance uses this so a class whose objects were
    /// all removed round-trips to an equal instance.
    pub fn ensure_class(&mut self, class: &ClassName) {
        self.extents.entry(class.clone()).or_default();
    }

    /// Insert an object with a freshly generated identity, returning it.
    pub fn insert_fresh(&mut self, class: &ClassName, value: Value) -> Oid {
        let oid = self.oid_gen.fresh(class);
        self.reindex(&oid, None, Some(&value));
        self.extents
            .entry(class.clone())
            .or_default()
            .insert(oid.clone());
        if let Some(log) = &mut self.mutation_log {
            log.push(Mutation::Insert(oid.clone(), value.clone()));
        }
        self.values.insert(oid.clone(), value);
        oid
    }

    /// Replace the value of an existing object.
    pub fn update(&mut self, oid: &Oid, value: Value) -> Result<()> {
        let Some(old) = self.values.get(oid) else {
            return Err(ModelError::DanglingOid(oid.to_string()));
        };
        self.reindex(oid, Some(old), Some(&value));
        if let Some(log) = &mut self.mutation_log {
            log.push(Mutation::Update(oid.clone(), value.clone()));
        }
        self.values.insert(oid.clone(), value);
        Ok(())
    }

    /// The value associated with an identity.
    pub fn value(&self, oid: &Oid) -> Option<&Value> {
        self.values.get(oid)
    }

    /// The value associated with an identity, or an error if it is unknown.
    pub fn value_or_err(&self, oid: &Oid) -> Result<&Value> {
        self.values
            .get(oid)
            .ok_or_else(|| ModelError::DanglingOid(oid.to_string()))
    }

    /// Whether the identity is present in this instance.
    pub fn contains(&self, oid: &Oid) -> bool {
        self.values.contains_key(oid)
    }

    /// The extent (set of identities) of a class; empty if the class has no
    /// objects.
    pub fn extent(&self, class: &ClassName) -> impl Iterator<Item = &Oid> {
        self.extents.get(class).into_iter().flatten()
    }

    /// The number of objects in a class's extent.
    pub fn extent_size(&self, class: &ClassName) -> usize {
        self.extents.get(class).map(BTreeSet::len).unwrap_or(0)
    }

    /// Iterate over `(oid, value)` pairs of a class's extent.
    pub fn objects(&self, class: &ClassName) -> impl Iterator<Item = (&Oid, &Value)> {
        self.extent(class).map(move |oid| {
            let value = self.values.get(oid).expect("extent oid always has a value");
            (oid, value)
        })
    }

    /// Iterate over every `(oid, value)` pair in the instance.
    pub fn all_objects(&self) -> impl Iterator<Item = (&Oid, &Value)> {
        self.values.iter()
    }

    /// The classes that have a (possibly empty) extent recorded.
    pub fn populated_classes(&self) -> Vec<ClassName> {
        self.extents.keys().cloned().collect()
    }

    /// Total number of objects across all classes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the instance holds no objects.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Remove an object from the instance. Dangling references left behind are
    /// detected by [`validate::check_instance`](crate::validate::check_instance).
    pub fn remove(&mut self, oid: &Oid) -> Option<Value> {
        if let Some(ext) = self.extents.get_mut(oid.class()) {
            ext.remove(oid);
        }
        let removed = self.values.remove(oid);
        if let Some(old) = &removed {
            self.reindex(oid, Some(old), None);
            if let Some(log) = &mut self.mutation_log {
                log.push(Mutation::Remove(oid.clone()));
            }
        }
        removed
    }

    /// Look up an object of `class` by a projected field value, e.g. find the
    /// `CountryE` whose `name` is `"France"`. Linear scan; convenience for
    /// tests, examples and adapters (the hot path is [`lookup_by_attr`],
    /// which goes through the attribute index).
    ///
    /// [`lookup_by_attr`]: Instance::lookup_by_attr
    pub fn find_by_field(&self, class: &ClassName, field: &str, value: &Value) -> Option<&Oid> {
        self.objects(class)
            .find(|(_, v)| v.project(field) == Some(value))
            .map(|(oid, _)| oid)
    }

    /// All identities of `class` whose record value has attribute `attr` equal
    /// to `value`, answered through the lazily built attribute index (see
    /// [`crate::index`]). The first probe of a `(class, attr)` pair builds the
    /// index in one pass over the extent; subsequent probes are hash lookups.
    pub fn lookup_by_attr(&self, class: &ClassName, attr: &str, value: &Value) -> Vec<Oid> {
        self.ensure_attr_index(class, attr);
        let cache = self.cache_read();
        let index = cache
            .get(class, attr)
            .expect("ensure_attr_index always installs the index");
        index
            .candidates(value_hash(value))
            .iter()
            // Hash buckets are candidates only: verify against the live value.
            .filter(|oid| {
                self.values
                    .get(oid)
                    .and_then(|v| v.project(attr))
                    .is_some_and(|v| v == value)
            })
            .cloned()
            .collect()
    }

    /// Cheap per-attribute statistics for cost-based planning: the number of
    /// objects of `class` that carry attribute `attr` at all, and the
    /// (approximate) number of distinct values it takes. Built from the same
    /// lazy attribute index the join machinery probes, so asking for the
    /// statistics of an attribute that will later be joined on costs nothing
    /// extra — the one pass over the extent is shared.
    pub fn attr_stats(&self, class: &ClassName, attr: &str) -> AttrStats {
        self.ensure_attr_index(class, attr);
        let cache = self.cache_read();
        let index = cache
            .get(class, attr)
            .expect("ensure_attr_index always installs the index");
        AttrStats {
            entries: index.len(),
            distinct: index.distinct(),
        }
    }

    /// Approximate number of distinct values attribute `attr` takes across
    /// the extent of `class` (see [`attr_stats`](Instance::attr_stats)).
    pub fn attr_ndv(&self, class: &ClassName, attr: &str) -> usize {
        self.attr_stats(class, attr).distinct
    }

    /// The equi-depth histogram of attribute `attr` over the extent of
    /// `class` (see [`crate::histogram`]), built lazily on first request and
    /// cached alongside the attribute indexes — any mutation of the class
    /// invalidates both together. Returns a clone of the cached histogram
    /// (at most ~2× [`histogram::DEFAULT_BUCKETS`](crate::histogram::DEFAULT_BUCKETS)
    /// buckets, so the copy is cheap); callers that estimate repeatedly
    /// should memoise on their side, as `cpl`'s planner statistics do.
    /// Above [`SAMPLE_THRESHOLD`] rows the build switches to deterministic
    /// reservoir sampling with exact heavy-hitter counts (see
    /// [`AttrHistogram::build_sampled`]), capping build cost on very large
    /// extents.
    pub fn attr_histogram(&self, class: &ClassName, attr: &str) -> AttrHistogram {
        if let Some(h) = self.cache_read().get_histogram(class, attr) {
            return h.clone();
        }
        let built = if self.extent_size(class) > SAMPLE_THRESHOLD {
            AttrHistogram::build_sampled(|| {
                self.objects(class)
                    .filter_map(|(_, value)| value.project(attr).cloned())
            })
        } else {
            AttrHistogram::build(
                self.objects(class)
                    .filter_map(|(_, value)| value.project(attr).cloned()),
            )
        };
        self.cache_write()
            .insert_histogram(class.clone(), attr.to_string(), built.clone());
        built
    }

    /// Whether a histogram for `(class, attr)` is currently cached. Exposed
    /// for the stale-histogram invalidation tests.
    pub fn has_attr_histogram(&self, class: &ClassName, attr: &str) -> bool {
        self.cache_read().contains_histogram(class, attr)
    }

    /// The columnar projection of attribute `attr` over the extent of
    /// `class` (see [`crate::column`] for the storage layout), built lazily
    /// on first request and cached alongside the attribute indexes — any
    /// mutation of the class invalidates all of them together. Row `i` of
    /// the column corresponds to row `i` of
    /// [`class_row_index`](Instance::class_row_index).
    pub fn attr_column(&self, class: &ClassName, attr: &str) -> Arc<AttrColumn> {
        if let Some(col) = self.cache_read().get_column(class, attr) {
            return col.clone();
        }
        let rows = self.class_row_index(class);
        let mut cache = self.cache_write();
        // Another reader may have built the column while we waited for the
        // write lock; keep the first build so Arc identity stays stable.
        if let Some(col) = cache.get_column(class, attr) {
            return col.clone();
        }
        let values: Vec<Option<&Value>> = rows
            .iter()
            .map(|oid| {
                self.values
                    .get(oid)
                    .expect("extent oid always has a value")
                    .project(attr)
            })
            .collect();
        let built = Arc::new(AttrColumn::build(&values, cache.interner_mut()));
        cache.insert_column(class.clone(), attr.to_string(), built.clone());
        built
    }

    /// The extent of `class` as a shared, positionally indexable vector in
    /// extent (ascending identity) order — the row ids of the class's
    /// columns. Cached with the columns and invalidated with them.
    pub fn class_row_index(&self, class: &ClassName) -> Arc<Vec<Oid>> {
        if let Some(rows) = self.cache_read().get_row_index(class) {
            return rows.clone();
        }
        let rows = Arc::new(self.extent(class).cloned().collect::<Vec<_>>());
        self.cache_write()
            .insert_row_index(class.clone(), rows.clone());
        rows
    }

    /// Whether a column for `(class, attr)` is currently cached. Exposed for
    /// the invalidation tests.
    pub fn has_attr_column(&self, class: &ClassName, attr: &str) -> bool {
        self.cache_read().contains_column(class, attr)
    }

    /// A snapshot of the columnar string dictionary (code → string). O(1)
    /// after the first call following an append.
    pub fn dict_strings(&self) -> Arc<Vec<Arc<str>>> {
        self.cache_write().interner_mut().snapshot()
    }

    /// The dictionary code of `s`, if some built column interned it.
    pub fn dict_code(&self, s: &str) -> Option<u32> {
        self.cache_read().interner().code_of(s)
    }

    /// Whether a probe for `(class, attr)` would hit an already-built index.
    /// Exposed for tests and diagnostics.
    pub fn has_attr_index(&self, class: &ClassName, attr: &str) -> bool {
        self.cache_read().contains(class, attr)
    }

    /// Number of `(class, attribute)` indexes currently built.
    pub fn attr_index_count(&self) -> usize {
        self.cache_read().len()
    }

    /// Read access to the derived-data cache. Poisoning is impossible in
    /// practice (no panic path holds the guard), but recover into the inner
    /// value rather than propagating: the cache is derived data and is always
    /// safe to read or rebuild.
    fn cache_read(&self) -> std::sync::RwLockReadGuard<'_, IndexCache> {
        self.index.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Write access to the derived-data cache (see [`cache_read`](Self::cache_read)).
    fn cache_write(&self) -> std::sync::RwLockWriteGuard<'_, IndexCache> {
        self.index.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Maintain the class's built attribute indexes across a single-object
    /// mutation instead of dropping them: remove the object's old attribute
    /// entries, add the new ones. Buckets stay in ascending identity order,
    /// so a maintained index answers probes bit-identically to a fresh
    /// extent-order rebuild — the property the standing
    /// `MaterializedPipeline`'s per-batch delta joins rely on to stay
    /// O(batch) instead of O(extent). Histograms, columns, and row indexes
    /// *are* still invalidated: they are planner statistics and batch
    /// projections, rebuilt lazily where stale estimates cannot change
    /// results.
    fn reindex(&self, oid: &Oid, old: Option<&Value>, new: Option<&Value>) {
        let mut cache = self.cache_write();
        cache.invalidate_stats(oid.class());
        let Some(indexes) = cache.indexes_mut(oid.class()) else {
            return;
        };
        for (attr, index) in indexes.iter_mut() {
            let old_value = old.and_then(|v| v.project(attr));
            let new_value = new.and_then(|v| v.project(attr));
            if old_value == new_value {
                continue;
            }
            if let Some(value) = old_value {
                index.remove_entry(value_hash(value), oid);
            }
            if let Some(value) = new_value {
                index.insert_sorted(value_hash(value), oid.clone());
            }
        }
    }

    /// Install a pre-built attribute index for `(class, attr)`, as the
    /// streaming ingest path does chunk-at-a-time instead of re-scanning the
    /// whole extent afterwards. The caller must have built the index exactly
    /// as the lazy path would: one `add(value_hash(v), oid)` per object
    /// carrying the attribute, in extent (ascending-identity) order — probes
    /// then answer bit-identically to a lazy rebuild. Any later mutation of
    /// the class maintains or invalidates it like a lazily built one.
    pub fn install_attr_index(&mut self, class: &ClassName, attr: &str, index: AttrIndex) {
        self.cache_write()
            .insert(class.clone(), attr.to_string(), index);
    }

    /// Install a pre-built equi-depth histogram for `(class, attr)` (see
    /// [`attr_histogram`](Instance::attr_histogram)). The caller must apply
    /// the same exact-vs-sampled build rule the lazy path uses
    /// ([`AttrHistogram::build_sampled`] above `SAMPLE_THRESHOLD` rows,
    /// [`AttrHistogram::build`] otherwise) so planner estimates cannot
    /// depend on which path populated the cache.
    pub fn install_attr_histogram(
        &mut self,
        class: &ClassName,
        attr: &str,
        histogram: AttrHistogram,
    ) {
        self.cache_write()
            .insert_histogram(class.clone(), attr.to_string(), histogram);
    }

    fn ensure_attr_index(&self, class: &ClassName, attr: &str) {
        if self.cache_read().contains(class, attr) {
            return;
        }
        let mut built = AttrIndex::default();
        for (oid, value) in self.objects(class) {
            if let Some(attr_value) = value.project(attr) {
                built.add(value_hash(attr_value), oid.clone());
            }
        }
        self.cache_write()
            .insert(class.clone(), attr.to_string(), built);
    }

    /// Merge another instance into this one. Identities must be disjoint;
    /// when they may overlap, use [`merge_keyed`](Instance::merge_keyed).
    pub fn absorb(&mut self, other: &Instance) -> Result<()> {
        for (oid, value) in other.all_objects() {
            self.insert(oid.clone(), value.clone())?;
        }
        Ok(())
    }

    /// A fresh identity of `class` that is guaranteed not to collide with any
    /// identity already present (identities inserted with explicit ids are
    /// not known to the generator, so skip past them).
    fn fresh_noncolliding(&mut self, class: &ClassName) -> Oid {
        loop {
            let oid = self.oid_gen.fresh(class);
            if !self.values.contains_key(&oid) {
                return oid;
            }
        }
    }

    /// Merge another instance into this one *by key*: objects of keyed
    /// classes that share a key value with an existing object are merged into
    /// it (field by field, erroring on conflicting fields), and every other
    /// object is inserted under a fresh identity. Object references inside
    /// the incoming values are rewritten accordingly. Returns the mapping
    /// from `other`'s identities to their identities in `self`.
    ///
    /// This is the instance-level counterpart of integrating independently
    /// produced target fragments (Example 1.1): two transformations that key
    /// `CityT` objects the same way produce fragments that merge cleanly even
    /// though their identity spaces overlap.
    pub fn merge_keyed(
        &mut self,
        other: &Instance,
        keys: &crate::keys::KeySpec,
    ) -> Result<BTreeMap<Oid, Oid>> {
        // Phase 1: decide the identity mapping for every incoming object.
        let mut mapping: BTreeMap<Oid, Oid> = BTreeMap::new();
        let mut key_indexes: BTreeMap<ClassName, BTreeMap<Value, Oid>> = BTreeMap::new();
        for class in other.populated_classes() {
            if keys.has_key(&class) {
                key_indexes.insert(class.clone(), keys.index(&class, self)?);
            }
        }
        let mut pending: BTreeMap<(ClassName, Value), Oid> = BTreeMap::new();
        for (oid, _) in other.all_objects() {
            let class = oid.class();
            // A keyed class whose key cannot be evaluated is an error: falling
            // back to a fresh identity would let the merged instance violate
            // its own key specification.
            let key = match key_indexes.contains_key(class) {
                true => Some(keys.eval(oid, other)?),
                false => None,
            };
            let target = match key {
                Some(key) => {
                    if let Some(existing) = key_indexes[class].get(&key) {
                        existing.clone()
                    } else {
                        // Incoming objects sharing a key merge with each
                        // other even when the key is new to `self`.
                        pending
                            .entry((class.clone(), key))
                            .or_insert_with(|| self.fresh_noncolliding(class))
                            .clone()
                    }
                }
                None => self.fresh_noncolliding(class),
            };
            mapping.insert(oid.clone(), target);
        }
        // Phase 2: insert or merge the values with references rewritten.
        for (oid, value) in other.all_objects() {
            let rewritten =
                value.map_oids(&mut |o| mapping.get(o).cloned().unwrap_or_else(|| o.clone()));
            let target = mapping[oid].clone();
            match self.value(&target) {
                None => self.insert(target, rewritten)?,
                Some(existing) => {
                    let merged = existing.merge_records(&rewritten).ok_or_else(|| {
                        ModelError::Invalid(format!(
                            "keyed merge: objects {oid} and {target} share a key but disagree \
                             on a field"
                        ))
                    })?;
                    self.update(&target, merged)?;
                }
            }
        }
        Ok(mapping)
    }

    /// Total number of value-tree nodes stored; a rough size metric used by
    /// the benchmark harness.
    pub fn size_nodes(&self) -> usize {
        self.values.values().map(Value::size).sum()
    }

    // -----------------------------------------------------------------------
    // Mutation logging and durability support.
    // -----------------------------------------------------------------------

    /// Start recording every [`insert`](Self::insert) /
    /// [`insert_fresh`](Self::insert_fresh) / [`update`](Self::update) /
    /// [`remove`](Self::remove) into an in-memory [`Mutation`] log. The
    /// persistence layer drains the log with
    /// [`take_mutation_log`](Self::take_mutation_log) to journal each batch of
    /// applied changes. Idempotent; an already-active log keeps its entries.
    pub fn begin_mutation_log(&mut self) {
        if self.mutation_log.is_none() {
            self.mutation_log = Some(Vec::new());
        }
    }

    /// Drain the recorded mutations, leaving logging active. Returns an empty
    /// vector when logging was never started.
    pub fn take_mutation_log(&mut self) -> Vec<Mutation> {
        match &mut self.mutation_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Stop recording and return any remaining entries.
    pub fn end_mutation_log(&mut self) -> Vec<Mutation> {
        self.mutation_log.take().unwrap_or_default()
    }

    /// Whether a mutation log is currently recording.
    pub fn is_logging_mutations(&self) -> bool {
        self.mutation_log.is_some()
    }

    /// The fresh-identity counter of `class` (see [`OidGen::count`]).
    pub fn oid_counter(&self, class: &ClassName) -> u64 {
        self.oid_gen.count(class)
    }

    /// Iterate over all per-class fresh-identity counters, for persistence
    /// snapshots: [`PartialEq`] on instances includes the generator, so a
    /// bit-identical restore must reproduce these exactly.
    pub fn oid_counters(&self) -> impl Iterator<Item = (&ClassName, u64)> {
        self.oid_gen.counters()
    }

    /// Raise the fresh-identity counter of `class` to at least `count`
    /// (see [`OidGen::restore_count`]). Used during recovery so that
    /// post-recovery [`insert_fresh`](Self::insert_fresh) calls mint the same
    /// identities an uncrashed run would.
    pub fn restore_oid_counter(&mut self, class: &ClassName, count: u64) {
        self.oid_gen.restore_count(class, count);
    }

    /// Lower the fresh-identity counter of `class` back to `count`, undoing
    /// mints whose objects have been removed again (see
    /// [`OidGen::rewind_count`] for the safety contract). Batch reverts use
    /// this so a rejected batch leaves the instance — generator state
    /// included — bit-identical to the pre-batch state.
    pub fn rewind_oid_counter(&mut self, class: &ClassName, count: u64) {
        self.oid_gen.rewind_count(class, count);
    }

    /// Compare two instances and describe the *first divergence* in
    /// human-readable terms (schema name, class, oid, attribute), or `None`
    /// when the instances are equal. Recovery and determinism tests use this
    /// so a failure says *where* two instances differ instead of just
    /// `assert!(a == b)`.
    pub fn deep_eq_report(&self, other: &Instance) -> Option<String> {
        fn brief(value: &Value) -> String {
            let mut s = format!("{value:?}");
            if s.len() > 120 {
                s.truncate(117);
                s.push_str("...");
            }
            s
        }
        if self.schema_name != other.schema_name {
            return Some(format!(
                "schema name differs: left `{}`, right `{}`",
                self.schema_name, other.schema_name
            ));
        }
        // Extents: first class whose identity sets differ.
        let classes: BTreeSet<&ClassName> =
            self.extents.keys().chain(other.extents.keys()).collect();
        for class in &classes {
            let left = self.extents.get(*class).cloned().unwrap_or_default();
            let right = other.extents.get(*class).cloned().unwrap_or_default();
            if let Some(oid) = left.difference(&right).next() {
                return Some(format!(
                    "class `{class}`: {oid} present in left only \
                     (left extent {}, right extent {})",
                    left.len(),
                    right.len()
                ));
            }
            if let Some(oid) = right.difference(&left).next() {
                return Some(format!(
                    "class `{class}`: {oid} present in right only \
                     (left extent {}, right extent {})",
                    left.len(),
                    right.len()
                ));
            }
        }
        // Values: first object whose value differs, drilled down to the first
        // differing record attribute where possible.
        for (oid, left) in &self.values {
            let Some(right) = other.values.get(oid) else {
                return Some(format!("{oid}: value present in left only"));
            };
            if left == right {
                continue;
            }
            if let (Value::Record(l), Value::Record(r)) = (left, right) {
                let labels: BTreeSet<&crate::types::Label> = l.keys().chain(r.keys()).collect();
                for label in labels {
                    match (l.get(label), r.get(label)) {
                        (Some(a), Some(b)) if a == b => {}
                        (Some(a), Some(b)) => {
                            return Some(format!(
                                "{oid}.{label}: left {}, right {}",
                                brief(a),
                                brief(b)
                            ));
                        }
                        (Some(a), None) => {
                            return Some(format!(
                                "{oid}.{label}: left {}, right missing",
                                brief(a)
                            ));
                        }
                        (None, Some(b)) => {
                            return Some(format!(
                                "{oid}.{label}: left missing, right {}",
                                brief(b)
                            ));
                        }
                        (None, None) => unreachable!("label drawn from one of the records"),
                    }
                }
            }
            return Some(format!(
                "{oid}: left {}, right {}",
                brief(left),
                brief(right)
            ));
        }
        for oid in other.values.keys() {
            if !self.values.contains_key(oid) {
                return Some(format!("{oid}: value present in right only"));
            }
        }
        // Fresh-identity counters (part of instance equality).
        let counter_classes: BTreeSet<&ClassName> = self
            .oid_gen
            .counters()
            .map(|(c, _)| c)
            .chain(other.oid_gen.counters().map(|(c, _)| c))
            .collect();
        for class in counter_classes {
            let (l, r) = (self.oid_gen.count(class), other.oid_gen.count(class));
            if l != r {
                return Some(format!(
                    "oid counter for `{class}` differs: left {l}, right {r}"
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClassName;

    fn city(name: &str, capital: bool, country: &Oid) -> Value {
        Value::record([
            ("name", Value::str(name)),
            ("is_capital", Value::bool(capital)),
            ("country", Value::oid(country.clone())),
        ])
    }

    /// Build (a fragment of) the Example 2.2 instance.
    fn euro_instance() -> (Instance, Oid, Oid) {
        let mut inst = Instance::new("euro");
        let country_class = ClassName::new("CountryE");
        let city_class = ClassName::new("CityE");
        let uk = inst.insert_fresh(
            &country_class,
            Value::record([
                ("name", Value::str("United Kingdom")),
                ("language", Value::str("English")),
                ("currency", Value::str("sterling")),
            ]),
        );
        let fr = inst.insert_fresh(
            &country_class,
            Value::record([
                ("name", Value::str("France")),
                ("language", Value::str("French")),
                ("currency", Value::str("franc")),
            ]),
        );
        inst.insert_fresh(&city_class, city("London", true, &uk));
        inst.insert_fresh(&city_class, city("Manchester", false, &uk));
        inst.insert_fresh(&city_class, city("Paris", true, &fr));
        (inst, uk, fr)
    }

    #[test]
    fn insert_and_lookup() {
        let (inst, uk, _) = euro_instance();
        assert_eq!(inst.schema_name(), "euro");
        assert_eq!(inst.len(), 5);
        assert!(!inst.is_empty());
        assert_eq!(inst.extent_size(&ClassName::new("CityE")), 3);
        assert_eq!(inst.extent_size(&ClassName::new("CountryE")), 2);
        assert_eq!(inst.extent_size(&ClassName::new("Nope")), 0);
        let uk_val = inst.value(&uk).unwrap();
        assert_eq!(uk_val.project("currency"), Some(&Value::str("sterling")));
        assert!(inst.contains(&uk));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut inst = Instance::new("euro");
        let oid = Oid::new(ClassName::new("CountryE"), 0);
        inst.insert(oid.clone(), Value::record([("name", Value::str("UK"))]))
            .unwrap();
        let err = inst
            .insert(oid, Value::record([("name", Value::str("FR"))]))
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateOid(_)));
    }

    #[test]
    fn update_value() {
        let (mut inst, uk, _) = euro_instance();
        let mut new_val = inst.value(&uk).unwrap().clone();
        if let Value::Record(ref mut fields) = new_val {
            fields.insert("currency".into(), Value::str("pound"));
        }
        inst.update(&uk, new_val).unwrap();
        assert_eq!(
            inst.value(&uk).unwrap().project("currency"),
            Some(&Value::str("pound"))
        );
        let missing = Oid::new(ClassName::new("CountryE"), 999);
        assert!(inst.update(&missing, Value::Unit).is_err());
    }

    #[test]
    fn find_by_field() {
        let (inst, _, fr) = euro_instance();
        let found = inst
            .find_by_field(&ClassName::new("CountryE"), "name", &Value::str("France"))
            .unwrap();
        assert_eq!(found, &fr);
        assert!(inst
            .find_by_field(&ClassName::new("CountryE"), "name", &Value::str("Atlantis"))
            .is_none());
    }

    #[test]
    fn objects_iterate_with_values() {
        let (inst, _, _) = euro_instance();
        let capitals: Vec<&Value> = inst
            .objects(&ClassName::new("CityE"))
            .filter(|(_, v)| v.project("is_capital") == Some(&Value::bool(true)))
            .map(|(_, v)| v.project("name").unwrap())
            .collect();
        assert_eq!(capitals.len(), 2);
    }

    #[test]
    fn remove_object() {
        let (mut inst, uk, _) = euro_instance();
        let removed = inst.remove(&uk).unwrap();
        assert_eq!(removed.project("name"), Some(&Value::str("United Kingdom")));
        assert!(!inst.contains(&uk));
        assert_eq!(inst.extent_size(&ClassName::new("CountryE")), 1);
        assert!(inst.remove(&uk).is_none());
    }

    #[test]
    fn absorb_disjoint_instances() {
        let (mut inst, _, _) = euro_instance();
        let mut other = Instance::new("us");
        other
            .insert(
                Oid::new(ClassName::new("StateA"), 0),
                Value::record([("name", Value::str("Pennsylvania"))]),
            )
            .unwrap();
        inst.absorb(&other).unwrap();
        assert_eq!(inst.extent_size(&ClassName::new("StateA")), 1);
    }

    #[test]
    fn absorb_conflicting_instances_fails() {
        let (mut inst, _, _) = euro_instance();
        let copy = inst.clone();
        assert!(inst.absorb(&copy).is_err());
    }

    #[test]
    fn attr_index_probes_and_is_lazy() {
        let (inst, _, fr) = euro_instance();
        let country = ClassName::new("CountryE");
        let city = ClassName::new("CityE");
        assert_eq!(inst.attr_index_count(), 0);
        let hits = inst.lookup_by_attr(&country, "name", &Value::str("France"));
        assert_eq!(hits, vec![fr.clone()]);
        assert!(inst.has_attr_index(&country, "name"));
        assert!(!inst.has_attr_index(&city, "name"));
        assert_eq!(inst.attr_index_count(), 1);
        // Misses come back empty, including for unindexed-but-probed values.
        assert!(inst
            .lookup_by_attr(&country, "name", &Value::str("Atlantis"))
            .is_empty());
        // Multi-hit probes return every matching identity.
        let capitals = inst.lookup_by_attr(&city, "is_capital", &Value::bool(true));
        assert_eq!(capitals.len(), 2);
        // Oid-valued attributes are indexable too (join targets).
        let fr_cities = inst.lookup_by_attr(&city, "country", &Value::oid(fr));
        assert_eq!(fr_cities.len(), 1);
    }

    #[test]
    fn attr_columns_materialize_and_are_invalidated_by_mutation() {
        let (mut inst, uk, fr) = euro_instance();
        let country = ClassName::new("CountryE");
        let rows = inst.class_row_index(&country);
        let col = inst.attr_column(&country, "name");
        assert_eq!(col.rows(), rows.len());
        assert!(inst.has_attr_column(&country, "name"));
        // Columns are shared, not rebuilt, until a mutation.
        assert!(Arc::ptr_eq(&col, &inst.attr_column(&country, "name")));
        // Every cell round-trips to the row-major projection bit-for-bit.
        let dict = inst.dict_strings();
        for (i, oid) in rows.iter().enumerate() {
            let expected = inst.value(oid).unwrap().project("name").cloned();
            assert_eq!(col.value_at(i, &dict), expected, "row {i}");
        }
        // String cells are dictionary codes into the instance-wide interner.
        let uk_name = inst.value(&uk).unwrap().project("name").unwrap().clone();
        let Value::Str(uk_name) = uk_name else {
            panic!("name is a string");
        };
        assert!(inst.dict_code(&uk_name).is_some());
        // Mutating the class drops its columns and row index, not the dict.
        let fr_value = inst.value(&fr).unwrap().clone();
        inst.update(&fr, fr_value).unwrap();
        assert!(!inst.has_attr_column(&country, "name"));
        assert_eq!(inst.dict_code(&uk_name), Some(0));
        // The rebuilt column re-derives the same codes and values.
        let rebuilt = inst.attr_column(&country, "name");
        let dict = inst.dict_strings();
        assert_eq!(rebuilt.value_at(0, &dict), col.value_at(0, &dict));
    }

    #[test]
    fn bulk_insert_matches_per_object_inserts() {
        let class = ClassName::new("C");
        let objects: Vec<(Oid, Value)> = (0..5)
            .map(|i| {
                (
                    Oid::new(class.clone(), i),
                    Value::record([("n", Value::int(i as i64))]),
                )
            })
            .collect();
        let mut bulk = Instance::new("S");
        bulk.begin_mutation_log();
        bulk.bulk_insert(&class, objects.clone()).unwrap();
        let mut single = Instance::new("S");
        single.begin_mutation_log();
        for (oid, value) in objects.clone() {
            single.insert(oid, value).unwrap();
        }
        assert_eq!(bulk, single);
        assert_eq!(bulk.take_mutation_log(), single.take_mutation_log());
        // A duplicate anywhere in the batch inserts nothing.
        let before = bulk.clone();
        let mut batch = vec![(
            Oid::new(class.clone(), 100),
            Value::record([("n", Value::int(100))]),
        )];
        batch.push(objects[0].clone());
        assert!(bulk.bulk_insert(&class, batch).is_err());
        assert_eq!(bulk, before);
        // Bulk inserts invalidate the derived caches like any mutation.
        assert!(!bulk.is_empty());
    }

    #[test]
    fn attr_index_maintained_across_mutations() {
        let (mut inst, uk, _) = euro_instance();
        let country = ClassName::new("CountryE");
        assert_eq!(
            inst.lookup_by_attr(&country, "currency", &Value::str("sterling"))
                .len(),
            1
        );
        assert!(inst.has_attr_index(&country, "currency"));
        // An update keeps the built index and moves the entry; the stats
        // caches (histograms/columns) still invalidate wholesale.
        inst.attr_histogram(&country, "currency");
        assert!(inst.has_attr_histogram(&country, "currency"));
        let mut v = inst.value(&uk).unwrap().clone();
        if let Value::Record(ref mut fields) = v {
            fields.insert("currency".into(), Value::str("pound"));
        }
        inst.update(&uk, v).unwrap();
        assert!(inst.has_attr_index(&country, "currency"));
        assert!(!inst.has_attr_histogram(&country, "currency"));
        assert!(inst
            .lookup_by_attr(&country, "currency", &Value::str("sterling"))
            .is_empty());
        assert_eq!(
            inst.lookup_by_attr(&country, "currency", &Value::str("pound")),
            vec![uk.clone()]
        );
        // Inserts and removes adjust the maintained entries in place too.
        let fresh = inst.insert_fresh(
            &country,
            Value::record([
                ("name", Value::str("Spain")),
                ("currency", Value::str("peseta")),
            ]),
        );
        assert!(inst.has_attr_index(&country, "currency"));
        assert_eq!(
            inst.lookup_by_attr(&country, "currency", &Value::str("peseta")),
            vec![fresh.clone()]
        );
        inst.remove(&fresh);
        assert!(inst.has_attr_index(&country, "currency"));
        assert!(inst
            .lookup_by_attr(&country, "currency", &Value::str("peseta"))
            .is_empty());
        // The maintained index must be indistinguishable from a fresh
        // rebuild: a clone starts cold and rebuilds from scratch.
        let rebuilt = inst.clone();
        for value in ["pound", "franc", "lira", "sterling", "peseta"] {
            assert_eq!(
                inst.lookup_by_attr(&country, "currency", &Value::str(value)),
                rebuilt.lookup_by_attr(&country, "currency", &Value::str(value)),
                "maintained index diverged from a rebuild on {value:?}"
            );
        }
    }

    #[test]
    fn merge_keyed_unifies_by_key_and_renumbers_the_rest() {
        use crate::keys::{KeyExpr, KeySpec};
        let keys = KeySpec::new().with_key("CountryE", KeyExpr::path("name"));
        let (mut inst, uk, _) = euro_instance();

        // An independently built fragment whose identities collide with
        // `inst` (both number from 0): one country shared by key, one new,
        // plus an unkeyed city referencing the shared country.
        let mut other = Instance::new("euro");
        let uk2 = other.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([("name", Value::str("United Kingdom"))]),
        );
        other.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("Spain")),
                ("currency", Value::str("peseta")),
            ]),
        );
        other.insert_fresh(&ClassName::new("CityE"), city("Bristol", false, &uk2));
        assert_eq!(uk2, uk); // the collision absorb() would reject

        let mapping = inst.merge_keyed(&other, &keys).unwrap();
        // The shared key unified with the existing UK object...
        assert_eq!(mapping[&uk2], uk);
        assert_eq!(inst.extent_size(&ClassName::new("CountryE")), 3);
        // ... the new country got a fresh non-colliding identity ...
        let spain = inst
            .find_by_field(&ClassName::new("CountryE"), "name", &Value::str("Spain"))
            .unwrap();
        assert_eq!(
            inst.value(spain).unwrap().project("currency"),
            Some(&Value::str("peseta"))
        );
        // ... and the city's reference was rewritten to the unified identity.
        let bristol = inst
            .find_by_field(&ClassName::new("CityE"), "name", &Value::str("Bristol"))
            .unwrap();
        assert_eq!(
            inst.value(bristol).unwrap().project("country"),
            Some(&Value::oid(uk))
        );
    }

    #[test]
    fn merge_keyed_rejects_unevaluable_keys() {
        use crate::keys::{KeyExpr, KeySpec};
        let keys = KeySpec::new().with_key("CountryE", KeyExpr::path("name"));
        let (mut inst, _, _) = euro_instance();
        // An incoming keyed object without the key attribute cannot be merged
        // soundly: the error must propagate rather than minting a fresh,
        // key-violating identity.
        let mut other = Instance::new("euro");
        other.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([("currency", Value::str("euro"))]),
        );
        assert!(inst.merge_keyed(&other, &keys).is_err());
    }

    #[test]
    fn merge_keyed_rejects_conflicting_fields() {
        use crate::keys::{KeyExpr, KeySpec};
        let keys = KeySpec::new().with_key("CountryE", KeyExpr::path("name"));
        let (mut inst, _, _) = euro_instance();
        let mut other = Instance::new("euro");
        other.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("France")),
                ("currency", Value::str("euro")), // disagrees with "franc"
            ]),
        );
        let err = inst.merge_keyed(&other, &keys).unwrap_err();
        assert!(matches!(err, ModelError::Invalid(_)));
    }

    /// Recovery-shaped merges: fragments restored from independently crashed
    /// runs have overlapping Skolem identity spaces (each numbered from 0),
    /// emptied classes, and possibly dangling references. `merge_keyed` must
    /// unify the overlap by key, carry empty extents without phantom
    /// objects, and reject a keyed fragment whose key path dangles.
    #[test]
    fn merge_keyed_under_recovery_shaped_inputs() {
        use crate::keys::{KeyExpr, KeySpec, SkolemFactory};
        let keys = KeySpec::new().with_key("CountryE", KeyExpr::path("name"));
        let country = ClassName::new("CountryE");
        let city = ClassName::new("CityE");

        // Two fragments minted by independent Skolem factories: identity
        // spaces overlap and the key sets overlap on "France".
        let build = |names: &[&str]| {
            let mut factory = SkolemFactory::new();
            let mut frag = Instance::new("euro");
            for name in names {
                let oid = factory.mk(&country, &Value::str(*name));
                frag.insert(oid, Value::record([("name", Value::str(*name))]))
                    .unwrap();
            }
            frag
        };
        let mut merged = build(&["France", "Spain"]);
        let mut other = build(&["France", "Portugal"]);
        // An emptied class rides along (crash after its objects were removed).
        let ghost = other.insert_fresh(&city, Value::record([("name", Value::str("Ghost"))]));
        other.remove(&ghost);
        assert_eq!(other.extent_size(&city), 0);

        let mapping = merged.merge_keyed(&other, &keys).unwrap();
        assert_eq!(merged.extent_size(&country), 3, "France unified by key");
        // The overlapping key mapped onto the existing (same-numbered)
        // identity; the new key got a fresh non-colliding one.
        let france = Oid::new(country.clone(), 0);
        assert_eq!(mapping[&france], france);
        let portugal = Oid::new(country.clone(), 1);
        assert_ne!(mapping[&portugal], portugal, "colliding id renumbered");
        // The emptied class contributed no phantom objects.
        assert_eq!(merged.extent_size(&city), 0);
        // Keys remain evaluable and unique after the merge.
        keys.check(&merged).unwrap();

        // A fragment whose keyed object references a dangling identity in
        // its key path is rejected, not silently merged with a fresh
        // key-violating identity.
        let keys_by_ref = KeySpec::new().with_key("CityE", KeyExpr::path("country.name"));
        let mut broken = Instance::new("euro");
        let dangling = Oid::new(country.clone(), 77);
        broken.insert_fresh(
            &city,
            Value::record([
                ("name", Value::str("Atlantis")),
                ("country", Value::Oid(dangling)),
            ]),
        );
        let err = merged.merge_keyed(&broken, &keys_by_ref).unwrap_err();
        assert!(
            matches!(err, ModelError::DanglingOid(_)),
            "dangling key path must be rejected, got: {err}"
        );
    }

    #[test]
    fn attr_histogram_is_lazy_and_reflects_the_extent() {
        let (inst, _, _) = euro_instance();
        let city = ClassName::new("CityE");
        assert!(!inst.has_attr_histogram(&city, "is_capital"));
        let h = inst.attr_histogram(&city, "is_capital");
        assert!(inst.has_attr_histogram(&city, "is_capital"));
        assert_eq!(h.entries(), 3);
        assert_eq!(h.distinct(), 2);
        assert_eq!(h.eq_count(&Value::bool(true)), 2.0);
        assert_eq!(h.eq_count(&Value::bool(false)), 1.0);
        // A second request answers from the cache (same content).
        assert_eq!(inst.attr_histogram(&city, "is_capital"), h);
    }

    #[test]
    fn attr_histogram_of_an_empty_extent_is_empty() {
        let inst = Instance::new("euro");
        let h = inst.attr_histogram(&ClassName::new("Ghost"), "name");
        assert!(h.is_empty());
        assert_eq!(h.eq_count(&Value::str("anything")), 0.0);
    }

    #[test]
    fn attr_histogram_skips_objects_missing_the_attribute() {
        let mut inst = Instance::new("euro");
        let class = ClassName::new("CloneS");
        inst.insert_fresh(&class, Value::record([("name", Value::str("a"))]));
        inst.insert_fresh(
            &class,
            Value::record([("name", Value::str("b")), ("length", Value::int(7))]),
        );
        let h = inst.attr_histogram(&class, "length");
        assert_eq!(h.entries(), 1);
        assert_eq!(h.distinct(), 1);
        assert_eq!(h.eq_count(&Value::int(7)), 1.0);
    }

    #[test]
    fn attr_histogram_invalidated_by_class_mutation() {
        // The stale-histogram bug class: any insert/update/remove on the
        // class must drop its histograms, and the rebuilt histogram must see
        // the new data.
        let (mut inst, uk, _) = euro_instance();
        let country = ClassName::new("CountryE");
        let city = ClassName::new("CityE");
        let before = inst.attr_histogram(&country, "currency");
        assert_eq!(before.eq_count(&Value::str("sterling")), 1.0);
        assert_eq!(before.eq_count(&Value::str("peseta")), 0.0);

        // Insert into the class: histogram dropped, rebuild sees the object.
        inst.insert_fresh(
            &country,
            Value::record([
                ("name", Value::str("Spain")),
                ("currency", Value::str("peseta")),
            ]),
        );
        assert!(!inst.has_attr_histogram(&country, "currency"));
        let after_insert = inst.attr_histogram(&country, "currency");
        assert_eq!(after_insert.eq_count(&Value::str("peseta")), 1.0);

        // Update: the old value disappears from the rebuilt histogram.
        let mut v = inst.value(&uk).unwrap().clone();
        if let Value::Record(ref mut fields) = v {
            fields.insert("currency".into(), Value::str("pound"));
        }
        inst.update(&uk, v).unwrap();
        assert!(!inst.has_attr_histogram(&country, "currency"));
        let after_update = inst.attr_histogram(&country, "currency");
        assert_eq!(after_update.eq_count(&Value::str("sterling")), 0.0);
        assert_eq!(after_update.eq_count(&Value::str("pound")), 1.0);

        // Mutating one class leaves another class's histograms cached.
        let _ = inst.attr_histogram(&city, "name");
        inst.remove(&uk);
        assert!(!inst.has_attr_histogram(&country, "currency"));
        assert!(inst.has_attr_histogram(&city, "name"));
    }

    #[test]
    fn clones_do_not_inherit_the_index_cache() {
        let (inst, _, _) = euro_instance();
        inst.lookup_by_attr(&ClassName::new("CountryE"), "name", &Value::str("France"));
        assert_eq!(inst.attr_index_count(), 1);
        let copy = inst.clone();
        assert_eq!(copy.attr_index_count(), 0);
        assert_eq!(copy, inst);
    }

    /// The parallel executors rely on sharing `&Instance` across scoped
    /// threads; this pins the auto-traits at compile time.
    #[test]
    fn instance_is_send_and_sync_for_scoped_thread_sharing() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Instance>();
        assert_send_sync::<Value>();
        assert_send_sync::<Oid>();
    }

    /// Concurrent probes of a shared instance build the lazy index and
    /// histogram caches safely and agree with a sequential probe.
    #[test]
    fn concurrent_reads_share_the_lazy_caches() {
        let (inst, _, fr) = euro_instance();
        let country = ClassName::new("CountryE");
        let city = ClassName::new("CityE");
        let expected = inst.lookup_by_attr(&country, "name", &Value::str("France"));
        let shared = &inst;
        let (country, city) = (&country, &city);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                handles.push(scope.spawn(move || {
                    let hits = shared.lookup_by_attr(country, "name", &Value::str("France"));
                    let stats = shared.attr_stats(city, "is_capital");
                    let hist = shared.attr_histogram(city, "is_capital");
                    (hits, stats, hist)
                }));
            }
            for handle in handles {
                let (hits, stats, hist) = handle.join().expect("reader thread panicked");
                assert_eq!(hits, expected);
                assert_eq!(stats.entries, 3);
                assert_eq!(hist.eq_count(&Value::bool(true)), 2.0);
            }
        });
        assert_eq!(expected, vec![fr]);
    }

    #[test]
    fn mutation_log_records_applied_changes_in_order() {
        let (mut inst, uk, _) = euro_instance();
        assert!(!inst.is_logging_mutations());
        // Mutations before the log starts are not recorded.
        inst.begin_mutation_log();
        assert!(inst.is_logging_mutations());
        assert!(inst.take_mutation_log().is_empty());

        let country = ClassName::new("CountryE");
        let spain = inst.insert_fresh(&country, Value::record([("name", Value::str("Spain"))]));
        let explicit = Oid::new(ClassName::new("StateA"), 7);
        inst.insert(
            explicit.clone(),
            Value::record([("name", Value::str("PA"))]),
        )
        .unwrap();
        inst.update(&spain, Value::record([("name", Value::str("España"))]))
            .unwrap();
        inst.remove(&uk).unwrap();
        // A failed mutation records nothing.
        assert!(inst.update(&uk, Value::Unit).is_err());
        assert!(inst.remove(&uk).is_none());

        let log = inst.take_mutation_log();
        assert_eq!(
            log,
            vec![
                Mutation::Insert(
                    spain.clone(),
                    Value::record([("name", Value::str("Spain"))])
                ),
                Mutation::Insert(explicit, Value::record([("name", Value::str("PA"))])),
                Mutation::Update(spain, Value::record([("name", Value::str("España"))])),
                Mutation::Remove(uk),
            ]
        );
        // Draining keeps the log active; ending it stops recording.
        assert!(inst.is_logging_mutations());
        let leftover = inst.end_mutation_log();
        assert!(leftover.is_empty());
        assert!(!inst.is_logging_mutations());
        // Clones never inherit an active log.
        let mut logged = Instance::new("euro");
        logged.begin_mutation_log();
        assert!(!logged.clone().is_logging_mutations());
    }

    #[test]
    fn replaying_a_mutation_log_reproduces_the_instance() {
        let (mut inst, uk, _) = euro_instance();
        let before = inst.clone();
        inst.begin_mutation_log();
        let country = ClassName::new("CountryE");
        inst.insert_fresh(&country, Value::record([("name", Value::str("Spain"))]));
        inst.remove(&uk);
        let log = inst.end_mutation_log();

        let mut replayed = before;
        for m in log {
            match m {
                Mutation::Insert(oid, value) => replayed.insert(oid, value).unwrap(),
                Mutation::Update(oid, value) => replayed.update(&oid, value).unwrap(),
                Mutation::Remove(oid) => {
                    replayed.remove(&oid);
                }
            }
        }
        // Replay restores extents and values; fresh-identity counters are
        // restored separately (explicit-id inserts bypass the generator).
        for (class, n) in inst.oid_counters() {
            replayed.restore_oid_counter(class, n);
        }
        assert_eq!(replayed, inst);
        assert_eq!(replayed.deep_eq_report(&inst), None);
    }

    #[test]
    fn deep_eq_report_finds_the_first_divergence() {
        let (inst, uk, _) = euro_instance();
        assert_eq!(inst.deep_eq_report(&inst.clone()), None);

        // Schema name.
        let other = Instance::new("us");
        let report = inst.deep_eq_report(&other).unwrap();
        assert!(report.contains("schema name"), "{report}");

        // Extent membership.
        let mut missing = inst.clone();
        missing.remove(&uk);
        let report = inst.deep_eq_report(&missing).unwrap();
        assert!(report.contains("CountryE"), "{report}");
        assert!(report.contains("left only"), "{report}");
        let report = missing.deep_eq_report(&inst).unwrap();
        assert!(report.contains("right only"), "{report}");

        // Attribute-level divergence names class, oid and attribute.
        let mut edited = inst.clone();
        let mut v = edited.value(&uk).unwrap().clone();
        if let Value::Record(ref mut fields) = v {
            fields.insert("currency".into(), Value::str("pound"));
        }
        edited.update(&uk, v).unwrap();
        let report = inst.deep_eq_report(&edited).unwrap();
        assert!(report.contains(&uk.to_string()), "{report}");
        assert!(report.contains("currency"), "{report}");
        assert!(report.contains("sterling"), "{report}");
        assert!(report.contains("pound"), "{report}");

        // Oid-counter divergence (same objects, different generator state).
        let mut ahead = inst.clone();
        ahead.restore_oid_counter(&ClassName::new("CityE"), 9);
        let report = inst.deep_eq_report(&ahead).unwrap();
        assert!(report.contains("oid counter"), "{report}");
        assert!(report.contains("CityE"), "{report}");
    }

    #[test]
    fn populated_classes_and_size() {
        let (inst, _, _) = euro_instance();
        assert_eq!(
            inst.populated_classes(),
            vec![ClassName::new("CityE"), ClassName::new("CountryE")]
        );
        assert!(inst.size_nodes() > inst.len());
    }
}
