//! Normalisation of WOL transformation programs (Section 5).
//!
//! "A transformation clause in normal form completely defines an insert into
//! the target database in terms of the source database only. That is, a normal
//! form clause will contain no target classes in its body, and will completely
//! and unambiguously determine some object of the target database in its head.
//! A transformation program in which all the transformation clauses are in
//! normal form can easily be implemented in a single pass."
//!
//! The normaliser performs the unify/unfold rewriting the paper describes:
//!
//! 1. every transformation clause's head is analysed into partial object
//!    descriptions ([`crate::headform`]);
//! 2. target-class atoms in clause bodies are *unfolded* against the normal
//!    form clauses of the classes they mention (in topological order of the
//!    target-class dependency graph; cyclic programs are rejected, which is
//!    Morphase's syntactic non-recursion restriction);
//! 3. each description's identity is resolved to a Skolem key, using explicit
//!    `Mk_C` equations, the key constraints of the target schema
//!    (Section 4.1), or the identity inherited through unfolding;
//! 4. when key constraints are *omitted*, the normaliser must instead consider
//!    every combination of partial descriptions that might describe the same
//!    object — which makes the size of the normal form program exponential in
//!    the number of partial clauses, exactly the behaviour reported in the
//!    paper's evaluation (Section 6);
//! 5. source constraints are used to simplify the resulting clause bodies and
//!    prune unsatisfiable clauses ([`crate::optimize`], Section 4.2).

use std::collections::{BTreeMap, BTreeSet};

use wol_lang::ast::{Atom, Clause, SkolemArgs, Term, Var};
use wol_lang::program::Program;
use wol_lang::typecheck::check_clause_types;
use wol_model::{ClassName, Instance, Label, SkolemFactory, Value};

use crate::constraints::{extract_merge_keys, extract_object_keys, ObjectKey};
use crate::env::{eval_skolem_key, eval_term, match_body, Bindings, Databases};
use crate::error::EngineError;
use crate::headform::{analyze_head, HeadObject};
use crate::optimize::{self, SourceKeys};
use crate::Result;

/// A transformation clause in normal form: an insert of one object of a target
/// class, defined purely in terms of the source databases.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NormalClause {
    /// The target class of the inserted object.
    pub class: ClassName,
    /// The Skolem key identifying the object, as terms over body variables.
    pub key: SkolemArgs,
    /// Attribute terms over body variables (and Skolem terms for references to
    /// other target objects).
    pub attrs: BTreeMap<Label, Term>,
    /// The body: atoms over source classes only.
    pub body: Vec<Atom>,
    /// Whether this clause *creates* objects (its originating head asserted
    /// membership) or only contributes attributes to objects created elsewhere.
    pub creates: bool,
    /// Labels of the original clauses this normal clause derives from.
    pub provenance: Vec<String>,
}

impl NormalClause {
    /// Size metric (atoms + attribute terms), used by the benchmark harness to
    /// report normal-form program size.
    pub fn size(&self) -> usize {
        self.body.iter().map(Atom::size).sum::<usize>()
            + self.attrs.values().map(Term::size).sum::<usize>()
            + self.key.terms().iter().map(|t| t.size()).sum::<usize>()
    }

    /// Render the clause in WOL concrete syntax (for reports and debugging).
    pub fn render(&self) -> String {
        let object = Term::Skolem(self.class.clone(), self.key.clone());
        let mut head_atoms = vec![Atom::Member(object.clone(), self.class.clone())];
        for (label, term) in &self.attrs {
            head_atoms.push(Atom::Eq(object.clone().proj(label.clone()), term.clone()));
        }
        let clause = Clause::new(head_atoms, self.body.clone());
        wol_lang::render_clause(&clause)
    }
}

/// A normalised transformation program.
#[derive(Clone, Debug, Default)]
pub struct NormalProgram {
    /// The normal-form clauses.
    pub clauses: Vec<NormalClause>,
    /// The object keys used for each target class.
    pub keys: BTreeMap<ClassName, ObjectKey>,
}

impl NormalProgram {
    /// Total size of the normal-form program (sum of clause sizes). The paper
    /// uses "the size of the resulting normal form program" as one of its
    /// evaluation metrics (Section 6).
    pub fn size(&self) -> usize {
        self.clauses.iter().map(NormalClause::size).sum()
    }

    /// Number of normal-form clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True if the program has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The clauses that create objects of a given class.
    pub fn creating_clauses(&self, class: &ClassName) -> Vec<&NormalClause> {
        self.clauses
            .iter()
            .filter(|c| &c.class == class && c.creates)
            .collect()
    }
}

/// Options controlling normalisation; the defaults reproduce Morphase's
/// behaviour (keys and source constraints are used).
#[derive(Clone, Copy, Debug)]
pub struct NormalizeOptions {
    /// Use target key constraints to identify objects across partial clauses.
    /// Turning this off reproduces the paper's "constraints omitted" setting,
    /// where normalisation time and output size can become exponential.
    pub use_target_keys: bool,
    /// Use source constraints to simplify derived clauses (Example 4.1) and to
    /// prune unsatisfiable clauses.
    pub use_source_constraints: bool,
    /// Safety cap on the number of partial descriptions per class that the
    /// "no keys" subset merge will consider (2^n combinations are generated).
    pub max_partials_without_keys: usize,
}

impl Default for NormalizeOptions {
    fn default() -> Self {
        NormalizeOptions {
            use_target_keys: true,
            use_source_constraints: true,
            max_partials_without_keys: 16,
        }
    }
}

/// A partial description of a target object extracted from one clause.
#[derive(Clone, Debug)]
struct Partial {
    class: ClassName,
    object_var: Var,
    explicit_key: Option<SkolemArgs>,
    derived_key: Option<SkolemArgs>,
    attrs: BTreeMap<Label, Term>,
    body: Vec<Atom>,
    creates: bool,
    label: String,
}

/// Normalise a program.
pub fn normalize(program: &Program, options: &NormalizeOptions) -> Result<NormalProgram> {
    let schemas = program.schemas();
    let target_classes: BTreeSet<ClassName> = program.target_classes();

    // Keys: from the target schema's constraint clauses plus the metadata key
    // specification is the caller's job (Morphase generates C2/C3-style
    // clauses from metadata); here we extract Skolem-style key constraints.
    let target_constraint_clauses: Vec<&Clause> = program
        .target_constraints()
        .into_iter()
        .map(|(_, c)| c)
        .collect();
    let keys = if options.use_target_keys {
        extract_object_keys(&target_constraint_clauses)
    } else {
        BTreeMap::new()
    };

    // Source keys for the optimiser.
    let source_constraint_clauses: Vec<&Clause> = program
        .source_constraints()
        .into_iter()
        .map(|(_, c)| c)
        .collect();
    let source_keys: SourceKeys = if options.use_source_constraints {
        extract_merge_keys(&source_constraint_clauses)
    } else {
        BTreeMap::new()
    };

    // Step 1: extract partial descriptions from every transformation clause.
    let mut partials: Vec<Partial> = Vec::new();
    for (index, (id, clause)) in program.transformation_clauses().into_iter().enumerate() {
        let renamed = clause.rename_vars(|v| format!("c{index}_{v}"));
        let env = check_clause_types(&renamed, &schemas)?;
        let analysis = analyze_head(&renamed, &env, &target_classes)?;
        if analysis.objects.is_empty() {
            return Err(EngineError::Normalisation(format!(
                "clause {} does not describe any target object",
                id.describe()
            )));
        }
        if !analysis.residual.is_empty() {
            return Err(EngineError::Normalisation(format!(
                "clause {} has head atoms outside the supported normal-form fragment",
                id.describe()
            )));
        }
        for object in analysis.objects {
            partials.push(partial_from_object(&renamed, object, &id.describe()));
        }
    }

    // Step 2: dependency graph over target classes (creation dependencies
    // only: attribute-only descriptions such as clause (T3) do not make the
    // program recursive) and topological order.
    let creating: Vec<&Partial> = partials.iter().filter(|p| p.creates).collect();
    let order = topological_order(&creating, &target_classes)?;

    // Steps 3-4: per class, unfold the creating descriptions and resolve their
    // identities; attribute-only descriptions are unfolded afterwards against
    // the completed creating clauses.
    let mut normalized: BTreeMap<ClassName, Vec<NormalClause>> = BTreeMap::new();
    let mut output: Vec<NormalClause> = Vec::new();
    let mut unfold_counter = 0usize;
    for class in order {
        let class_partials: Vec<&Partial> = partials
            .iter()
            .filter(|p| p.class == class && p.creates)
            .collect();
        if class_partials.is_empty() {
            continue;
        }
        let mut candidates: Vec<Partial> = Vec::new();
        for partial in class_partials {
            candidates.extend(unfold_partial(
                partial.clone(),
                &target_classes,
                &normalized,
                &mut unfold_counter,
            )?);
        }
        let clauses = resolve_identities(&class, candidates, &keys, options)?;
        normalized.insert(class.clone(), clauses.clone());
        output.extend(clauses);
    }
    // Attribute-only descriptions (heads without a membership assertion, such
    // as clause (T3) contributing only `capital`).
    let attribute_only: Vec<&Partial> = partials.iter().filter(|p| !p.creates).collect();
    let mut by_class: BTreeMap<ClassName, Vec<Partial>> = BTreeMap::new();
    for partial in attribute_only {
        let unfolded = unfold_partial(
            partial.clone(),
            &target_classes,
            &normalized,
            &mut unfold_counter,
        )?;
        by_class
            .entry(partial.class.clone())
            .or_default()
            .extend(unfolded);
    }
    for (class, candidates) in by_class {
        let clauses = resolve_identities(&class, candidates, &keys, options)?;
        output.extend(clauses);
    }

    // Step 5: optimisation with source constraints.
    let mut final_clauses = Vec::new();
    for clause in output {
        // `None` means the clause body is unsatisfiable and is pruned.
        if let Some(optimised) = optimize::optimize_clause(clause, &source_keys) {
            final_clauses.push(optimised);
        }
    }

    Ok(NormalProgram {
        clauses: final_clauses,
        keys,
    })
}

fn partial_from_object(clause: &Clause, object: HeadObject, label: &str) -> Partial {
    Partial {
        class: object.class,
        object_var: object.var,
        explicit_key: object.explicit_key,
        derived_key: None,
        attrs: object.attrs,
        body: clause.body.clone(),
        creates: object.member_in_head,
        label: label.to_string(),
    }
}

/// Topologically order the target classes by their unfold dependencies.
/// Class `C` depends on class `D` when a clause describing `C` mentions `D` in
/// its body. A cycle means the program is recursive and cannot be normalised.
fn topological_order(
    partials: &[&Partial],
    target_classes: &BTreeSet<ClassName>,
) -> Result<Vec<ClassName>> {
    let mut deps: BTreeMap<ClassName, BTreeSet<ClassName>> = BTreeMap::new();
    for partial in partials {
        let entry = deps.entry(partial.class.clone()).or_default();
        for atom in &partial.body {
            if let Atom::Member(_, class) = atom {
                if target_classes.contains(class) && class != &partial.class {
                    entry.insert(class.clone());
                }
            }
        }
        // A creating clause whose body ranges over its own class is directly
        // recursive (objects of `C` defined from objects of `C`).
        for atom in &partial.body {
            if let Atom::Member(_, class) = atom {
                if class == &partial.class {
                    return Err(EngineError::RecursiveProgram(format!(
                        "clause {} creates objects of `{class}` from objects of `{class}`",
                        partial.label
                    )));
                }
            }
        }
    }
    // Kahn's algorithm.
    let mut order = Vec::new();
    let mut remaining: BTreeSet<ClassName> = deps.keys().cloned().collect();
    while !remaining.is_empty() {
        let ready: Vec<ClassName> = remaining
            .iter()
            .filter(|c| {
                deps[*c]
                    .iter()
                    .all(|d| !remaining.contains(d) || !deps.contains_key(d))
            })
            .cloned()
            .collect();
        if ready.is_empty() {
            return Err(EngineError::RecursiveProgram(format!(
                "the target classes {:?} depend on each other cyclically",
                remaining.iter().map(|c| c.to_string()).collect::<Vec<_>>()
            )));
        }
        for class in ready {
            remaining.remove(&class);
            order.push(class);
        }
    }
    Ok(order)
}

/// Unfold every target-class membership atom in a partial's body against the
/// normal clauses already produced for that class. Returns one candidate per
/// combination of defining clauses (this product is a source of the blow-up
/// the paper describes for complete-clause languages).
fn unfold_partial(
    partial: Partial,
    target_classes: &BTreeSet<ClassName>,
    normalized: &BTreeMap<ClassName, Vec<NormalClause>>,
    counter: &mut usize,
) -> Result<Vec<Partial>> {
    // Find the first target membership atom in the body.
    let position = partial.body.iter().position(
        |atom| matches!(atom, Atom::Member(Term::Var(_), class) if target_classes.contains(class)),
    );
    let Some(position) = position else {
        return Ok(vec![partial]);
    };
    let (object_var, class) = match &partial.body[position] {
        Atom::Member(Term::Var(v), c) => (v.clone(), c.clone()),
        _ => unreachable!(),
    };
    let defining: Vec<NormalClause> = normalized
        .get(&class)
        .map(|cs| cs.iter().filter(|c| c.creates).cloned().collect())
        .unwrap_or_default();
    if defining.is_empty() {
        return Err(EngineError::Normalisation(format!(
            "clause {} uses objects of target class `{class}` in its body, but no clause creates them",
            partial.label
        )));
    }
    let mut results = Vec::new();
    for def in defining {
        *counter += 1;
        let prefix = format!("u{counter}_");
        let renamed_key = rename_skolem_args(&def.key, &prefix);
        let renamed_attrs: BTreeMap<Label, Term> = def
            .attrs
            .iter()
            .map(|(l, t)| (l.clone(), rename_term(t, &prefix)))
            .collect();
        let renamed_body: Vec<Atom> = def.body.iter().map(|a| rename_atom(a, &prefix)).collect();
        let identity = Term::Skolem(class.clone(), renamed_key.clone());

        // Rewrite the remaining body, attributes and keys of the partial:
        // `V` becomes the Skolem identity and `V.a` becomes the defining
        // clause's attribute term.
        let mut ok = true;
        let mut new_body: Vec<Atom> = Vec::new();
        for (i, atom) in partial.body.iter().enumerate() {
            if i == position {
                continue;
            }
            new_body.push(rewrite_atom(
                atom,
                &object_var,
                &identity,
                &renamed_attrs,
                &mut ok,
            ));
        }
        new_body.extend(renamed_body);
        let new_attrs: BTreeMap<Label, Term> = partial
            .attrs
            .iter()
            .map(|(l, t)| {
                (
                    l.clone(),
                    rewrite_object_refs(t, &object_var, &identity, &renamed_attrs, &mut ok),
                )
            })
            .collect();
        let new_explicit = partial.explicit_key.as_ref().map(|k| {
            k.map(|t| rewrite_object_refs(t, &object_var, &identity, &renamed_attrs, &mut ok))
        });
        if !ok {
            // Some attribute of the unfolded object is not defined by this
            // defining clause; the combination is not usable.
            continue;
        }
        let derived_key = if object_var == partial.object_var {
            // The described object itself was identified through the body:
            // its identity is the defining clause's key.
            Some(renamed_key)
        } else {
            partial.derived_key.clone()
        };
        let unfolded = Partial {
            class: partial.class.clone(),
            object_var: partial.object_var.clone(),
            explicit_key: new_explicit,
            derived_key,
            attrs: new_attrs,
            body: new_body,
            creates: partial.creates,
            label: partial.label.clone(),
        };
        results.extend(unfold_partial(
            unfolded,
            target_classes,
            normalized,
            counter,
        )?);
    }
    Ok(results)
}

fn rename_term(term: &Term, prefix: &str) -> Term {
    let subst: BTreeMap<Var, Term> = term
        .var_set()
        .into_iter()
        .map(|v| (v.clone(), Term::Var(format!("{prefix}{v}"))))
        .collect();
    term.substitute(&subst)
}

fn rename_atom(atom: &Atom, prefix: &str) -> Atom {
    let subst: BTreeMap<Var, Term> = atom
        .var_set()
        .into_iter()
        .map(|v| (v.clone(), Term::Var(format!("{prefix}{v}"))))
        .collect();
    atom.substitute(&subst)
}

fn rename_skolem_args(args: &SkolemArgs, prefix: &str) -> SkolemArgs {
    args.map(|t| rename_term(t, prefix))
}

/// Replace references to `object_var` in a term: `object_var.a` becomes the
/// defining clause's term for `a` (setting `ok = false` if the attribute is
/// not defined), and a bare `object_var` becomes the Skolem identity.
fn rewrite_object_refs(
    term: &Term,
    object_var: &str,
    identity: &Term,
    attrs: &BTreeMap<Label, Term>,
    ok: &mut bool,
) -> Term {
    match term {
        Term::Var(v) if v == object_var => identity.clone(),
        Term::Var(_) | Term::Const(_) => term.clone(),
        Term::Proj(base, label) => {
            if let Term::Var(v) = base.as_ref() {
                if v == object_var {
                    return match attrs.get(label) {
                        Some(defined) => defined.clone(),
                        None => {
                            *ok = false;
                            term.clone()
                        }
                    };
                }
            }
            Term::Proj(
                Box::new(rewrite_object_refs(base, object_var, identity, attrs, ok)),
                label.clone(),
            )
        }
        Term::Record(fields) => Term::Record(
            fields
                .iter()
                .map(|(l, t)| {
                    (
                        l.clone(),
                        rewrite_object_refs(t, object_var, identity, attrs, ok),
                    )
                })
                .collect(),
        ),
        Term::Variant(label, payload) => Term::Variant(
            label.clone(),
            Box::new(rewrite_object_refs(
                payload, object_var, identity, attrs, ok,
            )),
        ),
        Term::Skolem(class, args) => Term::Skolem(
            class.clone(),
            args.map(|t| rewrite_object_refs(t, object_var, identity, attrs, ok)),
        ),
    }
}

fn rewrite_atom(
    atom: &Atom,
    object_var: &str,
    identity: &Term,
    attrs: &BTreeMap<Label, Term>,
    ok: &mut bool,
) -> Atom {
    let mut f = |t: &Term| rewrite_object_refs(t, object_var, identity, attrs, ok);
    match atom {
        Atom::Member(t, c) => Atom::Member(f(t), c.clone()),
        Atom::Eq(s, t) => Atom::Eq(f(s), f(t)),
        Atom::Neq(s, t) => Atom::Neq(f(s), f(t)),
        Atom::Lt(s, t) => Atom::Lt(f(s), f(t)),
        Atom::Leq(s, t) => Atom::Leq(f(s), f(t)),
        Atom::InSet(s, t) => Atom::InSet(f(s), f(t)),
    }
}

/// Canonicalise a Skolem key against the class's object key so that all
/// clauses creating a class produce key values of the same shape.
fn canonicalize_key(args: &SkolemArgs, key: Option<&ObjectKey>) -> SkolemArgs {
    let Some(key) = key else { return args.clone() };
    match args {
        SkolemArgs::Positional(ts) if ts.len() == key.parts.len() => SkolemArgs::Named(
            key.parts
                .iter()
                .zip(ts.iter())
                .map(|((label, _), t)| (label.clone(), t.clone()))
                .collect(),
        ),
        SkolemArgs::Named(fields) => {
            let mut ordered = Vec::new();
            for (label, _) in &key.parts {
                if let Some((_, t)) = fields.iter().find(|(l, _)| l == label) {
                    ordered.push((label.clone(), t.clone()));
                }
            }
            // Keep any extra fields at the end.
            for (l, t) in fields {
                if !ordered.iter().any(|(ol, _)| ol == l) {
                    ordered.push((l.clone(), t.clone()));
                }
            }
            SkolemArgs::Named(ordered)
        }
        other => other.clone(),
    }
}

/// Resolve the identity of every candidate description, producing the class's
/// normal clauses. With keys this is linear in the number of candidates; with
/// keys omitted it enumerates combinations of candidates (exponential).
fn resolve_identities(
    class: &ClassName,
    candidates: Vec<Partial>,
    keys: &BTreeMap<ClassName, ObjectKey>,
    options: &NormalizeOptions,
) -> Result<Vec<NormalClause>> {
    let object_key = keys.get(class);
    let mut keyed: Vec<NormalClause> = Vec::new();
    let mut unkeyed: Vec<Partial> = Vec::new();

    for candidate in candidates {
        let key = candidate
            .explicit_key
            .clone()
            .map(|k| canonicalize_key(&k, object_key))
            .or_else(|| candidate.derived_key.clone())
            .or_else(|| derive_key_from_attrs(&candidate, object_key));
        match key {
            Some(key) => keyed.push(NormalClause {
                class: class.clone(),
                key,
                attrs: candidate.attrs.clone(),
                body: candidate.body.clone(),
                creates: candidate.creates,
                provenance: vec![candidate.label.clone()],
            }),
            None => unkeyed.push(candidate),
        }
    }

    if unkeyed.is_empty() {
        return Ok(keyed);
    }

    // Without a usable key the normaliser cannot tell which partial
    // descriptions talk about the same object, so it must combine them in
    // every possible way (the exponential case the paper reports when
    // constraints are omitted).
    if unkeyed.len() > options.max_partials_without_keys {
        return Err(EngineError::Normalisation(format!(
            "class `{class}` has {} partial descriptions and no key constraint; refusing to \
             enumerate {} combinations (raise `max_partials_without_keys` to override)",
            unkeyed.len(),
            1u128 << unkeyed.len().min(127)
        )));
    }
    if object_key.is_some() || !keyed.is_empty() {
        // Mixed situation: some partials have keys, some do not — the ones
        // without keys are genuinely incomplete.
        let labels: Vec<&str> = unkeyed.iter().map(|p| p.label.as_str()).collect();
        return Err(EngineError::Incomplete {
            class: class.to_string(),
            detail: format!("clauses {labels:?} do not determine the object's key attributes"),
        });
    }

    let mut combined = Vec::new();
    let n = unkeyed.len();
    for mask in 1u64..(1u64 << n) {
        let subset: Vec<&Partial> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| &unkeyed[i])
            .collect();
        if let Some(clause) = merge_subset(class, &subset) {
            combined.push(clause);
        }
    }
    keyed.extend(combined);
    Ok(keyed)
}

fn derive_key_from_attrs(
    candidate: &Partial,
    object_key: Option<&ObjectKey>,
) -> Option<SkolemArgs> {
    let key = object_key?;
    let mut parts = Vec::new();
    for (label, path) in &key.parts {
        if path.len() != 1 {
            return None;
        }
        let attr = &path.segments()[0];
        let term = candidate.attrs.get(attr)?;
        parts.push((label.clone(), term.clone()));
    }
    Some(SkolemArgs::Named(parts))
}

/// Merge a subset of key-less partial descriptions into a single normal
/// clause: bodies are concatenated, attributes defined by several members are
/// equated, and the object's identity is the record of all of its attributes.
fn merge_subset(class: &ClassName, subset: &[&Partial]) -> Option<NormalClause> {
    let mut attrs: BTreeMap<Label, Term> = BTreeMap::new();
    let mut body: Vec<Atom> = Vec::new();
    let mut provenance = Vec::new();
    let mut creates = false;
    for partial in subset {
        creates |= partial.creates;
        provenance.push(partial.label.clone());
        body.extend(partial.body.iter().cloned());
        for (label, term) in &partial.attrs {
            match attrs.get(label) {
                None => {
                    attrs.insert(label.clone(), term.clone());
                }
                Some(existing) if existing == term => {}
                Some(existing) => {
                    // The two descriptions must agree on this attribute; keep
                    // one term and add a join condition for the other.
                    body.push(Atom::Eq(existing.clone(), term.clone()));
                }
            }
        }
    }
    if attrs.is_empty() {
        return None;
    }
    let key = SkolemArgs::Named(attrs.iter().map(|(l, t)| (l.clone(), t.clone())).collect());
    Some(NormalClause {
        class: class.clone(),
        key,
        attrs,
        body,
        creates,
        provenance,
    })
}

/// Execute a normal-form program against the source databases in a single
/// pass, producing the target instance. Objects are created and merged by
/// their Skolem keys; clashing attribute values are an error (the program
/// would not have a unique smallest transformation).
pub fn execute(
    normal: &NormalProgram,
    sources: &[&Instance],
    target_name: &str,
) -> Result<Instance> {
    let mut factory = SkolemFactory::new();
    let mut target = Instance::new(target_name);
    let dbs = Databases::new(sources);
    for clause in &normal.clauses {
        let bindings = match_body(&clause.body, &dbs, &mut factory, Bindings::new())?;
        for binding in bindings {
            let key_value = eval_skolem_key(&clause.key, &binding, &dbs, &mut factory)?;
            let oid = factory.mk(&clause.class, &key_value);
            let mut fields = BTreeMap::new();
            for (label, term) in &clause.attrs {
                fields.insert(
                    label.clone(),
                    eval_term(term, &binding, &dbs, &mut factory)?,
                );
            }
            let record = Value::Record(fields);
            match target.value(&oid) {
                None => {
                    target.insert(oid, record)?;
                }
                Some(existing) => {
                    let merged = existing.merge_records(&record).ok_or_else(|| {
                        EngineError::Invalid(format!(
                            "ambiguous transformation: object {oid} receives conflicting values \
                             {} and {}",
                            wol_model::display::render_value(existing),
                            wol_model::display::render_value(&record)
                        ))
                    })?;
                    target.update(&oid, merged)?;
                }
            }
        }
    }
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_lang::program::{Program, SchemaBinding};
    use wol_model::{Schema, Type};

    /// The European source schema of Figure 2.
    fn euro_schema() -> Schema {
        Schema::new("euro")
            .with_class(
                "CityE",
                Type::record([
                    ("name", Type::str()),
                    ("is_capital", Type::bool()),
                    ("country", Type::class("CountryE")),
                ]),
            )
            .with_class(
                "CountryE",
                Type::record([
                    ("name", Type::str()),
                    ("language", Type::str()),
                    ("currency", Type::str()),
                ]),
            )
    }

    /// The integrated target schema of Figure 3 (restricted to the European
    /// side; the US side is exercised by the workloads crate).
    fn target_schema() -> Schema {
        Schema::new("target")
            .with_class(
                "CityT",
                Type::record([
                    ("name", Type::str()),
                    (
                        "place",
                        Type::variant([("euro_city", Type::class("CountryT"))]),
                    ),
                ]),
            )
            .with_class(
                "CountryT",
                Type::record([
                    ("name", Type::str()),
                    ("language", Type::str()),
                    ("currency", Type::str()),
                    ("capital", Type::optional(Type::class("CityT"))),
                ]),
            )
    }

    /// The paper's transformation clauses (T1)-(T3) and key constraints
    /// (C2)-(C3), in the crate's concrete syntax.
    fn cities_program() -> Program {
        Program::new(
            "euro_to_target",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            "T1: X in CountryT, X.name = E.name, X.language = E.language, X.currency = E.currency \
                 <= E in CountryE;\n\
             T2: Y in CityT, Y.name = E.name, Y.place = ins_euro_city(X) \
                 <= E in CityE, X in CountryT, X.name = E.country.name;\n\
             T3: X.capital = Y \
                 <= X in CountryT, Y in CityT, Y.place = ins_euro_city(X), \
                    E in CityE, E.name = Y.name, E.country.name = X.name, E.is_capital = true;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;\n\
             C2: X = Mk_CityT(name = N, place = P) <= X in CityT, N = X.name, P = X.place;\n\
             C8: X = Y <= X in CountryE, Y in CountryE, X.name = Y.name;",
        )
    }

    fn euro_instance() -> Instance {
        let mut inst = Instance::new("euro");
        let uk = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("United Kingdom")),
                ("language", Value::str("English")),
                ("currency", Value::str("sterling")),
            ]),
        );
        let fr = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("France")),
                ("language", Value::str("French")),
                ("currency", Value::str("franc")),
            ]),
        );
        for (name, capital, country) in [
            ("London", true, &uk),
            ("Manchester", false, &uk),
            ("Paris", true, &fr),
        ] {
            inst.insert_fresh(
                &ClassName::new("CityE"),
                Value::record([
                    ("name", Value::str(name)),
                    ("is_capital", Value::bool(capital)),
                    ("country", Value::oid(country.clone())),
                ]),
            );
        }
        inst
    }

    #[test]
    fn program_validates_and_normalizes() {
        let program = cities_program();
        program.validate().unwrap();
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        // One creating clause for CountryT, one for CityT, one attribute-only
        // clause for CountryT.capital.
        assert_eq!(
            normal.creating_clauses(&ClassName::new("CountryT")).len(),
            1
        );
        assert_eq!(normal.creating_clauses(&ClassName::new("CityT")).len(), 1);
        assert_eq!(normal.len(), 3);
        assert!(normal.size() > 0);
        assert!(!normal.is_empty());
        // Every normal clause records where it came from.
        for clause in &normal.clauses {
            assert!(!clause.provenance.is_empty());
        }
    }

    #[test]
    fn normal_clause_bodies_mention_no_target_memberships() {
        let program = cities_program();
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let target_classes = program.target_classes();
        for clause in &normal.clauses {
            for atom in &clause.body {
                assert!(
                    !matches!(atom, Atom::Member(_, c) if target_classes.contains(c)),
                    "body membership over a target class in {}",
                    clause.render()
                );
            }
        }
    }

    #[test]
    fn execute_produces_figure_3_instance() {
        let program = cities_program();
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let source = euro_instance();
        let target = execute(&normal, &[&source][..], "target").unwrap();

        assert_eq!(target.extent_size(&ClassName::new("CountryT")), 2);
        assert_eq!(target.extent_size(&ClassName::new("CityT")), 3);

        // France's capital is Paris.
        let france = target
            .find_by_field(&ClassName::new("CountryT"), "name", &Value::str("France"))
            .expect("France exists in the target");
        let france_value = target.value(france).unwrap();
        assert_eq!(france_value.project("currency"), Some(&Value::str("franc")));
        let capital = france_value
            .project("capital")
            .and_then(|v| v.as_oid())
            .expect("France has a capital");
        let capital_value = target.value(capital).unwrap();
        assert_eq!(capital_value.project("name"), Some(&Value::str("Paris")));

        // Manchester exists but is nobody's capital.
        let manchester = target
            .find_by_field(&ClassName::new("CityT"), "name", &Value::str("Manchester"))
            .expect("Manchester exists");
        assert!(target.value(manchester).unwrap().project("place").is_some());
    }

    #[test]
    fn normalization_is_deterministic() {
        let program = cities_program();
        let a = normalize(&program, &NormalizeOptions::default()).unwrap();
        let b = normalize(&program, &NormalizeOptions::default()).unwrap();
        assert_eq!(a.clauses, b.clauses);
    }

    #[test]
    fn recursive_program_rejected() {
        // CityT objects defined from CityT objects: recursive.
        let program = Program::new(
            "recursive",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            "T1: X in CountryT, X.name = E.name, X.language = E.language, X.currency = E.currency <= E in CountryE;\n\
             R: Y in CityT, Y.name = E.name, Y.place = Z.place <= Z in CityT, E in CityE;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;\n\
             C2: X = Mk_CityT(name = N, place = P) <= X in CityT, N = X.name, P = X.place;",
        );
        let err = normalize(&program, &NormalizeOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::RecursiveProgram(_)));
    }

    #[test]
    fn missing_creating_clause_detected() {
        // T3 mentions CityT in its body but nothing creates CityT objects.
        let program = Program::new(
            "incomplete",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            "T1: X in CountryT, X.name = E.name, X.language = E.language, X.currency = E.currency <= E in CountryE;\n\
             T3: X.capital = Y <= X in CountryT, Y in CityT, Y.place = ins_euro_city(X), \
                 E in CityE, E.name = Y.name, E.country.name = X.name, E.is_capital = true;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;\n\
             C2: X = Mk_CityT(name = N, place = P) <= X in CityT, N = X.name, P = X.place;",
        );
        let err = normalize(&program, &NormalizeOptions::default()).unwrap_err();
        assert!(err.to_string().contains("no clause creates them"));
    }

    #[test]
    fn split_clauses_t4_t5_merge_through_keys() {
        // Example 4.1: the CountryT description split over two clauses.
        let program = Program::new(
            "split",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            "T4: X = Mk_CountryT(N), X.name = N, X.language = L <= Y in CountryE, Y.name = N, Y.language = L;\n\
             T5: X = Mk_CountryT(N), X.name = N, X.currency = C <= Z in CountryE, Z.name = N, Z.currency = C;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;",
        );
        program.validate().unwrap();
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        assert_eq!(normal.len(), 2);
        let source = euro_instance();
        let target = execute(&normal, &[&source][..], "target").unwrap();
        assert_eq!(target.extent_size(&ClassName::new("CountryT")), 2);
        let france = target
            .find_by_field(&ClassName::new("CountryT"), "name", &Value::str("France"))
            .unwrap();
        let value = target.value(france).unwrap();
        // Both halves of the description reached the same object.
        assert_eq!(value.project("language"), Some(&Value::str("French")));
        assert_eq!(value.project("currency"), Some(&Value::str("franc")));
    }

    #[test]
    fn without_keys_normal_form_blows_up() {
        // The same split-description program, but with key constraints omitted:
        // the normaliser has to consider every combination of the partial
        // clauses, so the normal form has 2^2 - 1 = 3 clauses instead of 2.
        let program = Program::new(
            "split_nokeys",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            "T4: X in CountryT, X.name = N, X.language = L <= Y in CountryE, Y.name = N, Y.language = L;\n\
             T5: X in CountryT, X.name = N, X.currency = C <= Z in CountryE, Z.name = N, Z.currency = C;",
        );
        let options = NormalizeOptions {
            use_target_keys: false,
            ..NormalizeOptions::default()
        };
        let normal = normalize(&program, &options).unwrap();
        assert_eq!(normal.len(), 3);

        // With keys the same program (plus the key constraint) yields 2 clauses.
        let keyed_program = Program::new(
            "split_keys",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            "T4: X in CountryT, X.name = N, X.language = L <= Y in CountryE, Y.name = N, Y.language = L;\n\
             T5: X in CountryT, X.name = N, X.currency = C <= Z in CountryE, Z.name = N, Z.currency = C;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;",
        );
        let keyed = normalize(&keyed_program, &NormalizeOptions::default()).unwrap();
        assert_eq!(keyed.len(), 2);
        assert!(normal.size() > keyed.size());
    }

    #[test]
    fn too_many_keyless_partials_rejected() {
        let mut text = String::new();
        for i in 0..20 {
            text.push_str(&format!(
                "P{i}: X in CountryT, X.name = N, X.language = L{i} <= Y in CountryE, Y.name = N, Y.language = L{i};\n"
            ));
        }
        let program = Program::new(
            "many",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(&text);
        let options = NormalizeOptions {
            use_target_keys: false,
            max_partials_without_keys: 8,
            ..NormalizeOptions::default()
        };
        let err = normalize(&program, &options).unwrap_err();
        assert!(err.to_string().contains("refusing to enumerate"));
    }

    #[test]
    fn incomplete_clause_reported_when_key_attributes_missing() {
        // A clause that creates CountryT objects but never sets the key
        // attribute `name`.
        let program = Program::new(
            "incomplete_key",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            "T: X in CountryT, X.language = L <= Y in CountryE, Y.language = L;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;",
        );
        let err = normalize(&program, &NormalizeOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::Incomplete { .. }));
    }

    #[test]
    fn normal_clause_render_is_parseable_text() {
        let program = cities_program();
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        for clause in &normal.clauses {
            let rendered = clause.render();
            assert!(rendered.contains("Mk_"));
            assert!(rendered.contains("<="));
        }
    }

    #[test]
    fn source_constraint_optimisation_reduces_body_size() {
        // Example 4.1: with the CountryE name key, the merged T4/T5 body can
        // drop the self-join. We approximate by comparing the normal program
        // with and without source-constraint optimisation on a program whose
        // clause body contains the self-join explicitly.
        let program = Program::new(
            "selfjoin",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            "T: X in CountryT, X.name = N, X.language = L, X.currency = C \
                 <= Y in CountryE, Y.name = N, Y.language = L, Z in CountryE, Z.name = N, Z.currency = C;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;\n\
             C8: X = Y <= X in CountryE, Y in CountryE, X.name = Y.name;",
        );
        let with_opt = normalize(&program, &NormalizeOptions::default()).unwrap();
        let without_opt = normalize(
            &program,
            &NormalizeOptions {
                use_source_constraints: false,
                ..NormalizeOptions::default()
            },
        )
        .unwrap();
        assert!(with_opt.size() < without_opt.size());
        // Both still compute the same target.
        let source = euro_instance();
        let a = execute(&with_opt, &[&source][..], "t").unwrap();
        let b = execute(&without_opt, &[&source][..], "t").unwrap();
        assert_eq!(
            a.extent_size(&ClassName::new("CountryT")),
            b.extent_size(&ClassName::new("CountryT"))
        );
    }

    #[test]
    fn conflicting_attribute_values_detected_at_execution() {
        // Two clauses give the same country different currencies.
        let program = Program::new(
            "conflict",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            "T1: X in CountryT, X.name = E.name, X.currency = E.currency <= E in CountryE;\n\
             T2: X in CountryT, X.name = E.name, X.currency = \"euro\" <= E in CountryE;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;",
        );
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let source = euro_instance();
        let err = execute(&normal, &[&source][..], "t").unwrap_err();
        assert!(err.to_string().contains("conflicting"));
    }
}
