//! Shared configuration and tooling for the benchmark harness.
//!
//! Every bench uses a reduced sample count so that the full suite regenerating
//! the paper's evaluation claims (experiments E1-E7, see EXPERIMENTS.md) runs
//! in minutes rather than hours. The absolute numbers are not expected to
//! match the 1997 hardware; the *shape* of each comparison is.
//!
//! Benches additionally emit machine-readable `BENCH_<name>.json` summaries
//! into the workspace root (see [`BenchJson`]), so the performance trajectory
//! of the hot paths can be tracked across PRs without parsing criterion's
//! human-oriented output.

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Criterion sample size used by all benches.
pub const SAMPLES: usize = 10;

/// A counting wrapper around the system allocator, for benches that report
/// peak memory next to wall-clock (E10). Install it per bench binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: bench::CountingAlloc = bench::CountingAlloc;
/// ```
///
/// The counters are plain relaxed atomics — a few percent of overhead on
/// allocation-heavy paths, which is fine for the ratios the benches report
/// (both sides of every comparison pay it equally).
pub struct CountingAlloc;

static ALLOC_CURRENT: AtomicUsize = AtomicUsize::new(0);
static ALLOC_PEAK: AtomicUsize = AtomicUsize::new(0);

impl CountingAlloc {
    /// Bytes currently allocated.
    pub fn current_bytes() -> usize {
        ALLOC_CURRENT.load(Ordering::Relaxed)
    }

    /// High-water mark since the last [`CountingAlloc::reset_peak`].
    pub fn peak_bytes() -> usize {
        ALLOC_PEAK.load(Ordering::Relaxed)
    }

    /// Reset the high-water mark to the current live size, so the next
    /// measured region reports its own peak.
    pub fn reset_peak() {
        ALLOC_PEAK.store(ALLOC_CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

fn alloc_track_grow(grown: usize) {
    let now = ALLOC_CURRENT.fetch_add(grown, Ordering::Relaxed) + grown;
    ALLOC_PEAK.fetch_max(now, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            alloc_track_grow(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        ALLOC_CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            if new_size >= layout.size() {
                alloc_track_grow(new_size - layout.size());
            } else {
                ALLOC_CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

/// Criterion measurement time (seconds) used by all benches.
pub const MEASURE_SECS: u64 = 2;

/// Criterion warm-up time (milliseconds) used by all benches.
pub const WARMUP_MS: u64 = 300;

/// A minimal JSON object builder (the workspace builds offline, so no serde):
/// insertion-ordered `key: value` pairs where values are numbers, strings, or
/// nested objects.
#[derive(Clone, Debug, Default)]
pub struct BenchJson {
    fields: Vec<(String, String)>,
}

impl BenchJson {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Add a float field (serialised with enough precision for timings).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.fields.push((key.to_string(), format!("{value:.6}")));
        self
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        let escaped: String = value
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                '\n' => vec!['\\', 'n'],
                other => vec![other],
            })
            .collect();
        self.fields
            .push((key.to_string(), format!("\"{escaped}\"")));
        self
    }

    /// Add a nested object field.
    pub fn obj(mut self, key: &str, value: BenchJson) -> Self {
        self.fields.push((key.to_string(), value.render()));
        self
    }

    /// Render as a JSON object string.
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }

    /// Stamp the summary with the git revision and worker-thread count it was
    /// measured under. `BENCH_*.json` files are overwritten per run; the
    /// stamp ties every summary to the commit and thread configuration that
    /// produced it, so trajectories across PRs (and across `WOL_THREADS`
    /// settings) stay attributable instead of silently shadowing each other.
    pub fn stamped(self) -> Self {
        let sha = git_sha();
        self.str("git_sha", &sha).int("threads", env_threads())
    }

    /// Write the object to `<workspace root>/<file_name>` and report where it
    /// went on stderr. Failures are reported, not fatal — summaries are a
    /// convenience, not a correctness requirement.
    pub fn write(&self, file_name: &str) {
        let path = workspace_root().join(file_name);
        match std::fs::write(&path, self.render() + "\n") {
            Ok(()) => eprintln!("[bench] wrote {}", path.display()),
            Err(err) => eprintln!("[bench] could not write {}: {err}", path.display()),
        }
    }
}

/// The workspace root, resolved relative to this crate's manifest.
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")))
}

/// The short git revision of the workspace checkout, or `"unknown"` when git
/// is unavailable (e.g. a source tarball).
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(workspace_root())
        .output()
        .ok()
        .filter(|output| output.status.success())
        .and_then(|output| String::from_utf8(output.stdout).ok())
        .map(|sha| sha.trim().to_string())
        .filter(|sha| !sha.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The worker-thread budget the benched process runs under — the same
/// policy the executors resolve ([`wol_model::Parallelism::from_env`]), so
/// the stamp can never disagree with what actually ran.
pub fn env_threads() -> u64 {
    wol_model::Parallelism::from_env().threads() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_builder_renders_nested_objects() {
        let json = BenchJson::new()
            .str("name", "e6 \"genome\"")
            .int("rows", 42)
            .num("secs", 0.125)
            .obj("inner", BenchJson::new().int("k", 1));
        assert_eq!(
            json.render(),
            "{\"name\": \"e6 \\\"genome\\\"\", \"rows\": 42, \"secs\": 0.125000, \
             \"inner\": {\"k\": 1}}"
        );
    }

    #[test]
    fn workspace_root_holds_the_workspace_manifest() {
        assert!(workspace_root().join("Cargo.toml").exists());
    }
}
