//! Quickstart: run the paper's running example end to end.
//!
//! Builds the European Cities/Countries source database of Example 2.2,
//! compiles the WOL transformation program (clauses T1–T3 plus key
//! constraints) with Morphase, executes it in a single pass, and prints the
//! integrated target database and the pipeline report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use wol_repro::morphase::{render_report, Morphase};
use wol_repro::wol_model::display::render_instance;
use wol_repro::workloads::cities::CitiesWorkload;

fn main() {
    let workload = CitiesWorkload::new();
    let program = workload.euro_program();
    let source = workload.small_euro_instance();

    println!("== WOL program ==");
    println!("{}", CitiesWorkload::euro_program_text());
    println!();
    println!("== Source database (European cities and countries) ==");
    println!("{}", render_instance(&source));
    println!();

    let run = Morphase::new()
        .transform(&program, &[&source][..])
        .expect("the cities transformation runs");

    println!("== Target database (integrated cities) ==");
    println!("{}", render_instance(&run.target));
    println!();
    println!("{}", render_report(&run));
    println!("== Compiled CPL plans ==");
    for plan in &run.plans {
        println!("{plan}");
    }
}
