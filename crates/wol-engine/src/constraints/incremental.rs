//! Incremental, parallel constraint checking with auditable certificates.
//!
//! [`check_batch`] validates a [`BatchDelta`] against a set of constraint
//! clauses without re-scanning the untouched extents, partitions the work
//! over the shared [`WorkerPool`], and emits a [`ConstraintCertificate`]
//! that an independent [`recheck`] can replay against a snapshot.
//!
//! # Contract
//!
//! The result is *identical* — same violations, same order — to a full
//! [`check_constraints`](super::check_constraints) run over the post-batch
//! state, **provided the pre-batch state satisfied every constraint** (the
//! "pre-clean" contract). The standing pipeline maintains that contract by
//! rejecting (or flagging as suspect, see below) every violating batch.
//!
//! # How it works
//!
//! Each constraint is first *analysed* ([`analyze_constraint`]): which
//! classes its body and head member atoms read, which classes its
//! projections dereference, and whether the clause is *local* — every body
//! member atom binds a plain variable and every projection is a single
//! attribute step over a member-bound variable. Locality is what makes the
//! read set exact: a binding that contains no delta-touched object evaluates
//! every atom to the same truth value before and after the batch.
//!
//! Per batch, each constraint is then planned into one of three modes:
//!
//! * **Skipped** — the delta does not intersect the read set (or the delta
//!   is empty). Under the pre-clean contract the constraint still holds.
//! * **Delta** — only delta-touched objects are examined. Key-shaped
//!   constraints (Skolem keys and merge keys over single attributes) probe
//!   the maintained attribute indexes for colliding keys; other local
//!   constraints re-match the body *seeded* with each changed object and
//!   re-check the head witness for the resulting bindings only.
//! * **Full** — the constraint is re-checked from scratch: it is not local,
//!   a head-witness class went stale (removals, or updates to a projected
//!   class, can break bindings that contain no changed object), it was
//!   passed in `suspects`, or delta detection found a violation.
//!
//! Delta detection never reports violations itself: any hit escalates the
//! constraint to a Full re-check, whose output is canonical. This is what
//! makes the incremental violation list bit-identical to the full scan at
//! every thread count — per-object detection is order-independent (a boolean
//! OR plus commutative counters), and the canonical lists are concatenated
//! in clause order.
//!
//! # Suspects
//!
//! When a caller *commits* a batch despite violations (report-only
//! enforcement), the pre-clean contract no longer holds for the violated
//! constraints. Passing their indices as `suspects` forces them to Full
//! mode until they re-check clean, preserving the contract for everything
//! else.
//!
//! The certificate wire format is documented field-by-field in the crate
//! docs ("Constraint checking").

use std::collections::{BTreeMap, BTreeSet};

use storage::persist::codec::{self, ByteReader};
use wol_lang::ast::{Atom, Clause, Term, Var};
use wol_model::{
    chunk_ranges, BatchDelta, ClassName, Job, Label, Oid, Parallelism, SkolemFactory, Value,
    WorkerPool,
};

use crate::constraints::{
    check_constraint_counted, classify_constraint, ConstraintClass, Violation,
};
use crate::env::{match_body, Bindings, Databases};
use crate::error::EngineError;
use crate::Result;

/// Magic bytes opening an encoded certificate.
pub const CERTIFICATE_MAGIC: &[u8; 8] = b"WOLCERT\0";
/// Current certificate format version.
pub const CERTIFICATE_VERSION: u32 = 1;

/// How one constraint was validated against a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckMode {
    /// The delta cannot affect the constraint; nothing was examined.
    Skipped,
    /// Only delta-touched objects were examined (seeded matches and index
    /// probes) and none produced a violation.
    Delta,
    /// The constraint was re-checked from scratch.
    Full,
}

impl CheckMode {
    fn tag(self) -> u8 {
        match self {
            CheckMode::Skipped => 0,
            CheckMode::Delta => 1,
            CheckMode::Full => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(CheckMode::Skipped),
            1 => Some(CheckMode::Delta),
            2 => Some(CheckMode::Full),
            _ => None,
        }
    }
}

/// One constraint's record in a [`ConstraintCertificate`]: either a clean
/// checked-count/probe summary (empty `violations`) or the violating
/// witnesses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertEntry {
    /// Label of the constraint clause (or `<unlabelled>`).
    pub constraint: String,
    /// How the constraint was validated.
    pub mode: CheckMode,
    /// Objects or bindings examined (delta seeds plus, for Full mode, the
    /// body bindings of the from-scratch re-check).
    pub checked: u64,
    /// Attribute-index probes issued by delta detection.
    pub probes: u64,
    /// The canonical violation list for this constraint (empty when clean).
    pub violations: Vec<Violation>,
}

/// An auditable record of one batch validation: one [`CertEntry`] per
/// constraint, in constraint order. Serialized with the `storage::persist`
/// codec and protected by a CRC-32 trailer so that any bit flip is detected
/// on decode; [`recheck`] replays the recorded outcome against a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstraintCertificate {
    /// Per-constraint outcomes, aligned with the clause list that was
    /// checked.
    pub entries: Vec<CertEntry>,
}

impl ConstraintCertificate {
    /// Total objects/bindings examined across all constraints.
    pub fn checked(&self) -> u64 {
        self.entries.iter().map(|e| e.checked).sum()
    }

    /// Total attribute-index probes issued.
    pub fn probes(&self) -> u64 {
        self.entries.iter().map(|e| e.probes).sum()
    }

    /// Constraints skipped by read-set analysis.
    pub fn skipped(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.mode == CheckMode::Skipped)
            .count() as u64
    }

    /// Constraints actually validated (delta or full mode).
    pub fn validated(&self) -> u64 {
        self.entries.len() as u64 - self.skipped()
    }

    /// Total violations recorded.
    pub fn violation_count(&self) -> u64 {
        self.entries.iter().map(|e| e.violations.len() as u64).sum()
    }

    /// Serialize with the `storage::persist` codec: magic, version, entry
    /// list, CRC-32 trailer over everything before the trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(CERTIFICATE_MAGIC);
        codec::put_u32(&mut out, CERTIFICATE_VERSION);
        codec::put_varint(&mut out, self.entries.len() as u64);
        for entry in &self.entries {
            codec::put_str(&mut out, &entry.constraint);
            out.push(entry.mode.tag());
            codec::put_varint(&mut out, entry.checked);
            codec::put_varint(&mut out, entry.probes);
            codec::put_varint(&mut out, entry.violations.len() as u64);
            for v in &entry.violations {
                codec::put_str(&mut out, &v.clause);
                codec::put_str(&mut out, &v.detail);
                codec::put_varint(&mut out, v.oids.len() as u64);
                for oid in &v.oids {
                    codec::put_oid(&mut out, oid);
                }
            }
        }
        let crc = codec::crc32(&out);
        codec::put_u32(&mut out, crc);
        out
    }

    /// Decode an encoded certificate, verifying magic, version and the
    /// CRC-32 trailer. Any corruption — a single flipped or missing bit —
    /// is an [`EngineError::Certificate`], never a silently wrong result.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let min = CERTIFICATE_MAGIC.len() + 4 + 4;
        if bytes.len() < min {
            return Err(EngineError::Certificate(format!(
                "certificate too short: {} bytes, need at least {min}",
                bytes.len()
            )));
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
        let actual = codec::crc32(payload);
        if stored != actual {
            return Err(EngineError::Certificate(format!(
                "certificate checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        let mut r = ByteReader::new(payload, "constraint certificate");
        let decode = |e: storage::StorageError| EngineError::Certificate(e.to_string());
        let magic = r.take(CERTIFICATE_MAGIC.len()).map_err(decode)?;
        if magic != CERTIFICATE_MAGIC {
            return Err(EngineError::Certificate(format!(
                "bad certificate magic {magic:02x?}"
            )));
        }
        let version = r.u32().map_err(decode)?;
        if version != CERTIFICATE_VERSION {
            return Err(EngineError::Certificate(format!(
                "unsupported certificate version {version} (supported: {CERTIFICATE_VERSION})"
            )));
        }
        let entry_count = r.varint().map_err(decode)?;
        let mut entries = Vec::new();
        for _ in 0..entry_count {
            let constraint = r.str().map_err(decode)?;
            let tag = r.u8().map_err(decode)?;
            let mode = CheckMode::from_tag(tag).ok_or_else(|| {
                EngineError::Certificate(format!("unknown check-mode tag {tag:#04x}"))
            })?;
            let checked = r.varint().map_err(decode)?;
            let probes = r.varint().map_err(decode)?;
            let violation_count = r.varint().map_err(decode)?;
            let mut violations = Vec::new();
            for _ in 0..violation_count {
                let clause = r.str().map_err(decode)?;
                let detail = r.str().map_err(decode)?;
                let oid_count = r.varint().map_err(decode)?;
                let mut oids = Vec::new();
                for _ in 0..oid_count {
                    oids.push(r.oid().map_err(decode)?);
                }
                violations.push(Violation {
                    clause,
                    detail,
                    oids,
                });
            }
            entries.push(CertEntry {
                constraint,
                mode,
                checked,
                probes,
                violations,
            });
        }
        if !r.is_at_end() {
            return Err(EngineError::Certificate(format!(
                "{} trailing bytes after the last entry",
                r.remaining()
            )));
        }
        Ok(ConstraintCertificate { entries })
    }
}

/// The outcome of one incremental batch validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchCheck {
    /// All violations, in the deterministic order of a full
    /// [`check_constraints`](super::check_constraints) run (clause order,
    /// then binding order).
    pub violations: Vec<Violation>,
    /// The auditable per-constraint record.
    pub certificate: ConstraintCertificate,
}

/// The outcome of replaying a certificate against a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecheckReport {
    /// Constraints replayed.
    pub constraints: usize,
    /// Violations confirmed (all of them, or [`recheck`] would have failed).
    pub violations: usize,
}

// ---------------------------------------------------------------------------
// Read-set analysis.
// ---------------------------------------------------------------------------

/// What the incremental checker knows statically about one constraint.
#[derive(Clone, Debug)]
pub struct ConstraintAnalysis {
    class: ConstraintClass,
    /// Body member atoms binding a plain variable: the delta seeds.
    body_members: Vec<(Var, ClassName)>,
    /// Classes of head member atoms (the witness side).
    head_classes: BTreeSet<ClassName>,
    /// Every class a member atom reads (body and head).
    read_classes: BTreeSet<ClassName>,
    /// Classes whose member-bound objects get projected somewhere in the
    /// clause: updates to these can change atom truth values.
    projected_classes: BTreeSet<ClassName>,
    /// Whether the read set is exact (see the module docs).
    local: bool,
    /// Whether the head carries Skolem key atoms.
    has_key_atoms: bool,
}

fn walk_term(
    term: &Term,
    bound: &BTreeMap<&Var, &ClassName>,
    projected: &mut BTreeSet<ClassName>,
    local: &mut bool,
) {
    match term {
        Term::Var(_) | Term::Const(_) => {}
        Term::Proj(_, _) => match term.as_var_path() {
            Some((var, labels)) if labels.len() == 1 => match bound.get(var) {
                Some(class) => {
                    projected.insert((*class).clone());
                }
                None => *local = false,
            },
            _ => *local = false,
        },
        Term::Record(fields) => {
            for (_, t) in fields {
                walk_term(t, bound, projected, local);
            }
        }
        Term::Variant(_, t) => walk_term(t, bound, projected, local),
        Term::Skolem(_, args) => {
            for t in args.terms() {
                walk_term(t, bound, projected, local);
            }
        }
    }
}

/// Analyse one constraint clause for incremental checking.
pub fn analyze_constraint(clause: &Clause) -> ConstraintAnalysis {
    let class = classify_constraint(clause);
    let mut bound: BTreeMap<&Var, &ClassName> = BTreeMap::new();
    let mut body_members = Vec::new();
    let mut head_classes = BTreeSet::new();
    let mut read_classes = BTreeSet::new();
    let mut local = true;
    for atom in &clause.body {
        if let Atom::Member(term, c) = atom {
            read_classes.insert(c.clone());
            match term {
                Term::Var(v) => {
                    bound.insert(v, c);
                    body_members.push((v.clone(), c.clone()));
                }
                // A body member over a computed term can gain bindings when
                // the *referenced* class grows, which seeding cannot see.
                _ => local = false,
            }
        }
    }
    let mut has_key_atoms = false;
    for atom in &clause.head {
        match atom {
            Atom::Member(term, c) => {
                read_classes.insert(c.clone());
                head_classes.insert(c.clone());
                if let Term::Var(v) = term {
                    bound.insert(v, c);
                }
            }
            Atom::Eq(s, t)
                if matches!(s, Term::Skolem(_, _)) || matches!(t, Term::Skolem(_, _)) =>
            {
                has_key_atoms = true;
            }
            _ => {}
        }
    }
    let mut projected = BTreeSet::new();
    for atom in clause.body.iter().chain(&clause.head) {
        match atom {
            Atom::Member(t, _) => walk_term(t, &bound, &mut projected, &mut local),
            Atom::Eq(s, t)
            | Atom::Neq(s, t)
            | Atom::Lt(s, t)
            | Atom::Leq(s, t)
            | Atom::InSet(s, t) => {
                walk_term(s, &bound, &mut projected, &mut local);
                walk_term(t, &bound, &mut projected, &mut local);
            }
        }
    }
    ConstraintAnalysis {
        class,
        body_members,
        head_classes,
        read_classes,
        projected_classes: projected,
        local,
        has_key_atoms,
    }
}

// ---------------------------------------------------------------------------
// Planning.
// ---------------------------------------------------------------------------

enum Plan {
    Skip,
    Full,
    /// Probe the attribute indexes: does any changed object of `class`
    /// share all `attrs` values with a *different* object?
    KeyProbe {
        class: ClassName,
        attrs: Vec<Label>,
        oids: Vec<Oid>,
    },
    /// Re-match the body seeded with each changed object and re-check the
    /// head witness for the resulting bindings.
    Seeded {
        seeds: Vec<(Var, Oid)>,
    },
}

fn single_attrs(paths: &[wol_model::Path]) -> Option<Vec<Label>> {
    paths
        .iter()
        .map(|p| match p.segments() {
            [only] => Some(only.clone()),
            _ => None,
        })
        .collect()
}

fn plan_constraint(
    idx: usize,
    analysis: &ConstraintAnalysis,
    delta: &BatchDelta,
    suspects: &BTreeSet<usize>,
) -> Plan {
    if suspects.contains(&idx) {
        // The pre-clean contract is void for this constraint: re-check it
        // from scratch regardless of the delta.
        return Plan::Full;
    }
    if delta.is_empty() {
        return Plan::Skip;
    }
    if !analysis.local {
        return Plan::Full;
    }
    let touched = analysis
        .read_classes
        .iter()
        .any(|c| delta.class(c).is_some_and(|d| !d.is_empty()));
    if !touched {
        return Plan::Skip;
    }
    // Staleness in the witness classes can break bindings that contain no
    // changed object: removals always (a witness may disappear), updates
    // only when the class is actually projected (bare membership survives
    // an update).
    for c in &analysis.head_classes {
        if let Some(d) = delta.class(c) {
            if !d.removed.is_empty() {
                return Plan::Full;
            }
            if !d.updated.is_empty() && analysis.projected_classes.contains(c) {
                return Plan::Full;
            }
        }
    }
    match &analysis.class {
        ConstraintClass::SkolemKey(okey)
            if analysis.body_members.len() == 1 && analysis.body_members[0].1 == okey.class =>
        {
            let Some(attrs) = single_attrs(
                &okey
                    .parts
                    .iter()
                    .map(|(_, p)| p.clone())
                    .collect::<Vec<_>>(),
            ) else {
                return Plan::Full;
            };
            let oids = delta
                .class(&okey.class)
                .map(|d| d.changed().into_iter().collect())
                .unwrap_or_default();
            Plan::KeyProbe {
                class: okey.class.clone(),
                attrs,
                oids,
            }
        }
        ConstraintClass::MergeKey { class, paths } => match single_attrs(paths) {
            Some(attrs) => {
                let oids = delta
                    .class(class)
                    .map(|d| d.changed().into_iter().collect())
                    .unwrap_or_default();
                Plan::KeyProbe {
                    class: class.clone(),
                    attrs,
                    oids,
                }
            }
            None => Plan::Full,
        },
        _ if !analysis.has_key_atoms => {
            let mut seeds = Vec::new();
            for (var, class) in &analysis.body_members {
                if let Some(d) = delta.class(class) {
                    for oid in d.changed() {
                        seeds.push((var.clone(), oid));
                    }
                }
            }
            Plan::Seeded { seeds }
        }
        // A key-bearing head in a shape we cannot probe: re-check fully.
        _ => Plan::Full,
    }
}

// ---------------------------------------------------------------------------
// Delta detection.
// ---------------------------------------------------------------------------

/// Commutative per-chunk detection result: violation counts and ordering
/// never depend on how chunks are partitioned.
#[derive(Clone, Copy, Default)]
struct Detection {
    dirty: bool,
    checked: u64,
    probes: u64,
}

impl Detection {
    fn merge(&mut self, other: Detection) {
        self.dirty |= other.dirty;
        self.checked += other.checked;
        self.probes += other.probes;
    }
}

fn detect_key_probe(
    dbs: &Databases<'_>,
    class: &ClassName,
    attrs: &[Label],
    oids: &[Oid],
) -> Detection {
    let mut out = Detection::default();
    for oid in oids {
        out.checked += 1;
        let Some(value) = dbs.value_of(oid) else {
            continue;
        };
        let mut parts: Vec<&Value> = Vec::with_capacity(attrs.len());
        for attr in attrs {
            match value.project(attr) {
                Some(v) => parts.push(v),
                // An object without the key attribute never produces a body
                // binding, so the full check skips it too.
                None => break,
            }
        }
        if parts.len() != attrs.len() {
            continue;
        }
        out.probes += 1;
        for candidate in dbs.lookup_by_attr(class, &attrs[0], parts[0]) {
            if &candidate == oid {
                continue;
            }
            let Some(cv) = dbs.value_of(&candidate) else {
                continue;
            };
            if attrs
                .iter()
                .zip(&parts)
                .all(|(attr, part)| cv.project(attr) == Some(*part))
            {
                out.dirty = true;
            }
        }
    }
    out
}

fn detect_seeded(dbs: &Databases<'_>, clause: &Clause, seeds: &[(Var, Oid)]) -> Result<Detection> {
    let mut out = Detection::default();
    let mut skolem = SkolemFactory::new();
    for (var, oid) in seeds {
        out.checked += 1;
        let mut init = Bindings::new();
        init.insert(var.clone(), Value::Oid(oid.clone()));
        let bindings = match_body(&clause.body, dbs, &mut skolem, init)?;
        if clause.head.is_empty() {
            continue;
        }
        for binding in bindings {
            let satisfied = match match_body(&clause.head, dbs, &mut skolem, binding.clone()) {
                Ok(list) => !list.is_empty(),
                Err(_) => false,
            };
            if !satisfied {
                out.dirty = true;
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The batch checker.
// ---------------------------------------------------------------------------

/// Validate a mutation batch against `clauses` incrementally.
///
/// `dbs` must be the *post-batch* state whose maintained attribute indexes
/// the key probes reuse; `delta` is the batch's net effect. `suspects` holds
/// indices of clauses whose pre-batch cleanliness is not known (e.g. they
/// were violated by a previously *committed* batch); they are re-checked in
/// full. See the module docs for the exactness argument.
pub fn check_batch(
    clauses: &[&Clause],
    dbs: &Databases<'_>,
    delta: &BatchDelta,
    parallelism: Parallelism,
    suspects: &BTreeSet<usize>,
) -> Result<BatchCheck> {
    let analyses: Vec<ConstraintAnalysis> = clauses.iter().map(|c| analyze_constraint(c)).collect();
    let plans: Vec<Plan> = analyses
        .iter()
        .enumerate()
        .map(|(idx, a)| plan_constraint(idx, a, delta, suspects))
        .collect();

    let threads = parallelism.threads();

    // Phase A: delta detection, chunk-partitioned over the pool. Chunks are
    // processed exhaustively (no early exit), so `checked`/`probes` are
    // partition-invariant sums and `dirty` a partition-invariant OR.
    let mut jobs: Vec<Job<'_, (usize, Result<Detection>)>> = Vec::new();
    for (idx, plan) in plans.iter().enumerate() {
        match plan {
            Plan::KeyProbe { class, attrs, oids } => {
                for range in chunk_ranges(oids.len(), threads) {
                    let chunk = &oids[range];
                    jobs.push(Box::new(move || {
                        (idx, Ok(detect_key_probe(dbs, class, attrs, chunk)))
                    }));
                }
            }
            Plan::Seeded { seeds } => {
                let clause = clauses[idx];
                for range in chunk_ranges(seeds.len(), threads) {
                    let chunk = &seeds[range];
                    jobs.push(Box::new(move || (idx, detect_seeded(dbs, clause, chunk))));
                }
            }
            Plan::Skip | Plan::Full => {}
        }
    }
    let detection_results = run_jobs(parallelism, jobs);
    let mut detections: Vec<Detection> = vec![Detection::default(); clauses.len()];
    for (idx, result) in detection_results {
        detections[idx].merge(result?);
    }

    // Phase B: canonical full re-checks for Full plans and dirty detections,
    // one job per constraint, results in clause (submission) order.
    type FullJob<'a> = Job<'a, (usize, Result<(Vec<Violation>, u64)>)>;
    let mut full_jobs: Vec<FullJob<'_>> = Vec::new();
    for (idx, plan) in plans.iter().enumerate() {
        let full = match plan {
            Plan::Full => true,
            Plan::KeyProbe { .. } | Plan::Seeded { .. } => detections[idx].dirty,
            Plan::Skip => false,
        };
        if full {
            let clause = clauses[idx];
            full_jobs.push(Box::new(move || {
                (idx, check_constraint_counted(clause, dbs))
            }));
        }
    }
    let mut full_results: BTreeMap<usize, (Vec<Violation>, u64)> = BTreeMap::new();
    for (idx, result) in run_jobs(parallelism, full_jobs) {
        full_results.insert(idx, result?);
    }

    let mut entries = Vec::with_capacity(clauses.len());
    let mut violations = Vec::new();
    for (idx, (clause, plan)) in clauses.iter().zip(&plans).enumerate() {
        let constraint = clause
            .label
            .clone()
            .unwrap_or_else(|| "<unlabelled>".to_string());
        let detection = detections[idx];
        let entry = match (plan, full_results.remove(&idx)) {
            (Plan::Skip, _) => CertEntry {
                constraint,
                mode: CheckMode::Skipped,
                checked: 0,
                probes: 0,
                violations: Vec::new(),
            },
            (_, Some((found, full_checked))) => CertEntry {
                constraint,
                mode: CheckMode::Full,
                checked: detection.checked + full_checked,
                probes: detection.probes,
                violations: found,
            },
            (_, None) => CertEntry {
                constraint,
                mode: CheckMode::Delta,
                checked: detection.checked,
                probes: detection.probes,
                violations: Vec::new(),
            },
        };
        violations.extend(entry.violations.iter().cloned());
        entries.push(entry);
    }
    Ok(BatchCheck {
        violations,
        certificate: ConstraintCertificate { entries },
    })
}

/// Run jobs inline when sequential (or trivial), otherwise on the shared
/// pool. Either way results come back in submission order.
fn run_jobs<T: Send>(parallelism: Parallelism, jobs: Vec<Job<'_, T>>) -> Vec<T> {
    if parallelism.is_sequential() || jobs.len() <= 1 {
        jobs.into_iter().map(|job| job()).collect()
    } else {
        WorkerPool::shared(parallelism).scope(jobs)
    }
}

/// Replay a certificate against a snapshot: every entry's recorded outcome
/// — clean or the exact violation list — must agree with a from-scratch
/// [`check_constraint`](super::check_constraint) of the matching clause.
/// Any disagreement (or a label mismatch) is an [`EngineError::Certificate`].
pub fn recheck(
    certificate: &ConstraintCertificate,
    clauses: &[&Clause],
    dbs: &Databases<'_>,
) -> Result<RecheckReport> {
    if certificate.entries.len() != clauses.len() {
        return Err(EngineError::Certificate(format!(
            "certificate covers {} constraint(s) but {} were supplied",
            certificate.entries.len(),
            clauses.len()
        )));
    }
    let mut violations = 0;
    for (entry, clause) in certificate.entries.iter().zip(clauses) {
        let name = clause
            .label
            .clone()
            .unwrap_or_else(|| "<unlabelled>".to_string());
        if entry.constraint != name {
            return Err(EngineError::Certificate(format!(
                "certificate entry is for `{}` but the clause is `{name}`",
                entry.constraint
            )));
        }
        let (found, _) = check_constraint_counted(clause, dbs)?;
        if found != entry.violations {
            return Err(EngineError::Certificate(format!(
                "constraint `{name}`: certificate records {} violation(s) but the snapshot \
                 re-check found {}",
                entry.violations.len(),
                found.len()
            )));
        }
        violations += found.len();
    }
    Ok(RecheckReport {
        constraints: certificate.entries.len(),
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_lang::parse_clause;
    use wol_model::{Instance, MutationBatch};

    fn user(email: &str, name: &str) -> Value {
        Value::record([("email", Value::str(email)), ("name", Value::str(name))])
    }

    fn setup() -> Instance {
        let mut inst = Instance::new("registry");
        let users = ClassName::new("UserS");
        for i in 0..20 {
            inst.insert_fresh(&users, user(&format!("u{i}@x"), &format!("user {i}")));
        }
        inst
    }

    fn merge_clause() -> Clause {
        parse_clause("S1: X = Y <= X in UserS, Y in UserS, X.email = Y.email").unwrap()
    }

    fn apply(inst: &mut Instance, batch: MutationBatch) -> BatchDelta {
        inst.apply_batch(&batch).expect("batch applies")
    }

    #[test]
    fn untouched_constraints_are_skipped() {
        let mut inst = setup();
        inst.insert_fresh(
            &ClassName::new("OtherS"),
            Value::record([("x", Value::int(1))]),
        );
        let clause = merge_clause();
        let batch = MutationBatch::new().insert("OtherS", Value::record([("x", Value::int(2))]));
        let delta = apply(&mut inst, batch);
        let dbs = Databases::new(&[&inst]);
        let check = check_batch(
            &[&clause],
            &dbs,
            &delta,
            Parallelism::sequential(),
            &BTreeSet::new(),
        )
        .unwrap();
        assert_eq!(check.certificate.entries[0].mode, CheckMode::Skipped);
        assert!(check.violations.is_empty());
    }

    #[test]
    fn clean_inserts_stay_in_delta_mode_and_match_the_full_check() {
        let mut inst = setup();
        let clause = merge_clause();
        let batch = MutationBatch::new().insert("UserS", user("fresh@x", "fresh"));
        let delta = apply(&mut inst, batch);
        let dbs = Databases::new(&[&inst]);
        let check = check_batch(
            &[&clause],
            &dbs,
            &delta,
            Parallelism::sequential(),
            &BTreeSet::new(),
        )
        .unwrap();
        assert_eq!(check.certificate.entries[0].mode, CheckMode::Delta);
        assert!(check.certificate.entries[0].probes >= 1);
        assert_eq!(
            check.violations,
            crate::constraints::check_constraints(&[&clause], &dbs).unwrap()
        );
    }

    #[test]
    fn duplicate_key_escalates_to_a_canonical_full_check() {
        let mut inst = setup();
        let clause = merge_clause();
        let batch = MutationBatch::new().insert("UserS", user("u3@x", "imposter"));
        let delta = apply(&mut inst, batch);
        let dbs = Databases::new(&[&inst]);
        for threads in [1usize, 2, 4, 8] {
            let check = check_batch(
                &[&clause],
                &dbs,
                &delta,
                Parallelism::new(threads),
                &BTreeSet::new(),
            )
            .unwrap();
            assert_eq!(check.certificate.entries[0].mode, CheckMode::Full);
            let full = crate::constraints::check_constraints(&[&clause], &dbs).unwrap();
            assert!(!full.is_empty());
            assert_eq!(check.violations, full);
        }
    }

    #[test]
    fn certificates_round_trip_and_reject_tampering() {
        let mut inst = setup();
        let clause = merge_clause();
        let batch = MutationBatch::new().insert("UserS", user("u5@x", "imposter"));
        let delta = apply(&mut inst, batch);
        let dbs = Databases::new(&[&inst]);
        let check = check_batch(
            &[&clause],
            &dbs,
            &delta,
            Parallelism::sequential(),
            &BTreeSet::new(),
        )
        .unwrap();
        let bytes = check.certificate.encode();
        let decoded = ConstraintCertificate::decode(&bytes).unwrap();
        assert_eq!(decoded, check.certificate);
        assert_eq!(decoded.encode(), bytes);
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            assert!(
                ConstraintCertificate::decode(&bad).is_err(),
                "flip at byte {at} must be rejected"
            );
        }
        assert!(recheck(&check.certificate, &[&clause], &dbs).is_ok());
    }

    #[test]
    fn recheck_rejects_a_doctored_certificate() {
        let mut inst = setup();
        let clause = merge_clause();
        let batch = MutationBatch::new().insert("UserS", user("u7@x", "imposter"));
        let delta = apply(&mut inst, batch);
        let dbs = Databases::new(&[&inst]);
        let check = check_batch(
            &[&clause],
            &dbs,
            &delta,
            Parallelism::sequential(),
            &BTreeSet::new(),
        )
        .unwrap();
        let mut doctored = check.certificate.clone();
        doctored.entries[0].violations.clear();
        assert!(matches!(
            recheck(&doctored, &[&clause], &dbs),
            Err(EngineError::Certificate(_))
        ));
    }

    #[test]
    fn suspect_constraints_are_rechecked_in_full() {
        let mut inst = setup();
        let clause = merge_clause();
        let batch = MutationBatch::new().insert("UserS", user("u9@x", "imposter"));
        apply(&mut inst, batch);
        // A later batch touching nothing related: without the suspect flag
        // the violated constraint would be skipped.
        let other = MutationBatch::new().insert("OtherS", Value::record([("x", Value::int(1))]));
        let delta = apply(&mut inst, other);
        let dbs = Databases::new(&[&inst]);
        let skipped = check_batch(
            &[&clause],
            &dbs,
            &delta,
            Parallelism::sequential(),
            &BTreeSet::new(),
        )
        .unwrap();
        assert_eq!(skipped.certificate.entries[0].mode, CheckMode::Skipped);
        let suspects: BTreeSet<usize> = [0].into_iter().collect();
        let forced = check_batch(
            &[&clause],
            &dbs,
            &delta,
            Parallelism::sequential(),
            &suspects,
        )
        .unwrap();
        assert_eq!(forced.certificate.entries[0].mode, CheckMode::Full);
        assert!(!forced.violations.is_empty());
    }
}
