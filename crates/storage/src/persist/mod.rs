//! Crash-consistent persistence: write-ahead log, checksummed snapshots, and
//! recovery.
//!
//! The layer provides two durable stores built from the same primitives:
//!
//! * [`DurableInstance`] — an [`Instance`] plus [`SkolemFactory`] whose
//!   mutations are staged in memory and made durable in atomic batches by
//!   [`DurableInstance::commit`]. A crash loses at most the uncommitted
//!   batch; recovery replays the committed WAL prefix over the last snapshot
//!   and discards any torn tail.
//! * [`PipelineJournal`] — per-query durability for `morphase` pipeline
//!   runs: each applied query's target mutations and Skolem assignments form
//!   one committed batch ending in a `QueryDone` marker, so a pipeline
//!   killed between queries resumes after the last completed one instead of
//!   re-running the whole program.
//!
//! Formats are documented field-by-field in the crate-level "Durability"
//! section; fault injection for both writers lives in [`fault`].

pub mod codec;
pub mod fault;
pub mod snapshot;
pub mod wal;

use std::collections::BTreeMap;
use std::fs;
use std::io::{Seek, SeekFrom};
use std::path::{Path, PathBuf};

use wol_model::{ClassName, Instance, Oid, SkolemFactory, SkolemState, Value};

pub use fault::{FaultKind, FaultPolicy, FaultyFile};
pub use snapshot::{PipelineMeta, SnapshotData, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use wal::{replay_wal, TornTail, WalRecord, WalReplay, WalWriter};

use crate::error::StorageError;
use crate::Result;

/// What recovery found on disk and what it did with it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot file existed and was loaded.
    pub snapshot_loaded: bool,
    /// Committed WAL batches replayed over the snapshot.
    pub batches_replayed: usize,
    /// Individual records inside those batches.
    pub records_replayed: usize,
    /// Length of the committed WAL prefix kept (the file is truncated here).
    pub committed_len: u64,
    /// Present when bytes beyond the committed prefix were discarded.
    pub torn_tail: Option<TornTail>,
}

/// A WAL sink on disk, truncated to the committed prefix and positioned for
/// appending, wrapped in the fault shim.
fn open_wal_sink(
    path: &Path,
    committed_len: u64,
    fault: Option<FaultPolicy>,
) -> Result<FaultyFile<fs::File>> {
    let display = path.display().to_string();
    let mut file = fs::OpenOptions::new()
        .create(true)
        .read(true)
        .write(true)
        .truncate(false)
        .open(path)
        .map_err(|e| StorageError::io(&display, e))?;
    file.set_len(committed_len)
        .and_then(|()| file.seek(SeekFrom::End(0)).map(|_| ()))
        .map_err(|e| StorageError::io(&display, e))?;
    Ok(match fault {
        Some(policy) => FaultyFile::with_policy(file, policy),
        None => FaultyFile::new(file),
    })
}

fn read_file_or_empty(path: &Path) -> Result<Vec<u8>> {
    match fs::read(path) {
        Ok(bytes) => Ok(bytes),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(StorageError::io(path.display().to_string(), e)),
    }
}

fn remove_if_present(path: &Path) -> Result<()> {
    match fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(StorageError::io(path.display().to_string(), e)),
    }
}

fn sync_wal(wal: &mut WalWriter<FaultyFile<fs::File>>, path: &Path) -> Result<()> {
    wal.sink_mut()
        .get_ref()
        .sync_data()
        .map_err(|e| StorageError::io(path.display().to_string(), e))
}

// ---------------------------------------------------------------------------
// DurableInstance
// ---------------------------------------------------------------------------

/// A crash-consistent instance: in-memory state plus an on-disk snapshot and
/// WAL under a directory.
///
/// Mutate through [`instance_mut`](DurableInstance::instance_mut) and
/// [`skolem_mut`](DurableInstance::skolem_mut), then make the accumulated
/// changes durable with one atomic [`commit`](DurableInstance::commit).
/// Changes not yet committed are lost on crash — that is the batch-atomicity
/// contract, never a torn half-batch. After a commit error (injected fault or
/// real I/O failure) the writer is dead: drop the value and
/// [`open`](DurableInstance::open) the directory again, which recovers
/// exactly the committed prefix.
#[derive(Debug)]
pub struct DurableInstance {
    snap_path: PathBuf,
    wal_path: PathBuf,
    instance: Instance,
    skolem: SkolemFactory,
    wal: WalWriter<FaultyFile<fs::File>>,
    skolem_watermark: BTreeMap<ClassName, u64>,
    oid_watermark: BTreeMap<ClassName, u64>,
}

impl DurableInstance {
    /// Name of the snapshot file inside the store directory.
    pub const SNAPSHOT_FILE: &'static str = "store.snap";
    /// Name of the write-ahead-log file inside the store directory.
    pub const WAL_FILE: &'static str = "store.wal";

    /// Open (or create) the durable store in `dir`, recovering any existing
    /// state: load the snapshot, replay committed WAL batches, truncate the
    /// torn tail. `schema_name` labels a freshly created store; an existing
    /// snapshot's own schema name wins on recovery.
    pub fn open(dir: &Path, schema_name: &str) -> Result<(Self, RecoveryReport)> {
        fs::create_dir_all(dir).map_err(|e| StorageError::io(dir.display().to_string(), e))?;
        let snap_path = dir.join(Self::SNAPSHOT_FILE);
        let wal_path = dir.join(Self::WAL_FILE);

        let mut report = RecoveryReport::default();
        let (mut instance, skolem_state, first_seq) =
            match snapshot::load_snapshot_file(&snap_path)? {
                Some(data) => {
                    report.snapshot_loaded = true;
                    (data.instance, data.skolem, data.wal_seq)
                }
                None => (Instance::new(schema_name), SkolemState::default(), 0),
            };
        let mut skolem = SkolemFactory::from_state(skolem_state);

        let wal_bytes = read_file_or_empty(&wal_path)?;
        let replay = replay_wal(&wal_bytes, &wal_path.display().to_string(), first_seq);
        report.batches_replayed = replay.batches.len();
        report.committed_len = replay.committed_len;
        report.torn_tail = replay.tail.clone();
        for batch in &replay.batches {
            for record in batch {
                report.records_replayed += 1;
                wal::apply_record(record, &mut instance, &mut skolem)?;
            }
        }

        let sink = open_wal_sink(&wal_path, replay.committed_len, None)?;
        let wal = WalWriter::new(sink, replay.next_seq, replay.committed_len);
        instance.begin_mutation_log();
        let skolem_watermark = skolem.counter_snapshot();
        let oid_watermark = instance
            .oid_counters()
            .map(|(c, n)| (c.clone(), n))
            .collect();
        Ok((
            DurableInstance {
                snap_path,
                wal_path,
                instance,
                skolem,
                wal,
                skolem_watermark,
                oid_watermark,
            },
            report,
        ))
    }

    /// The in-memory instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Mutable access to the instance; every insert/update/remove made here
    /// is staged for the next [`commit`](DurableInstance::commit).
    pub fn instance_mut(&mut self) -> &mut Instance {
        &mut self.instance
    }

    /// The Skolem factory.
    pub fn skolem(&self) -> &SkolemFactory {
        &self.skolem
    }

    /// Mutable access to the Skolem factory; new assignments are staged for
    /// the next commit.
    pub fn skolem_mut(&mut self) -> &mut SkolemFactory {
        &mut self.skolem
    }

    /// `Mk_class(key)`: the object identity for a key, minting (and staging)
    /// a fresh assignment the first time the key is seen.
    pub fn mk(&mut self, class: &ClassName, key: &Value) -> Oid {
        self.skolem.mk(class, key)
    }

    /// Records staged since the last commit (mutations drained from the
    /// instance log, Skolem assignments and fresh-identity counters diffed
    /// against their watermarks).
    fn staged_records(&mut self) -> Vec<WalRecord> {
        let mut records: Vec<WalRecord> = self
            .instance
            .take_mutation_log()
            .into_iter()
            .map(wal::record_of_mutation)
            .collect();
        for (class, key, oid) in self.skolem.assignments_since(&self.skolem_watermark) {
            records.push(WalRecord::SkolemAssign(class, key, oid));
        }
        for (class, count) in self.instance.oid_counters() {
            if self.oid_watermark.get(class).copied().unwrap_or(0) != count {
                records.push(WalRecord::OidCounter(class.clone(), count));
            }
        }
        records
    }

    /// Commit everything staged since the last commit as one atomic batch,
    /// synced to disk before returning. Returns the WAL length. A no-op when
    /// nothing is staged.
    pub fn commit(&mut self) -> Result<u64> {
        let records = self.staged_records();
        if records.is_empty() {
            return Ok(self.wal.offset());
        }
        let path = self.wal_path.display().to_string();
        let end = self.wal.append_batch(&records, &path)?;
        sync_wal(&mut self.wal, &self.wal_path)?;
        self.skolem_watermark = self.skolem.counter_snapshot();
        self.oid_watermark = self
            .instance
            .oid_counters()
            .map(|(c, n)| (c.clone(), n))
            .collect();
        Ok(end)
    }

    /// Compact the store: commit anything still staged, atomically snapshot
    /// the state, then truncate the WAL. Recovery afterwards loads the
    /// snapshot and replays nothing.
    pub fn compact(&mut self) -> Result<()> {
        self.commit()?;
        let bytes = snapshot::encode_snapshot(
            &self.instance,
            &self.skolem.export_state(),
            self.wal.next_seq(),
            None,
        );
        snapshot::save_snapshot_file(&self.snap_path, &bytes, None)?;
        let sink = open_wal_sink(&self.wal_path, 0, None)?;
        self.wal = WalWriter::new(sink, self.wal.next_seq(), 0);
        Ok(())
    }

    /// Install (or clear) a fault policy on the WAL sink — test hook for
    /// crash injection at a byte offset of this session's appends.
    pub fn set_wal_fault(&mut self, policy: Option<FaultPolicy>) {
        self.wal.sink_mut().set_policy(policy);
    }

    /// Length of the committed WAL in bytes.
    pub fn wal_len(&self) -> u64 {
        self.wal.offset()
    }

    /// Path of the WAL file (test hook for out-of-band corruption).
    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }

    /// Path of the snapshot file.
    pub fn snapshot_path(&self) -> &Path {
        &self.snap_path
    }
}

// ---------------------------------------------------------------------------
// PipelineJournal
// ---------------------------------------------------------------------------

/// What opening a pipeline journal recovered.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalRecovery {
    /// The target instance as of the last durable point.
    pub instance: Instance,
    /// The Skolem factory state as of the last durable point.
    pub skolem: SkolemState,
    /// Number of leading queries already applied durably; the resuming run
    /// skips these.
    pub completed: u64,
    /// True when existing journal files belonged to a different program
    /// (fingerprint mismatch) and were discarded.
    pub reset: bool,
    /// Snapshot/WAL recovery details.
    pub report: RecoveryReport,
}

/// Per-query durability journal for pipeline runs (see the module docs).
///
/// The journal's snapshot carries a [`PipelineMeta`] binding it to one
/// compiled program via a fingerprint; every WAL batch repeats that
/// fingerprint, so state left by a *different* program is detected and reset
/// rather than resumed into silent corruption.
#[derive(Debug)]
pub struct PipelineJournal {
    snap_path: PathBuf,
    wal_path: PathBuf,
    fingerprint: u64,
    completed: u64,
    wal: WalWriter<FaultyFile<fs::File>>,
    oid_watermark: BTreeMap<ClassName, u64>,
}

impl PipelineJournal {
    /// Name of the journal snapshot file inside the journal directory.
    pub const SNAPSHOT_FILE: &'static str = "pipeline.snap";
    /// Name of the journal WAL file inside the journal directory.
    pub const WAL_FILE: &'static str = "pipeline.wal";

    /// Open (or create) the journal in `dir` for the program identified by
    /// `fingerprint`. Existing state from the same program is recovered
    /// (snapshot + committed WAL batches, torn tail discarded); state from a
    /// different program is deleted and the journal starts fresh. A fault
    /// policy, when given, is installed on the WAL sink.
    pub fn open(
        dir: &Path,
        fingerprint: u64,
        target_schema: &str,
        fault: Option<FaultPolicy>,
    ) -> Result<(Self, JournalRecovery)> {
        fs::create_dir_all(dir).map_err(|e| StorageError::io(dir.display().to_string(), e))?;
        let snap_path = dir.join(Self::SNAPSHOT_FILE);
        let wal_path = dir.join(Self::WAL_FILE);
        let mut reset = false;
        // At most one retry: a fingerprint conflict wipes the journal, and a
        // wiped journal cannot conflict again.
        for _ in 0..2 {
            match Self::try_open(&snap_path, &wal_path, fingerprint, target_schema)? {
                Some((instance, skolem, completed, replay, report)) => {
                    let sink = open_wal_sink(&wal_path, replay.committed_len, fault)?;
                    let wal = WalWriter::new(sink, replay.next_seq, replay.committed_len);
                    let oid_watermark = instance
                        .oid_counters()
                        .map(|(c, n)| (c.clone(), n))
                        .collect();
                    let journal = PipelineJournal {
                        snap_path,
                        wal_path,
                        fingerprint,
                        completed,
                        wal,
                        oid_watermark,
                    };
                    let recovery = JournalRecovery {
                        instance,
                        skolem,
                        completed,
                        reset,
                        report,
                    };
                    return Ok((journal, recovery));
                }
                None => {
                    reset = true;
                    remove_if_present(&snap_path)?;
                    remove_if_present(&wal_path)?;
                }
            }
        }
        unreachable!("a wiped journal always opens")
    }

    /// One open attempt. `None` means the on-disk state belongs to a
    /// different program and must be wiped.
    #[allow(clippy::type_complexity)]
    fn try_open(
        snap_path: &Path,
        wal_path: &Path,
        fingerprint: u64,
        target_schema: &str,
    ) -> Result<Option<(Instance, SkolemState, u64, WalReplay, RecoveryReport)>> {
        let mut report = RecoveryReport::default();
        let (mut instance, skolem_state, first_seq, base_completed) =
            match snapshot::load_snapshot_file(snap_path)? {
                Some(data) => match data.meta {
                    Some(meta) if meta.fingerprint == fingerprint => {
                        report.snapshot_loaded = true;
                        (data.instance, data.skolem, data.wal_seq, meta.completed)
                    }
                    _ => return Ok(None),
                },
                None => {
                    // A journal always has a snapshot on disk, even before the
                    // first query commits: write the empty baseline now.
                    let fresh = Instance::new(target_schema);
                    let bytes = snapshot::encode_snapshot(
                        &fresh,
                        &SkolemState::default(),
                        0,
                        Some(PipelineMeta {
                            fingerprint,
                            completed: 0,
                        }),
                    );
                    snapshot::save_snapshot_file(snap_path, &bytes, None)?;
                    (fresh, SkolemState::default(), 0, 0)
                }
            };
        let mut skolem = SkolemFactory::from_state(skolem_state);
        let wal_bytes = read_file_or_empty(wal_path)?;
        let replay = replay_wal(&wal_bytes, &wal_path.display().to_string(), first_seq);
        report.batches_replayed = replay.batches.len();
        report.committed_len = replay.committed_len;
        report.torn_tail = replay.tail.clone();
        let mut completed = base_completed;
        for batch in &replay.batches {
            for record in batch {
                match record {
                    WalRecord::Fingerprint(fp) if *fp != fingerprint => return Ok(None),
                    WalRecord::QueryDone(index) => completed = completed.max(index + 1),
                    _ => {}
                }
                report.records_replayed += 1;
                wal::apply_record(record, &mut instance, &mut skolem)?;
            }
        }
        Ok(Some((
            instance,
            skolem.export_state(),
            completed,
            replay,
            report,
        )))
    }

    /// Number of leading queries already durable.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Durably record query `index` as applied: its target mutations, the
    /// Skolem assignments it minted, and the fresh-identity counters it
    /// advanced, as one committed batch ending in a `QueryDone` marker.
    pub fn record_query(
        &mut self,
        index: u64,
        mutations: Vec<wol_model::Mutation>,
        assignments: Vec<(ClassName, Value, Oid)>,
        target: &Instance,
    ) -> Result<()> {
        let mut records = vec![WalRecord::Fingerprint(self.fingerprint)];
        records.extend(mutations.into_iter().map(wal::record_of_mutation));
        records.extend(
            assignments
                .into_iter()
                .map(|(class, key, oid)| WalRecord::SkolemAssign(class, key, oid)),
        );
        for (class, count) in target.oid_counters() {
            if self.oid_watermark.get(class).copied().unwrap_or(0) != count {
                records.push(WalRecord::OidCounter(class.clone(), count));
            }
        }
        records.push(WalRecord::QueryDone(index));
        let path = self.wal_path.display().to_string();
        self.wal.append_batch(&records, &path)?;
        sync_wal(&mut self.wal, &self.wal_path)?;
        self.completed = self.completed.max(index + 1);
        self.oid_watermark = target.oid_counters().map(|(c, n)| (c.clone(), n)).collect();
        Ok(())
    }

    /// Finish the run: atomically snapshot the final target (with progress
    /// metadata) and truncate the WAL.
    pub fn finish(&mut self, target: &Instance, skolem: &SkolemState) -> Result<()> {
        let bytes = snapshot::encode_snapshot(
            target,
            skolem,
            self.wal.next_seq(),
            Some(PipelineMeta {
                fingerprint: self.fingerprint,
                completed: self.completed,
            }),
        );
        snapshot::save_snapshot_file(&self.snap_path, &bytes, None)?;
        let sink = open_wal_sink(&self.wal_path, 0, None)?;
        self.wal = WalWriter::new(sink, self.wal.next_seq(), 0);
        Ok(())
    }

    /// Install (or clear) a fault policy on the WAL sink.
    pub fn set_wal_fault(&mut self, policy: Option<FaultPolicy>) {
        self.wal.sink_mut().set_policy(policy);
    }

    /// Path of the journal WAL file (test hook).
    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }

    /// Path of the journal snapshot file (test hook).
    pub fn snapshot_path(&self) -> &Path {
        &self.snap_path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wol-persist-{label}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn city(name: &str, pop: i64) -> Value {
        Value::record([("name", Value::str(name)), ("pop", Value::int(pop))])
    }

    #[test]
    fn commit_then_reopen_recovers_everything() {
        let dir = temp_dir("basic");
        let class = ClassName::new("CityT");
        let markers = ClassName::new("MarkerT");
        let (reference, report) = {
            let (mut store, report) = DurableInstance::open(&dir, "euro").unwrap();
            let paris = store.mk(&class, &Value::str("Paris"));
            store
                .instance_mut()
                .insert(paris.clone(), city("Paris", 2_100_000))
                .unwrap();
            store
                .instance_mut()
                .insert_fresh(&markers, city("Lyon", 500_000));
            store.commit().unwrap();
            store
                .instance_mut()
                .update(&paris, city("Paris", 2_200_000))
                .unwrap();
            store.commit().unwrap();
            (store.instance().clone(), report)
        };
        assert!(!report.snapshot_loaded);

        let (store, report) = DurableInstance::open(&dir, "euro").unwrap();
        assert_eq!(report.batches_replayed, 2);
        assert_eq!(report.torn_tail, None);
        assert_eq!(store.instance().deep_eq_report(&reference), None);
        assert_eq!(store.instance(), &reference);
        // The recovered factory resumes minting where it left off.
        assert_eq!(store.skolem().counter(&class), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_changes_are_lost_committed_ones_kept() {
        let dir = temp_dir("uncommitted");
        let class = ClassName::new("CityT");
        {
            let (mut store, _) = DurableInstance::open(&dir, "euro").unwrap();
            store.instance_mut().insert_fresh(&class, city("Paris", 1));
            store.commit().unwrap();
            // Staged but never committed: must vanish on recovery.
            store.instance_mut().insert_fresh(&class, city("Ghost", 0));
        }
        let (store, _) = DurableInstance::open(&dir, "euro").unwrap();
        assert_eq!(store.instance().extent_size(&class), 1);
        // The fresh-identity counter also rewinds to the committed state, so
        // the recovered run re-mints the same identity the lost one had.
        assert_eq!(store.instance().oid_counter(&class), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_crash_mid_append_loses_only_that_batch() {
        let dir = temp_dir("fault");
        let class = ClassName::new("CityT");
        let reference = {
            let (mut store, _) = DurableInstance::open(&dir, "euro").unwrap();
            store.instance_mut().insert_fresh(&class, city("Paris", 1));
            store.commit().unwrap();
            let committed = store.instance().clone();
            // Crash 5 bytes into the second batch's write.
            let fault_at = store.wal_len() + 5;
            store.set_wal_fault(Some(FaultPolicy::torn_at(fault_at)));
            store.instance_mut().insert_fresh(&class, city("Lyon", 2));
            assert!(store.commit().is_err());
            committed
        };
        let (store, report) = DurableInstance::open(&dir, "euro").unwrap();
        assert!(report.torn_tail.is_some());
        assert_eq!(store.instance().deep_eq_report(&reference), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_state_and_empties_the_wal() {
        let dir = temp_dir("compact");
        let class = ClassName::new("CityT");
        {
            let (mut store, _) = DurableInstance::open(&dir, "euro").unwrap();
            for i in 0..10 {
                store
                    .instance_mut()
                    .insert_fresh(&class, city(&format!("c{i}"), i));
                store.commit().unwrap();
            }
            let before = store.wal_len();
            assert!(before > 0);
            store.compact().unwrap();
            assert_eq!(store.wal_len(), 0);
            // Appends after compaction continue the sequence.
            store.instance_mut().insert_fresh(&class, city("late", 99));
            store.commit().unwrap();
        }
        let (store, report) = DurableInstance::open(&dir, "euro").unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.batches_replayed, 1);
        assert_eq!(store.instance().extent_size(&class), 11);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_resumes_after_completed_queries() {
        let dir = temp_dir("journal");
        let class = ClassName::new("CloneT");
        let fp = 0xFEED_F00D;
        // Run "queries" 0 and 1 durably, then crash before 2.
        {
            let (mut journal, rec) = PipelineJournal::open(&dir, fp, "target", None).unwrap();
            assert_eq!(rec.completed, 0);
            assert!(!rec.reset);
            let mut target = rec.instance;
            let mut factory = SkolemFactory::from_state(rec.skolem);
            for q in 0..2u64 {
                target.begin_mutation_log();
                let before = factory.counter_snapshot();
                let oid = factory.mk(&class, &Value::str(format!("k{q}")));
                target
                    .insert(oid, city(&format!("k{q}"), q as i64))
                    .unwrap();
                let mutations = target.take_mutation_log();
                let assignments = factory.assignments_since(&before);
                journal
                    .record_query(q, mutations, assignments, &target)
                    .unwrap();
            }
        }
        // Resume: queries 0 and 1 are already durable.
        let (mut journal, rec) = PipelineJournal::open(&dir, fp, "target", None).unwrap();
        assert_eq!(rec.completed, 2);
        assert_eq!(rec.instance.extent_size(&class), 2);
        let mut factory = SkolemFactory::from_state(rec.skolem.clone());
        // Re-minting an already-seen key returns the original identity.
        assert_eq!(
            factory.mk(&class, &Value::str("k0")).id(),
            0,
            "memo survived recovery"
        );
        journal
            .finish(&rec.instance, &factory.export_state())
            .unwrap();
        // After finish the WAL is empty and the snapshot holds everything.
        let (_, rec) = PipelineJournal::open(&dir, fp, "target", None).unwrap();
        assert_eq!(rec.completed, 2);
        assert_eq!(rec.report.batches_replayed, 0);
        assert!(rec.report.snapshot_loaded);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_resets_on_fingerprint_mismatch() {
        let dir = temp_dir("journal-fp");
        let class = ClassName::new("CloneT");
        {
            let (mut journal, rec) = PipelineJournal::open(&dir, 111, "target", None).unwrap();
            let mut target = rec.instance;
            target.begin_mutation_log();
            target.insert_fresh(&class, city("a", 1));
            let mutations = target.take_mutation_log();
            journal.record_query(0, mutations, vec![], &target).unwrap();
        }
        // A different program must not resume that state.
        let (_, rec) = PipelineJournal::open(&dir, 222, "target", None).unwrap();
        assert!(rec.reset);
        assert_eq!(rec.completed, 0);
        assert!(rec.instance.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_crash_mid_record_discards_only_that_query() {
        let dir = temp_dir("journal-crash");
        let class = ClassName::new("CloneT");
        let fp = 42;
        {
            let (mut journal, rec) = PipelineJournal::open(&dir, fp, "target", None).unwrap();
            let mut target = rec.instance;
            target.begin_mutation_log();
            target.insert_fresh(&class, city("a", 1));
            journal
                .record_query(0, target.take_mutation_log(), vec![], &target)
                .unwrap();
            // Crash partway through recording query 1.
            journal.set_wal_fault(Some(FaultPolicy::torn_at(journal.wal.offset() + 7)));
            target.insert_fresh(&class, city("b", 2));
            assert!(journal
                .record_query(1, target.take_mutation_log(), vec![], &target)
                .is_err());
        }
        let (_, rec) = PipelineJournal::open(&dir, fp, "target", None).unwrap();
        assert_eq!(rec.completed, 1, "query 1's torn batch discarded");
        assert_eq!(rec.instance.extent_size(&class), 1);
        assert!(rec.report.torn_tail.is_some());
        fs::remove_dir_all(&dir).unwrap();
    }
}
