//! Abstract syntax of WOL terms, atoms and clauses.

use std::collections::BTreeSet;

use wol_model::{ClassName, Label, Value};

/// A logical variable.
pub type Var = String;

/// An identifier for a clause within a program (its index plus an optional
/// user-supplied label such as `"T1"` or `"C3"`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClauseId {
    /// Position of the clause in its program.
    pub index: usize,
    /// Optional user-facing label.
    pub label: Option<String>,
}

impl ClauseId {
    /// A clause identified by position only.
    pub fn new(index: usize) -> Self {
        ClauseId { index, label: None }
    }

    /// A clause with a user-facing label.
    pub fn labelled(index: usize, label: impl Into<String>) -> Self {
        ClauseId {
            index,
            label: Some(label.into()),
        }
    }

    /// Render the identifier for error messages.
    pub fn describe(&self) -> String {
        match &self.label {
            Some(l) => format!("{l} (#{})", self.index),
            None => format!("#{}", self.index),
        }
    }
}

/// Arguments of a Skolem (`Mk_C`) term.
///
/// The paper writes both positional (`Mk_CountryT(N)`) and named
/// (`Mk_CityT(name = N, country = C)`) argument lists; both produce a key
/// value that uniquely determines the created object identity.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SkolemArgs {
    /// Positional arguments; a single argument's value is the key value, and
    /// multiple arguments form a list key.
    Positional(Vec<Term>),
    /// Named arguments forming a record key.
    Named(Vec<(Label, Term)>),
}

impl SkolemArgs {
    /// Iterate over the argument terms regardless of style.
    pub fn terms(&self) -> Vec<&Term> {
        match self {
            SkolemArgs::Positional(ts) => ts.iter().collect(),
            SkolemArgs::Named(fs) => fs.iter().map(|(_, t)| t).collect(),
        }
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        match self {
            SkolemArgs::Positional(ts) => ts.len(),
            SkolemArgs::Named(fs) => fs.len(),
        }
    }

    /// True if there are no arguments.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Map a function over the argument terms, preserving the style.
    pub fn map(&self, mut f: impl FnMut(&Term) -> Term) -> SkolemArgs {
        match self {
            SkolemArgs::Positional(ts) => SkolemArgs::Positional(ts.iter().map(&mut f).collect()),
            SkolemArgs::Named(fs) => {
                SkolemArgs::Named(fs.iter().map(|(l, t)| (l.clone(), f(t))).collect())
            }
        }
    }
}

/// A WOL term.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A logical variable.
    Var(Var),
    /// A constant of a base type (or unit).
    Const(Value),
    /// Attribute projection `t.a`; when `t` denotes an object identity the
    /// projection goes through the object's value.
    Proj(Box<Term>, Label),
    /// A record term `(a1 = t1, ..., ak = tk)`.
    Record(Vec<(Label, Term)>),
    /// A variant-injection term `ins_a(t)`; `ins_a()` injects the unit value.
    Variant(Label, Box<Term>),
    /// A Skolem term `Mk_C(args)` creating/naming the object of class `C`
    /// with the given key value.
    Skolem(ClassName, SkolemArgs),
}

impl Term {
    /// A variable term.
    pub fn var(name: impl Into<Var>) -> Term {
        Term::Var(name.into())
    }

    /// A string constant.
    pub fn str(s: impl Into<String>) -> Term {
        Term::Const(Value::Str(s.into()))
    }

    /// An integer constant.
    pub fn int(i: i64) -> Term {
        Term::Const(Value::Int(i))
    }

    /// A boolean constant.
    pub fn bool(b: bool) -> Term {
        Term::Const(Value::Bool(b))
    }

    /// Project attribute `label` from this term.
    pub fn proj(self, label: impl Into<Label>) -> Term {
        Term::Proj(Box::new(self), label.into())
    }

    /// Project a dotted path, e.g. `Term::var("E").path("country.name")`.
    pub fn path(self, dotted: &str) -> Term {
        dotted.split('.').fold(self, |t, seg| t.proj(seg))
    }

    /// A variant injection carrying `payload`.
    pub fn variant(label: impl Into<Label>, payload: Term) -> Term {
        Term::Variant(label.into(), Box::new(payload))
    }

    /// A data-less variant injection `ins_label()`.
    pub fn tag(label: impl Into<Label>) -> Term {
        Term::Variant(label.into(), Box::new(Term::Const(Value::Unit)))
    }

    /// A record term.
    pub fn record<I, L>(fields: I) -> Term
    where
        I: IntoIterator<Item = (L, Term)>,
        L: Into<Label>,
    {
        Term::Record(fields.into_iter().map(|(l, t)| (l.into(), t)).collect())
    }

    /// A Skolem term with positional arguments.
    pub fn skolem<I>(class: impl Into<ClassName>, args: I) -> Term
    where
        I: IntoIterator<Item = Term>,
    {
        Term::Skolem(
            class.into(),
            SkolemArgs::Positional(args.into_iter().collect()),
        )
    }

    /// A Skolem term with named arguments.
    pub fn skolem_named<I, L>(class: impl Into<ClassName>, args: I) -> Term
    where
        I: IntoIterator<Item = (L, Term)>,
        L: Into<Label>,
    {
        Term::Skolem(
            class.into(),
            SkolemArgs::Named(args.into_iter().map(|(l, t)| (l.into(), t)).collect()),
        )
    }

    /// Collect the free variables of the term.
    pub fn variables(&self, out: &mut BTreeSet<Var>) {
        match self {
            Term::Var(v) => {
                out.insert(v.clone());
            }
            Term::Const(_) => {}
            Term::Proj(t, _) => t.variables(out),
            Term::Record(fields) => fields.iter().for_each(|(_, t)| t.variables(out)),
            Term::Variant(_, t) => t.variables(out),
            Term::Skolem(_, args) => args.terms().iter().for_each(|t| t.variables(out)),
        }
    }

    /// The free variables of the term as a set.
    pub fn var_set(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.variables(&mut out);
        out
    }

    /// True if the term contains no variables.
    pub fn is_ground(&self) -> bool {
        self.var_set().is_empty()
    }

    /// If the term is a (possibly nested) projection off a variable, return
    /// the base variable and the path of labels, e.g. `E.country.name` gives
    /// `("E", ["country", "name"])`.
    pub fn as_var_path(&self) -> Option<(&Var, Vec<&Label>)> {
        match self {
            Term::Var(v) => Some((v, Vec::new())),
            Term::Proj(base, label) => {
                let (v, mut path) = base.as_var_path()?;
                path.push(label);
                Some((v, path))
            }
            _ => None,
        }
    }

    /// Apply a variable renaming / substitution of variables by terms.
    pub fn substitute(&self, subst: &std::collections::BTreeMap<Var, Term>) -> Term {
        match self {
            Term::Var(v) => subst.get(v).cloned().unwrap_or_else(|| self.clone()),
            Term::Const(_) => self.clone(),
            Term::Proj(t, l) => Term::Proj(Box::new(t.substitute(subst)), l.clone()),
            Term::Record(fields) => Term::Record(
                fields
                    .iter()
                    .map(|(l, t)| (l.clone(), t.substitute(subst)))
                    .collect(),
            ),
            Term::Variant(l, t) => Term::Variant(l.clone(), Box::new(t.substitute(subst))),
            Term::Skolem(c, args) => Term::Skolem(c.clone(), args.map(|t| t.substitute(subst))),
        }
    }

    /// Number of nodes in the term tree; used as a size metric.
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Const(_) => 1,
            Term::Proj(t, _) => 1 + t.size(),
            Term::Record(fields) => 1 + fields.iter().map(|(_, t)| t.size()).sum::<usize>(),
            Term::Variant(_, t) => 1 + t.size(),
            Term::Skolem(_, args) => 1 + args.terms().iter().map(|t| t.size()).sum::<usize>(),
        }
    }
}

/// An atomic formula.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// `t in C` — the term denotes an object of class `C`.
    Member(Term, ClassName),
    /// `s = t` — the two terms denote equal values.
    Eq(Term, Term),
    /// `s != t`.
    Neq(Term, Term),
    /// `s < t` on integers or reals.
    Lt(Term, Term),
    /// `s <= t` on integers or reals.
    Leq(Term, Term),
    /// `s member t` — the value of `s` occurs in the set value of `t`.
    InSet(Term, Term),
}

impl Atom {
    /// Collect the free variables of the atom.
    pub fn variables(&self, out: &mut BTreeSet<Var>) {
        match self {
            Atom::Member(t, _) => t.variables(out),
            Atom::Eq(s, t)
            | Atom::Neq(s, t)
            | Atom::Lt(s, t)
            | Atom::Leq(s, t)
            | Atom::InSet(s, t) => {
                s.variables(out);
                t.variables(out);
            }
        }
    }

    /// The free variables of the atom as a set.
    pub fn var_set(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.variables(&mut out);
        out
    }

    /// Apply a substitution to both sides of the atom.
    pub fn substitute(&self, subst: &std::collections::BTreeMap<Var, Term>) -> Atom {
        match self {
            Atom::Member(t, c) => Atom::Member(t.substitute(subst), c.clone()),
            Atom::Eq(s, t) => Atom::Eq(s.substitute(subst), t.substitute(subst)),
            Atom::Neq(s, t) => Atom::Neq(s.substitute(subst), t.substitute(subst)),
            Atom::Lt(s, t) => Atom::Lt(s.substitute(subst), t.substitute(subst)),
            Atom::Leq(s, t) => Atom::Leq(s.substitute(subst), t.substitute(subst)),
            Atom::InSet(s, t) => Atom::InSet(s.substitute(subst), t.substitute(subst)),
        }
    }

    /// The class names mentioned in this atom (membership classes and Skolem
    /// classes in either term).
    pub fn mentioned_classes(&self) -> BTreeSet<ClassName> {
        fn collect_term(t: &Term, out: &mut BTreeSet<ClassName>) {
            match t {
                Term::Skolem(c, args) => {
                    out.insert(c.clone());
                    args.terms().iter().for_each(|t| collect_term(t, out));
                }
                Term::Proj(t, _) | Term::Variant(_, t) => collect_term(t, out),
                Term::Record(fields) => fields.iter().for_each(|(_, t)| collect_term(t, out)),
                Term::Var(_) | Term::Const(_) => {}
            }
        }
        let mut out = BTreeSet::new();
        match self {
            Atom::Member(t, c) => {
                out.insert(c.clone());
                collect_term(t, &mut out);
            }
            Atom::Eq(s, t)
            | Atom::Neq(s, t)
            | Atom::Lt(s, t)
            | Atom::Leq(s, t)
            | Atom::InSet(s, t) => {
                collect_term(s, &mut out);
                collect_term(t, &mut out);
            }
        }
        out
    }

    /// Atom size (number of term nodes), used by program-size metrics.
    pub fn size(&self) -> usize {
        match self {
            Atom::Member(t, _) => 1 + t.size(),
            Atom::Eq(s, t)
            | Atom::Neq(s, t)
            | Atom::Lt(s, t)
            | Atom::Leq(s, t)
            | Atom::InSet(s, t) => 1 + s.size() + t.size(),
        }
    }
}

/// A WOL clause `head <= body`: if all body atoms hold then all head atoms
/// hold (for some instantiation of head-only variables).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Clause {
    /// The head atoms (conclusions).
    pub head: Vec<Atom>,
    /// The body atoms (premises). May be empty for unconditional facts.
    pub body: Vec<Atom>,
    /// Optional user-facing label (e.g. `"T1"`, `"C3"`).
    pub label: Option<String>,
}

impl Clause {
    /// Build a clause from head and body atoms.
    pub fn new(head: Vec<Atom>, body: Vec<Atom>) -> Self {
        Clause {
            head,
            body,
            label: None,
        }
    }

    /// Attach a user-facing label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// All variables appearing in the clause.
    pub fn variables(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        for a in self.head.iter().chain(self.body.iter()) {
            a.variables(&mut out);
        }
        out
    }

    /// Variables appearing in the body.
    pub fn body_variables(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        for a in &self.body {
            a.variables(&mut out);
        }
        out
    }

    /// Variables appearing only in the head (existentially quantified).
    pub fn head_only_variables(&self) -> BTreeSet<Var> {
        let body = self.body_variables();
        self.variables()
            .into_iter()
            .filter(|v| !body.contains(v))
            .collect()
    }

    /// Classes mentioned anywhere in the clause.
    pub fn mentioned_classes(&self) -> BTreeSet<ClassName> {
        let mut out = BTreeSet::new();
        for a in self.head.iter().chain(self.body.iter()) {
            out.extend(a.mentioned_classes());
        }
        out
    }

    /// Classes mentioned in the head.
    pub fn head_classes(&self) -> BTreeSet<ClassName> {
        let mut out = BTreeSet::new();
        for a in &self.head {
            out.extend(a.mentioned_classes());
        }
        out
    }

    /// Classes mentioned in the body.
    pub fn body_classes(&self) -> BTreeSet<ClassName> {
        let mut out = BTreeSet::new();
        for a in &self.body {
            out.extend(a.mentioned_classes());
        }
        out
    }

    /// Apply a substitution to every atom of the clause.
    pub fn substitute(&self, subst: &std::collections::BTreeMap<Var, Term>) -> Clause {
        Clause {
            head: self.head.iter().map(|a| a.substitute(subst)).collect(),
            body: self.body.iter().map(|a| a.substitute(subst)).collect(),
            label: self.label.clone(),
        }
    }

    /// Rename every variable by applying `f`; used to give clauses disjoint
    /// variable names before unification.
    pub fn rename_vars(&self, f: impl Fn(&Var) -> Var) -> Clause {
        let subst: std::collections::BTreeMap<Var, Term> = self
            .variables()
            .into_iter()
            .map(|v| {
                let renamed = f(&v);
                (v, Term::Var(renamed))
            })
            .collect();
        self.substitute(&subst)
    }

    /// Total number of atoms.
    pub fn len(&self) -> usize {
        self.head.len() + self.body.len()
    }

    /// True if the clause has no atoms at all.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty() && self.body.is_empty()
    }

    /// Size metric: sum of atom sizes.
    pub fn size(&self) -> usize {
        self.head
            .iter()
            .chain(self.body.iter())
            .map(Atom::size)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Clause (C1) of the paper:
    /// `X.state = Y <= Y in StateA, X = Y.capital;`
    fn clause_c1() -> Clause {
        Clause::new(
            vec![Atom::Eq(Term::var("X").proj("state"), Term::var("Y"))],
            vec![
                Atom::Member(Term::var("Y"), ClassName::new("StateA")),
                Atom::Eq(Term::var("X"), Term::var("Y").proj("capital")),
            ],
        )
        .with_label("C1")
    }

    #[test]
    fn term_builders_and_paths() {
        let t = Term::var("E").path("country.name");
        assert_eq!(
            t,
            Term::Proj(
                Box::new(Term::Proj(Box::new(Term::var("E")), "country".into())),
                "name".into()
            )
        );
        let (base, path) = t.as_var_path().unwrap();
        assert_eq!(base, "E");
        assert_eq!(path, vec![&"country".to_string(), &"name".to_string()]);
        assert!(Term::str("x").as_var_path().is_none());
        assert_eq!(t.size(), 3);
    }

    #[test]
    fn variables_of_clause() {
        let c = clause_c1();
        let vars = c.variables();
        assert!(vars.contains("X"));
        assert!(vars.contains("Y"));
        assert_eq!(vars.len(), 2);
        assert_eq!(c.body_variables().len(), 2);
        assert!(c.head_only_variables().is_empty());
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(c.size() > 3);
    }

    #[test]
    fn head_only_variables_detected() {
        // head introduces Z which does not occur in the body
        let c = Clause::new(
            vec![Atom::Eq(Term::var("Z"), Term::var("X").proj("name"))],
            vec![Atom::Member(Term::var("X"), ClassName::new("CityE"))],
        );
        assert_eq!(c.head_only_variables(), BTreeSet::from(["Z".to_string()]));
    }

    #[test]
    fn mentioned_classes() {
        let c = Clause::new(
            vec![Atom::Eq(
                Term::var("X"),
                Term::skolem("CountryT", [Term::var("N")]),
            )],
            vec![
                Atom::Member(Term::var("Y"), ClassName::new("CountryE")),
                Atom::Eq(Term::var("N"), Term::var("Y").proj("name")),
            ],
        );
        let classes = c.mentioned_classes();
        assert!(classes.contains(&ClassName::new("CountryT")));
        assert!(classes.contains(&ClassName::new("CountryE")));
        assert_eq!(
            c.head_classes(),
            BTreeSet::from([ClassName::new("CountryT")])
        );
        assert_eq!(
            c.body_classes(),
            BTreeSet::from([ClassName::new("CountryE")])
        );
    }

    #[test]
    fn substitution_replaces_variables() {
        let c = clause_c1();
        let subst = std::collections::BTreeMap::from([("X".to_string(), Term::var("City7"))]);
        let renamed = c.substitute(&subst);
        assert!(renamed.variables().contains("City7"));
        assert!(!renamed.variables().contains("X"));
        assert!(renamed.variables().contains("Y"));
    }

    #[test]
    fn rename_vars_prefixes() {
        let c = clause_c1();
        let renamed = c.rename_vars(|v| format!("c1_{v}"));
        assert!(renamed.variables().contains("c1_X"));
        assert!(renamed.variables().contains("c1_Y"));
        assert_eq!(renamed.variables().len(), 2);
    }

    #[test]
    fn skolem_args_styles() {
        let positional = Term::skolem("CountryT", [Term::var("N")]);
        let named = Term::skolem_named(
            "CityT",
            [("name", Term::var("N")), ("country", Term::var("C"))],
        );
        match (&positional, &named) {
            (Term::Skolem(c1, a1), Term::Skolem(c2, a2)) => {
                assert_eq!(c1, &ClassName::new("CountryT"));
                assert_eq!(c2, &ClassName::new("CityT"));
                assert_eq!(a1.len(), 1);
                assert_eq!(a2.len(), 2);
                assert!(!a1.is_empty());
                assert_eq!(a2.terms().len(), 2);
            }
            _ => panic!("expected skolem terms"),
        }
    }

    #[test]
    fn clause_id_describe() {
        assert_eq!(ClauseId::new(3).describe(), "#3");
        assert_eq!(ClauseId::labelled(3, "T1").describe(), "T1 (#3)");
    }

    #[test]
    fn ground_terms() {
        assert!(Term::str("x").is_ground());
        assert!(!Term::var("X").is_ground());
        assert!(Term::record([("a", Term::int(1))]).is_ground());
    }

    #[test]
    fn atom_size_and_substitute() {
        let a = Atom::Lt(Term::var("X"), Term::var("Y").proj("population"));
        assert_eq!(a.size(), 1 + 1 + 2);
        let subst = std::collections::BTreeMap::from([("X".to_string(), Term::int(3))]);
        let b = a.substitute(&subst);
        assert_eq!(b, Atom::Lt(Term::int(3), Term::var("Y").proj("population")));
        let c = Atom::InSet(Term::var("X"), Term::var("S")).substitute(&subst);
        assert_eq!(c, Atom::InSet(Term::int(3), Term::var("S")));
    }
}
