//! Database schemas.
//!
//! A schema consists of a finite set of classes and, for each class, the type
//! of the values associated with objects of that class (Section 2.1). The type
//! of a class must not itself be a class type; class types may only appear
//! nested within it.

use std::collections::BTreeMap;

use crate::error::ModelError;
use crate::types::{ClassName, Type};
use crate::Result;

/// A database schema: a named, finite set of classes with their value types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    name: String,
    classes: BTreeMap<ClassName, Type>,
}

impl Schema {
    /// Create an empty schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Schema {
            name: name.into(),
            classes: BTreeMap::new(),
        }
    }

    /// The schema's name (e.g. `"european_cities"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a class with its associated value type.
    ///
    /// Returns an error if the class is already declared.
    pub fn add_class(&mut self, class: impl Into<ClassName>, ty: Type) -> Result<()> {
        let class = class.into();
        if self.classes.contains_key(&class) {
            return Err(ModelError::DuplicateClass(class));
        }
        self.classes.insert(class, ty);
        Ok(())
    }

    /// Builder-style variant of [`add_class`](Self::add_class) that panics on
    /// duplicates; convenient for statically known schemas in tests and
    /// workload generators.
    pub fn with_class(mut self, class: impl Into<ClassName>, ty: Type) -> Self {
        self.add_class(class, ty)
            .expect("duplicate class in schema builder");
        self
    }

    /// The type associated with `class`, if declared.
    pub fn class_type(&self, class: &ClassName) -> Option<&Type> {
        self.classes.get(class)
    }

    /// Whether `class` is declared in this schema.
    pub fn has_class(&self, class: &ClassName) -> bool {
        self.classes.contains_key(class)
    }

    /// Iterate over `(class, type)` pairs in a deterministic order.
    pub fn classes(&self) -> impl Iterator<Item = (&ClassName, &Type)> {
        self.classes.iter()
    }

    /// The class names declared in this schema, in a deterministic order.
    pub fn class_names(&self) -> Vec<ClassName> {
        self.classes.keys().cloned().collect()
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if the schema declares no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Validate the schema:
    ///
    /// * no class's value type is directly a class type,
    /// * every class type referenced inside a value type is declared,
    /// * record and variant labels are distinct.
    pub fn validate(&self) -> Result<()> {
        for (class, ty) in &self.classes {
            if ty.is_class() {
                return Err(ModelError::ClassTypedClass(class.clone()));
            }
            ty.check_well_formed(class.as_str())?;
            for referenced in ty.referenced_classes() {
                if !self.classes.contains_key(&referenced) {
                    return Err(ModelError::UnknownClass(referenced));
                }
            }
        }
        Ok(())
    }

    /// The class-reference graph: for each class, which classes its value type
    /// refers to. Used for recursion analysis of schemas and transformation
    /// programs.
    pub fn reference_graph(&self) -> BTreeMap<ClassName, Vec<ClassName>> {
        self.classes
            .iter()
            .map(|(c, t)| (c.clone(), t.referenced_classes()))
            .collect()
    }

    /// Whether the schema's reference graph contains a cycle (recursive data
    /// structures such as the Cities/States schema of Figure 1).
    pub fn is_recursive(&self) -> bool {
        let graph = self.reference_graph();
        // Depth-first search with colouring.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: BTreeMap<&ClassName, Colour> =
            graph.keys().map(|c| (c, Colour::White)).collect();

        fn visit<'a>(
            node: &'a ClassName,
            graph: &'a BTreeMap<ClassName, Vec<ClassName>>,
            colour: &mut BTreeMap<&'a ClassName, Colour>,
        ) -> bool {
            colour.insert(node, Colour::Grey);
            if let Some(succs) = graph.get(node) {
                for succ in succs {
                    match colour.get(succ).copied() {
                        Some(Colour::Grey) => return true,
                        Some(Colour::White) if visit(succ, graph, colour) => {
                            return true;
                        }
                        _ => {}
                    }
                }
            }
            colour.insert(node, Colour::Black);
            false
        }

        let nodes: Vec<&ClassName> = graph.keys().collect();
        for node in nodes {
            if colour[node] == Colour::White && visit(node, &graph, &mut colour) {
                return true;
            }
        }
        false
    }

    /// Merge another schema into this one (used to treat several source
    /// databases as one combined source, as WOL transformations may draw from
    /// multiple sources). Class names must be disjoint.
    pub fn merge(&mut self, other: &Schema) -> Result<()> {
        for (class, ty) in other.classes() {
            self.add_class(class.clone(), ty.clone())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The US Cities and States schema of Figure 1.
    fn us_schema() -> Schema {
        Schema::new("us")
            .with_class(
                "CityA",
                Type::record([("name", Type::str()), ("state", Type::class("StateA"))]),
            )
            .with_class(
                "StateA",
                Type::record([("name", Type::str()), ("capital", Type::class("CityA"))]),
            )
    }

    #[test]
    fn build_and_lookup() {
        let s = us_schema();
        assert_eq!(s.name(), "us");
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(s.has_class(&ClassName::new("CityA")));
        assert!(!s.has_class(&ClassName::new("CityE")));
        let city = s.class_type(&ClassName::new("CityA")).unwrap();
        assert_eq!(city.field("name"), Some(&Type::str()));
        assert_eq!(s.class_names().len(), 2);
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut s = us_schema();
        let err = s
            .add_class("CityA", Type::record([("x", Type::int())]))
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateClass(_)));
    }

    #[test]
    fn validation_accepts_figure_1() {
        assert!(us_schema().validate().is_ok());
    }

    #[test]
    fn validation_rejects_unknown_reference() {
        let s = Schema::new("bad")
            .with_class("City", Type::record([("state", Type::class("Nowhere"))]));
        let err = s.validate().unwrap_err();
        assert_eq!(err, ModelError::UnknownClass(ClassName::new("Nowhere")));
    }

    #[test]
    fn validation_rejects_class_typed_class() {
        let s = Schema::new("bad")
            .with_class("A", Type::record([("x", Type::int())]))
            .with_class("B", Type::class("A"));
        let err = s.validate().unwrap_err();
        assert_eq!(err, ModelError::ClassTypedClass(ClassName::new("B")));
    }

    #[test]
    fn figure_1_is_recursive() {
        assert!(us_schema().is_recursive());
    }

    #[test]
    fn acyclic_schema_detected() {
        let s = Schema::new("flat")
            .with_class("Country", Type::record([("name", Type::str())]))
            .with_class(
                "City",
                Type::record([("name", Type::str()), ("country", Type::class("Country"))]),
            );
        assert!(!s.is_recursive());
    }

    #[test]
    fn merge_disjoint_schemas() {
        let mut s = us_schema();
        let e = Schema::new("euro").with_class(
            "CityE",
            Type::record([("name", Type::str()), ("is_capital", Type::bool())]),
        );
        s.merge(&e).unwrap();
        assert_eq!(s.len(), 3);
        assert!(s.has_class(&ClassName::new("CityE")));
    }

    #[test]
    fn merge_overlapping_schemas_fails() {
        let mut s = us_schema();
        let dup = Schema::new("dup").with_class("CityA", Type::record([("x", Type::int())]));
        assert!(s.merge(&dup).is_err());
    }

    #[test]
    fn reference_graph_contents() {
        let g = us_schema().reference_graph();
        assert_eq!(g[&ClassName::new("CityA")], vec![ClassName::new("StateA")]);
        assert_eq!(g[&ClassName::new("StateA")], vec![ClassName::new("CityA")]);
    }
}
