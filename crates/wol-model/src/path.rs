//! Attribute paths.
//!
//! The paper writes `x.a` for "take the value of object `x` and project out
//! attribute `a`", and chains projections through object identities
//! (`E.country.name`). A [`Path`] is such a chain of attribute labels; path
//! evaluation dereferences object identities through an [`Instance`].

use std::fmt;

use crate::error::ModelError;
use crate::instance::Instance;
use crate::schema::Schema;
use crate::types::{Label, Type};
use crate::values::Value;
use crate::Result;

/// A (possibly empty) chain of attribute projections.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Path {
    segments: Vec<Label>,
}

impl Path {
    /// The empty path (the identity projection).
    pub fn empty() -> Self {
        Path {
            segments: Vec::new(),
        }
    }

    /// A path from an iterator of labels.
    pub fn new<I, L>(segments: I) -> Self
    where
        I: IntoIterator<Item = L>,
        L: Into<Label>,
    {
        Path {
            segments: segments.into_iter().map(Into::into).collect(),
        }
    }

    /// Parse a dotted path such as `"country.name"`.
    pub fn parse(s: &str) -> Self {
        if s.is_empty() {
            return Path::empty();
        }
        Path::new(s.split('.').map(str::to_string))
    }

    /// The labels of the path.
    pub fn segments(&self) -> &[Label] {
        &self.segments
    }

    /// True if the path has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Append a segment, returning the extended path.
    pub fn then(&self, label: impl Into<Label>) -> Path {
        let mut segments = self.segments.clone();
        segments.push(label.into());
        Path { segments }
    }

    /// Evaluate the path against a value in the context of an instance.
    ///
    /// Each segment projects a record field. When the current value is an
    /// object identity, it is first dereferenced through the instance (this is
    /// the paper's `x.a` notation: "if `x ∈ σ^C` then take the value `V^C(x)`
    /// ... and project out the attribute `a`").
    pub fn eval<'a>(&self, start: &'a Value, instance: &'a Instance) -> Result<&'a Value> {
        let mut current = start;
        for segment in &self.segments {
            // Dereference through object identity if necessary.
            if let Value::Oid(oid) = current {
                current = instance.value_or_err(oid)?;
            }
            current = current.project(segment).ok_or_else(|| {
                ModelError::PathError(format!(
                    "value of kind `{}` has no attribute `{segment}` (path {self})",
                    current.kind()
                ))
            })?;
        }
        Ok(current)
    }

    /// Evaluate the path and, if the final value is an object identity,
    /// dereference it one more time. Useful for key expressions that must not
    /// produce identities.
    pub fn eval_deref<'a>(&self, start: &'a Value, instance: &'a Instance) -> Result<&'a Value> {
        let v = self.eval(start, instance)?;
        match v {
            Value::Oid(oid) => instance.value_or_err(oid),
            other => Ok(other),
        }
    }

    /// Compute the type a path projects to, starting from `start` in `schema`.
    /// Class types are dereferenced to their class value type before
    /// projecting, mirroring [`eval`](Self::eval).
    pub fn type_of<'a>(&self, start: &'a Type, schema: &'a Schema) -> Result<&'a Type> {
        let mut current = start;
        for segment in &self.segments {
            if let Type::Class(c) = current {
                current = schema
                    .class_type(c)
                    .ok_or_else(|| ModelError::UnknownClass(c.clone()))?;
            }
            current = current.field(segment).ok_or_else(|| {
                ModelError::PathError(format!("type has no attribute `{segment}` (path {self})"))
            })?;
        }
        Ok(current)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.segments.is_empty() {
            return write!(f, "<self>");
        }
        write!(f, "{}", self.segments.join("."))
    }
}

impl From<&str> for Path {
    fn from(s: &str) -> Self {
        Path::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::Oid;
    use crate::types::ClassName;

    fn setup() -> (Instance, Oid, Oid) {
        let mut inst = Instance::new("euro");
        let fr = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("France")),
                ("currency", Value::str("franc")),
            ]),
        );
        let paris = inst.insert_fresh(
            &ClassName::new("CityE"),
            Value::record([
                ("name", Value::str("Paris")),
                ("is_capital", Value::bool(true)),
                ("country", Value::oid(fr.clone())),
            ]),
        );
        (inst, fr, paris)
    }

    #[test]
    fn parse_and_display() {
        let p = Path::parse("country.name");
        assert_eq!(p.len(), 2);
        assert_eq!(p.to_string(), "country.name");
        assert_eq!(Path::empty().to_string(), "<self>");
        assert_eq!(Path::parse(""), Path::empty());
        assert!(Path::empty().is_empty());
        let q: Path = "a.b".into();
        assert_eq!(q.segments(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn eval_simple_projection() {
        let (inst, _, paris) = setup();
        let v = inst.value(&paris).unwrap();
        let name = Path::parse("name").eval(v, &inst).unwrap();
        assert_eq!(name, &Value::str("Paris"));
    }

    #[test]
    fn eval_through_oid() {
        let (inst, _, paris) = setup();
        let v = inst.value(&paris).unwrap();
        // E.country.name — chains through the CountryE object identity.
        let name = Path::parse("country.name").eval(v, &inst).unwrap();
        assert_eq!(name, &Value::str("France"));
    }

    #[test]
    fn eval_starting_from_oid_value() {
        let (inst, _, paris) = setup();
        let start = Value::oid(paris);
        let cap = Path::parse("is_capital").eval(&start, &inst).unwrap();
        assert_eq!(cap, &Value::bool(true));
    }

    #[test]
    fn eval_missing_attribute_fails() {
        let (inst, _, paris) = setup();
        let v = inst.value(&paris).unwrap();
        let err = Path::parse("population").eval(v, &inst).unwrap_err();
        assert!(matches!(err, ModelError::PathError(_)));
    }

    #[test]
    fn eval_deref_unwraps_final_oid() {
        let (inst, fr, paris) = setup();
        let v = inst.value(&paris).unwrap();
        let country = Path::parse("country").eval(v, &inst).unwrap();
        assert_eq!(country, &Value::oid(fr));
        let country_val = Path::parse("country").eval_deref(v, &inst).unwrap();
        assert_eq!(country_val.project("name"), Some(&Value::str("France")));
    }

    #[test]
    fn then_extends_path() {
        let p = Path::parse("country").then("name");
        assert_eq!(p, Path::parse("country.name"));
    }

    #[test]
    fn type_of_follows_classes() {
        let schema = Schema::new("euro")
            .with_class(
                "CityE",
                Type::record([("name", Type::str()), ("country", Type::class("CountryE"))]),
            )
            .with_class(
                "CountryE",
                Type::record([("name", Type::str()), ("currency", Type::str())]),
            );
        let start = Type::class("CityE");
        let t = Path::parse("country.name")
            .type_of(&start, &schema)
            .unwrap();
        assert_eq!(t, &Type::str());
        assert!(Path::parse("country.bogus")
            .type_of(&start, &schema)
            .is_err());
    }
}
