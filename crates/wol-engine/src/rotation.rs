//! Semi-naive delta rotations over mutation batches.
//!
//! The naive evaluator in [`crate::semantics`] already applies the semi-naive
//! idea *within* one batch run: after the first pass, clauses re-match only
//! against the previous pass's delta. Incremental view maintenance needs the
//! same idea *across* runs: when a [`MutationBatch`] lands on a source, the
//! rows a query newly produces are exactly those in which at least one
//! scanned variable binds a changed identity — everything else was already
//! produced by the previous run and is still produced unchanged.
//!
//! This module computes that restriction schedule without knowing anything
//! about query plans. A query is abstracted to its ordered list of scan
//! [`Slot`]s — `(variable, class)` pairs — and the classic inclusion /
//! exclusion rotation is emitted over them: one [`Rotation`] per slot whose
//! class changed, in which
//!
//! * the pivot slot *i* is restricted to its changed set Δᵢ
//!   (inserted ∪ updated),
//! * every later slot *j > i* whose class changed is restricted to its *old*
//!   set (surviving extent minus Δⱼ), and
//! * earlier slots *j < i* are unrestricted.
//!
//! Each new row has a unique last slot binding a changed identity, so the
//! rotations partition the new rows: evaluating the query once per rotation
//! and taking the union visits every new row exactly once and no old row at
//! all. Rows that must *disappear* are not this module's concern — the
//! maintainer drops them by identity (trace key) using
//! [`ClassDelta::stale`](wol_model::ClassDelta::stale) before adding the
//! rotation output.

use std::collections::BTreeSet;
use std::sync::Arc;

use wol_model::{BatchDelta, ClassName, Instance, MutationBatch, Oid};

/// One scanned variable of a query, in plan output order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Slot {
    /// The row variable the scan binds.
    pub var: String,
    /// The class whose extent it scans.
    pub class: ClassName,
}

impl Slot {
    /// Convenience constructor.
    pub fn new(var: impl Into<String>, class: impl Into<ClassName>) -> Slot {
        Slot {
            var: var.into(),
            class: class.into(),
        }
    }
}

/// One semi-naive evaluation of the query: every listed variable is
/// restricted to the paired identity set, unlisted variables scan their full
/// extent.
#[derive(Clone, Debug)]
pub struct Rotation {
    /// Per-variable identity restrictions.
    pub restrictions: Vec<(String, Arc<BTreeSet<Oid>>)>,
}

/// Compute the rotation schedule for a query over a mutated source.
///
/// `slots` lists the query's scans in plan order, `delta` is the net effect
/// of the applied batch (see
/// [`Instance::apply_batch`](wol_model::Instance::apply_batch)), and
/// `instance` is the source *after* the batch (its extents provide the "old"
/// sets). Returns one rotation per slot whose class has changed identities;
/// an empty schedule means the batch cannot add rows to this query.
///
/// The union of the rotations' outputs is exactly the set of rows binding at
/// least one changed identity, each produced by exactly one rotation.
pub fn delta_rotations(slots: &[Slot], delta: &BatchDelta, instance: &Instance) -> Vec<Rotation> {
    // Changed (Δ) and old (extent ∖ Δ) sets per distinct class, shared
    // across rotations.
    let mut changed: Vec<Option<Arc<BTreeSet<Oid>>>> = Vec::with_capacity(slots.len());
    let mut old: Vec<Option<Arc<BTreeSet<Oid>>>> = Vec::with_capacity(slots.len());
    for slot in slots {
        match delta.class(&slot.class) {
            Some(class_delta) if !class_delta.changed().is_empty() => {
                let delta_set = class_delta.changed();
                let survivors: BTreeSet<Oid> = instance
                    .extent(&slot.class)
                    .filter(|oid| !delta_set.contains(oid))
                    .cloned()
                    .collect();
                changed.push(Some(Arc::new(delta_set)));
                old.push(Some(Arc::new(survivors)));
            }
            _ => {
                changed.push(None);
                old.push(None);
            }
        }
    }
    let mut rotations = Vec::new();
    for (i, slot) in slots.iter().enumerate() {
        let Some(delta_set) = &changed[i] else {
            continue;
        };
        let mut restrictions = vec![(slot.var.clone(), Arc::clone(delta_set))];
        for (j, later) in slots.iter().enumerate().skip(i + 1) {
            if let Some(survivors) = &old[j] {
                restrictions.push((later.var.clone(), Arc::clone(survivors)));
            }
        }
        rotations.push(Rotation { restrictions });
    }
    rotations
}

/// True when the batch can only have *added* identities to the classes in
/// `scanned`: no scanned class saw an update or a removal. Under this
/// condition every previously produced row survives verbatim, so the
/// maintainer can skip the stale-row sweep entirely.
pub fn batch_is_additive(batch: &MutationBatch, delta: &BatchDelta, scanned: &[ClassName]) -> bool {
    !batch.is_empty()
        && scanned
            .iter()
            .all(|class| delta.class(class).is_none_or(|d| d.stale().is_empty()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_model::{MutationBatch, Value};

    fn obj(n: i64) -> Value {
        Value::record([("n", Value::int(n))])
    }

    /// Enumerate the cross product of the slots' restricted extents for one
    /// rotation — a stand-in for plan evaluation, since rotations are
    /// plan-agnostic.
    fn enumerate(slots: &[Slot], rotation: &Rotation, instance: &Instance) -> Vec<Vec<Oid>> {
        let mut rows: Vec<Vec<Oid>> = vec![vec![]];
        for slot in slots {
            let keep = rotation
                .restrictions
                .iter()
                .find(|(var, _)| *var == slot.var)
                .map(|(_, set)| Arc::clone(set));
            let extent: Vec<Oid> = instance
                .extent(&slot.class)
                .filter(|oid| keep.as_ref().is_none_or(|k| k.contains(oid)))
                .cloned()
                .collect();
            rows = rows
                .into_iter()
                .flat_map(|row| {
                    extent.iter().map(move |oid| {
                        let mut next = row.clone();
                        next.push(oid.clone());
                        next
                    })
                })
                .collect();
        }
        rows
    }

    #[test]
    fn rotations_partition_the_new_rows() {
        let a = ClassName::new("A");
        let b = ClassName::new("B");
        let mut inst = Instance::new("src");
        for n in 0..3 {
            inst.insert_fresh(&a, obj(n));
            inst.insert_fresh(&b, obj(n));
        }
        let old_a: BTreeSet<Oid> = inst.extent(&a).cloned().collect();
        let old_b: BTreeSet<Oid> = inst.extent(&b).cloned().collect();
        let batch = MutationBatch::new()
            .insert(a.clone(), obj(10))
            .insert(b.clone(), obj(11))
            .insert(b.clone(), obj(12));
        let delta = inst.apply_batch(&batch).unwrap();

        let slots = [Slot::new("X", a.clone()), Slot::new("Y", b.clone())];
        let rotations = delta_rotations(&slots, &delta, &inst);
        assert_eq!(rotations.len(), 2);

        // Every pair with at least one new identity, exactly once.
        let mut produced: Vec<Vec<Oid>> = rotations
            .iter()
            .flat_map(|r| enumerate(&slots, r, &inst))
            .collect();
        let total = produced.len();
        produced.sort();
        produced.dedup();
        assert_eq!(produced.len(), total, "rotations must not overlap");
        let expected: Vec<Vec<Oid>> = inst
            .extent(&a)
            .flat_map(|x| inst.extent(&b).map(move |y| vec![x.clone(), y.clone()]))
            .filter(|row| !old_a.contains(&row[0]) || !old_b.contains(&row[1]))
            .collect();
        let mut expected_sorted = expected;
        expected_sorted.sort();
        assert_eq!(produced, expected_sorted);
    }

    #[test]
    fn updates_count_as_changed_and_removed_identities_never_appear() {
        let a = ClassName::new("A");
        let mut inst = Instance::new("src");
        let keep = inst.insert_fresh(&a, obj(0));
        let upd = inst.insert_fresh(&a, obj(1));
        let gone = inst.insert_fresh(&a, obj(2));
        let batch = MutationBatch::new()
            .update(upd.clone(), obj(100))
            .remove(gone.clone());
        let delta = inst.apply_batch(&batch).unwrap();

        let slots = [Slot::new("X", a.clone())];
        let rotations = delta_rotations(&slots, &delta, &inst);
        assert_eq!(rotations.len(), 1);
        let rows = enumerate(&slots, &rotations[0], &inst);
        // Only the updated identity is re-derived; the untouched one is old
        // and the removed one is no longer in the extent.
        assert_eq!(rows, vec![vec![upd.clone()]]);
        assert!(!rows.iter().any(|r| r[0] == keep || r[0] == gone));
    }

    #[test]
    fn untouched_classes_produce_no_rotations() {
        let a = ClassName::new("A");
        let b = ClassName::new("B");
        let mut inst = Instance::new("src");
        inst.insert_fresh(&a, obj(0));
        inst.insert_fresh(&b, obj(1));
        let batch = MutationBatch::new().insert(b.clone(), obj(2));
        let delta = inst.apply_batch(&batch).unwrap();
        // A query scanning only A is unaffected.
        let slots = [Slot::new("X", a.clone())];
        assert!(delta_rotations(&slots, &delta, &inst).is_empty());
        // A removal-only batch adds nothing either.
        let victim = inst.extent(&b).next().cloned().unwrap();
        let batch = MutationBatch::new().remove(victim);
        let delta = inst.apply_batch(&batch).unwrap();
        let slots = [Slot::new("Y", b.clone())];
        assert!(delta_rotations(&slots, &delta, &inst).is_empty());
    }

    #[test]
    fn additive_batches_are_detected() {
        let a = ClassName::new("A");
        let b = ClassName::new("B");
        let mut inst = Instance::new("src");
        let x = inst.insert_fresh(&a, obj(0));
        let batch = MutationBatch::new().insert(a.clone(), obj(1));
        let delta = inst.apply_batch(&batch).unwrap();
        assert!(batch_is_additive(&batch, &delta, &[a.clone(), b.clone()]));

        let batch = MutationBatch::new().update(x, obj(2));
        let delta = inst.apply_batch(&batch).unwrap();
        assert!(!batch_is_additive(&batch, &delta, std::slice::from_ref(&a)));
        // ...but a query that never scans A does not care.
        assert!(batch_is_additive(&batch, &delta, std::slice::from_ref(&b)));
    }
}
