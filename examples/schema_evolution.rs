//! Schema evolution and information preservation (Example 4.2, Figures 4–5).
//!
//! Transforms the single-class Person database into the evolved
//! Male/Female/Marriage schema, then demonstrates the paper's point about
//! information preservation: the transformation loses information on arbitrary
//! instances, but is injective on the instances satisfying the spouse
//! constraints (C9)–(C11) — constraints expressible in WOL but not in standard
//! constraint languages.
//!
//! ```text
//! cargo run --example schema_evolution
//! ```

use wol_repro::wol_engine::{self, check_injective, execute, normalize, NormalizeOptions};
use wol_repro::wol_model::{display::render_instance, ClassName, Instance, Oid, Value};
use wol_repro::workloads::people::{generate_couples, PeopleWorkload};

fn main() {
    let workload = PeopleWorkload::new();
    let program = workload.program();
    println!("== WOL program (T6-T8 + keys) ==");
    println!("{}", PeopleWorkload::program_text());
    println!();
    println!("== Spouse constraints (C9-C11) ==");
    println!("{}", PeopleWorkload::constraints_text());
    println!();

    let normal = normalize(&program, &NormalizeOptions::default()).expect("normalises");
    let source = generate_couples(3, 7);
    let target = execute(&normal, &[&source][..], "people_v2").expect("executes");
    println!("== Evolved database ==");
    println!("{}", render_instance(&target));

    // Information preservation: a valid instance and one with an asymmetric
    // spouse attribute map to the same target.
    let valid = generate_couples(2, 1);
    let mut asymmetric = valid.clone();
    let wife = Oid::new(ClassName::new("Person"), 1);
    let mut v = asymmetric.value(&wife).unwrap().clone();
    if let Value::Record(ref mut fields) = v {
        fields.insert("spouse".into(), Value::oid(wife.clone()));
    }
    asymmetric.update(&wife, v).unwrap();

    let transform = |source: &Instance| execute(&normal, &[source][..], "people_v2");
    let family = vec![valid, asymmetric];
    let report = check_injective(&family, transform, 3).expect("checks");
    println!(
        "Without constraints: {} collision(s) among {} source instances (information is lost).",
        report.collisions.len(),
        report.sources
    );

    let constraints = workload.constraints();
    let clause_refs: Vec<&wol_repro::wol_lang::Clause> = constraints.iter().collect();
    let satisfying =
        wol_engine::info_preserve::satisfying_instances(&family, &clause_refs).unwrap();
    println!(
        "Instances satisfying (C9)-(C11): {} of {} — on those the transformation is information preserving.",
        satisfying.len(),
        family.len()
    );
}
