//! Errors raised by the CPL substrate.

use std::fmt;

/// Errors from expression evaluation or plan execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CplError {
    /// A row variable referenced by an expression is not present in the row.
    UnknownVariable(String),
    /// A projection or operation was applied to a value of the wrong shape.
    BadValue(String),
    /// An insert produced conflicting values for the same object.
    ConflictingInsert(String),
    /// A plan is malformed (e.g. a hash join whose key expressions reference
    /// variables the corresponding side does not produce).
    BadPlan(String),
    /// An error bubbled up from the data model.
    Model(String),
}

impl fmt::Display for CplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CplError::UnknownVariable(v) => write!(f, "unknown row variable `{v}`"),
            CplError::BadValue(m) => write!(f, "bad value: {m}"),
            CplError::ConflictingInsert(m) => write!(f, "conflicting insert: {m}"),
            CplError::BadPlan(m) => write!(f, "bad plan: {m}"),
            CplError::Model(m) => write!(f, "data model error: {m}"),
        }
    }
}

impl std::error::Error for CplError {}

impl From<wol_model::ModelError> for CplError {
    fn from(e: wol_model::ModelError) -> Self {
        CplError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CplError::UnknownVariable("x".into())
            .to_string()
            .contains("x"));
        assert!(CplError::BadPlan("p".into())
            .to_string()
            .contains("bad plan"));
        let e: CplError = wol_model::ModelError::Invalid("m".into()).into();
        assert!(matches!(e, CplError::Model(_)));
    }
}
