//! A synthetic genome-centre workload standing in for Chr22DB / ACe22DB.
//!
//! The paper's trials exchanged data between the Sybase Chr22DB database and
//! the ACeDB ACe22DB database at the Sanger Centre — "sparsely populated"
//! tree data on one side, a relational schema on the other (Section 6). Those
//! databases are proprietary; this module generates a synthetic equivalent
//! with the same structural features: sparse optional attributes, references
//! between clones and markers, and a WOL program of *partial* clauses (each
//! optional attribute is contributed by its own clause, so sparsely populated
//! objects simply receive fewer attributes).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use storage::{AceObject, AceStore, AceValue};
use wol_lang::program::{Program, SchemaBinding};
use wol_model::{Instance, Schema, Type};

/// The schema of the imported ACeDB-style source (classes `CloneS`, `MarkerS`
/// with optional attributes, as produced by [`storage::acedb`]).
pub fn source_schema() -> Schema {
    Schema::new("ace22")
        .with_class(
            "CloneS",
            Type::record([
                ("name", Type::str()),
                ("length", Type::optional(Type::int())),
                ("lab", Type::optional(Type::str())),
            ]),
        )
        .with_class(
            "MarkerS",
            Type::record([
                ("name", Type::str()),
                ("position", Type::optional(Type::int())),
                ("clone", Type::optional(Type::class("CloneS"))),
                ("aliases", Type::optional(Type::set(Type::str()))),
            ]),
        )
}

/// The schema of the relational-style warehouse target (Chr22DB-like).
pub fn target_schema() -> Schema {
    Schema::new("chr22")
        .with_class(
            "CloneD",
            Type::record([
                ("name", Type::str()),
                ("length", Type::optional(Type::int())),
                ("lab", Type::optional(Type::str())),
            ]),
        )
        .with_class(
            "MarkerD",
            Type::record([
                ("name", Type::str()),
                ("position", Type::optional(Type::int())),
                ("clone", Type::optional(Type::class("CloneD"))),
                ("aliases", Type::optional(Type::set(Type::str()))),
            ]),
        )
}

/// The WOL program mapping the ACeDB-style source into the warehouse. Each
/// optional attribute has its own partial clause (G2, G4–G6), so objects
/// missing the attribute simply do not match that clause.
pub fn program_text() -> &'static str {
    "G1: X in CloneD, X.name = N <= C in CloneS, C.name = N;\n\
     G2: X.length = L <= C in CloneS, X in CloneD, X.name = C.name, L = C.length;\n\
     G3: X.lab = L <= C in CloneS, X in CloneD, X.name = C.name, L = C.lab;\n\
     G4: M in MarkerD, M.name = N <= S in MarkerS, S.name = N;\n\
     G5: M.position = P <= S in MarkerS, M in MarkerD, M.name = S.name, P = S.position;\n\
     G6: M.aliases = A <= S in MarkerS, M in MarkerD, M.name = S.name, A = S.aliases;\n\
     G7: M.clone = X <= S in MarkerS, M in MarkerD, M.name = S.name, \
         X in CloneD, X.name = S.clone.name;\n\
     K1: X = Mk_CloneD(N) <= X in CloneD, N = X.name;\n\
     K2: M = Mk_MarkerD(N) <= M in MarkerD, N = M.name;"
}

/// The warehouse-load transformation program.
pub fn program() -> Program {
    Program::new(
        "ace22_to_chr22",
        vec![SchemaBinding::new(source_schema())],
        SchemaBinding::new(target_schema()),
    )
    .with_text(program_text())
}

/// Parameters of the synthetic ACe22DB-style generator.
#[derive(Clone, Copy, Debug)]
pub struct GenomeParams {
    /// Number of clones.
    pub clones: usize,
    /// Number of markers.
    pub markers: usize,
    /// Probability that any optional tag is present (sparseness knob).
    pub density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenomeParams {
    fn default() -> Self {
        GenomeParams {
            clones: 20,
            markers: 50,
            density: 0.6,
            seed: 22,
        }
    }
}

impl GenomeParams {
    /// The E6 bench shape (100 clones × 300 markers) scaled `factor`×, for
    /// the throughput experiments that need extents large enough to measure
    /// per-row costs (E10 runs 10–100×).
    pub fn scaled(factor: usize) -> Self {
        GenomeParams {
            clones: 100 * factor,
            markers: 300 * factor,
            density: 0.6,
            seed: 22,
        }
    }
}

/// Generate an ACeDB-style store with sparsely populated clone and marker
/// objects.
pub fn generate_ace_store(params: &GenomeParams) -> AceStore {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut store = AceStore::new();
    for c in 0..params.clones {
        let mut object = AceObject::new("Clone", format!("cE22-{c}"));
        if rng.gen_bool(params.density) {
            object = object.with_tag("Length", AceValue::Int(rng.gen_range(10_000..200_000)));
        }
        if rng.gen_bool(params.density) {
            object = object.with_tag("Sequenced_by", AceValue::Text("Sanger".to_string()));
        }
        store.add(object);
    }
    for m in 0..params.markers {
        let mut object = AceObject::new("Marker", format!("D22S{m}"));
        if rng.gen_bool(params.density) {
            object = object.with_tag("Position", AceValue::Int(rng.gen_range(0..50_000_000)));
        }
        if params.clones > 0 && rng.gen_bool(params.density) {
            let clone = rng.gen_range(0..params.clones);
            object = object.with_tag(
                "Clone",
                AceValue::ObjectRef("Clone".to_string(), format!("cE22-{clone}")),
            );
        }
        if rng.gen_bool(params.density / 2.0) {
            object = object.with_tag(
                "Aliases",
                AceValue::Many(vec![
                    AceValue::Text(format!("M{m}a")),
                    AceValue::Text(format!("M{m}b")),
                ]),
            );
        }
        store.add(object);
    }
    store
}

/// Import the generated ACeDB-style store into a model instance conforming to
/// [`source_schema`].
pub fn generate_source(params: &GenomeParams) -> Instance {
    let store = generate_ace_store(params);
    let mappings = vec![
        storage::acedb::AceMapping::new(
            "Clone",
            "CloneS",
            &[("Length", "length"), ("Sequenced_by", "lab")],
        ),
        storage::acedb::AceMapping::new(
            "Marker",
            "MarkerS",
            &[
                ("Position", "position"),
                ("Clone", "clone"),
                ("Aliases", "aliases"),
            ],
        ),
    ];
    store
        .import(&mappings, "ace22")
        .expect("generated store imports cleanly")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_engine::{execute, normalize, NormalizeOptions};
    use wol_model::{ClassName, Value};

    #[test]
    fn schemas_and_program_validate() {
        assert!(source_schema().validate().is_ok());
        assert!(target_schema().validate().is_ok());
        program().validate().unwrap();
    }

    #[test]
    fn generated_source_conforms_to_schema() {
        let params = GenomeParams {
            clones: 10,
            markers: 25,
            density: 0.5,
            seed: 1,
        };
        let source = generate_source(&params);
        wol_model::validate::check_instance(&source, &source_schema()).unwrap();
        assert_eq!(source.extent_size(&ClassName::new("CloneS")), 10);
        assert_eq!(source.extent_size(&ClassName::new("MarkerS")), 25);
    }

    #[test]
    fn warehouse_load_preserves_counts_and_sparsity() {
        let params = GenomeParams {
            clones: 8,
            markers: 20,
            density: 0.5,
            seed: 5,
        };
        let source = generate_source(&params);
        let normal = normalize(&program(), &NormalizeOptions::default()).unwrap();
        let target = execute(&normal, &[&source][..], "chr22").unwrap();
        assert_eq!(target.extent_size(&ClassName::new("CloneD")), 8);
        assert_eq!(target.extent_size(&ClassName::new("MarkerD")), 20);
        // Positions survive exactly for the markers that had one.
        let source_with_position = source
            .objects(&ClassName::new("MarkerS"))
            .filter(|(_, v)| v.project("position").is_some())
            .count();
        let target_with_position = target
            .objects(&ClassName::new("MarkerD"))
            .filter(|(_, v)| v.project("position").is_some())
            .count();
        assert_eq!(source_with_position, target_with_position);
        // Clone references point at CloneD objects.
        for (_, value) in target.objects(&ClassName::new("MarkerD")) {
            if let Some(Value::Oid(oid)) = value.project("clone") {
                assert_eq!(oid.class(), &ClassName::new("CloneD"));
            }
        }
    }

    #[test]
    fn density_zero_gives_fully_sparse_objects() {
        let params = GenomeParams {
            clones: 3,
            markers: 3,
            density: 0.0,
            seed: 9,
        };
        let source = generate_source(&params);
        for (_, value) in source.objects(&ClassName::new("MarkerS")) {
            assert_eq!(value.as_record().unwrap().len(), 1); // name only
        }
        let normal = normalize(&program(), &NormalizeOptions::default()).unwrap();
        let target = execute(&normal, &[&source][..], "chr22").unwrap();
        assert_eq!(target.extent_size(&ClassName::new("MarkerD")), 3);
    }
}
