//! Human-readable reports of Morphase runs.

use std::fmt::Write as _;

use crate::pipeline::MorphaseRun;

/// Render a run as a small text report: stage timings, program sizes and
/// execution statistics. Used by the examples and the benchmark harness.
pub fn render_report(run: &MorphaseRun) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Morphase run ==");
    let _ = writeln!(
        out,
        "input clauses: {} (of which {} auto-generated from meta-data)",
        run.input_clauses, run.generated_clauses
    );
    let _ = writeln!(
        out,
        "snf: {} atoms -> {} atoms ({} fresh variables)",
        run.snf.atoms_before, run.snf.atoms_after, run.snf.fresh_vars
    );
    let _ = writeln!(
        out,
        "normal form: {} clauses, size {}",
        run.normal.len(),
        run.normal.size()
    );
    let _ = writeln!(out, "stage timings:");
    let t = &run.timings;
    for (name, duration) in [
        ("metadata", t.metadata),
        ("validate", t.validate),
        ("snf", t.snf),
        ("normalize", t.normalize),
        ("compile->CPL", t.compile),
        ("execute", t.execute),
        ("verify", t.verify),
    ] {
        let _ = writeln!(out, "  {name:<14} {:>10.3?}", duration);
    }
    let _ = writeln!(out, "  total compile  {:>10.3?}", t.compile_time());
    let _ = writeln!(out, "  total          {:>10.3?}", t.total());
    let _ = writeln!(
        out,
        "execution: {} rows scanned, {} rows produced, {} index probes, {} objects written",
        run.exec.rows_scanned,
        run.exec.rows_produced,
        run.exec.index_probes,
        run.exec.objects_written
    );
    let _ = writeln!(
        out,
        "peak operator output: {} rows (max_intermediate_rows)",
        run.exec.max_intermediate_rows
    );
    let estimated: u64 = run.estimated_rows.iter().sum();
    let _ = writeln!(
        out,
        "planner estimate: {} output rows (actual {})",
        estimated, run.exec.rows_output
    );
    let _ = writeln!(out, "target: {} objects", run.target.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Morphase;
    use workloads::cities::{generate_euro, CitiesWorkload};

    #[test]
    fn report_contains_the_key_metrics() {
        let w = CitiesWorkload::new();
        let source = generate_euro(2, 2, 1);
        let run = Morphase::new()
            .transform(&w.euro_program(), &[&source][..])
            .unwrap();
        let report = render_report(&run);
        assert!(report.contains("Morphase run"));
        assert!(report.contains("normal form:"));
        assert!(report.contains("total compile"));
        assert!(report.contains("index probes"));
        assert!(report.contains("objects written"));
        assert!(report.contains("max_intermediate_rows"));
        assert!(report.contains("planner estimate:"));
    }
}
