//! Experiment E6 — the Morphase pipeline (Figure 6) stage by stage.
//!
//! The paper evaluates Morphase "in terms of ease of use, compilation time,
//! and size and complexity of the resulting normal form program" and notes
//! that many constraints are generated automatically from meta-data. This
//! bench times the full pipeline on the Cities and genome-style workloads and
//! prints the per-stage breakdown plus the auto-generated clause counts.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morphase::{render_report, Morphase};
use workloads::cities::{generate_euro, CitiesWorkload};
use workloads::genome::{self, GenomeParams};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_pipeline");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));

    let workload = CitiesWorkload::new();
    let cities_program = workload.euro_program();
    let cities_source = generate_euro(50, 5, 9);
    group.bench_function(BenchmarkId::new("cities", "50x5"), |b| {
        b.iter(|| {
            Morphase::new()
                .transform(&cities_program, &[&cities_source][..])
                .expect("runs")
        })
    });

    let genome_program = genome::program();
    let genome_source = genome::generate_source(&GenomeParams {
        clones: 100,
        markers: 300,
        density: 0.6,
        seed: 22,
    });
    group.bench_function(BenchmarkId::new("genome", "100c_300m"), |b| {
        b.iter(|| {
            Morphase::new()
                .transform(&genome_program, &[&genome_source][..])
                .expect("runs")
        })
    });
    group.finish();

    // Per-stage report (Figure 6 stages) for the genome run.
    let run = Morphase::new()
        .transform(&genome_program, &[&genome_source][..])
        .unwrap();
    eprintln!("[E6] genome warehouse load:\n{}", render_report(&run));
    let run = Morphase::new()
        .transform(&cities_program, &[&cities_source][..])
        .unwrap();
    eprintln!("[E6] cities integration:\n{}", render_report(&run));
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
