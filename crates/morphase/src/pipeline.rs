//! The Morphase pipeline driver (Figure 6).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use cpl::exec::{apply_evaluated_query, evaluate_query, execute_query, ExecStats};
use cpl::expr::EvalCtx;
use storage::persist::{FaultPolicy, PipelineJournal};
use wol_engine::normalize::{NormalProgram, NormalizeOptions};
use wol_engine::snf::{program_to_snf, snf_stats, SnfStats};
use wol_lang::program::Program;
use wol_model::{Instance, Job, SkolemFactory, WorkerPool};

use crate::compile::{compile_program_with, PlanMode};
use crate::metadata::{generate_key_clauses, generate_merge_key_clauses};
use crate::schedule::plan_schedule;
use crate::Result;

/// How a [`crate::MaterializedPipeline`] validates source constraints per
/// mutation batch (see `wol_engine::constraints::incremental`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchConstraintMode {
    /// No per-batch constraint checking (the default).
    #[default]
    Off,
    /// Check every batch incrementally and record violations in the batch
    /// report and stats, but commit the batch regardless. Constraints seen
    /// violated stay on full re-check until they come back clean.
    Report,
    /// Check every batch incrementally; a violating batch is reverted and
    /// rejected with the full violation list, leaving sources and target
    /// exactly as before the batch.
    Enforce,
}

/// Options controlling a Morphase run.
#[derive(Clone, Copy, Debug)]
pub struct PipelineOptions {
    /// Use target key constraints during normalisation (turning this off
    /// reproduces the "constraints omitted" configuration of Section 6).
    pub use_target_keys: bool,
    /// Use source constraints for clause simplification and pruning.
    pub use_source_constraints: bool,
    /// Auto-generate key constraint clauses from the schemas' key
    /// specifications (Figure 6's meta-data input).
    pub generate_metadata_constraints: bool,
    /// Run the CPL plan optimiser on compiled plans.
    pub optimize_plans: bool,
    /// Cardinality model the planner estimates with: histogram-backed (the
    /// default) or the flat `1/ndv` baseline. The flat model is kept
    /// selectable so skew regressions can be measured differentially (the E7
    /// tests and bench run both over identical sources).
    pub cost_model: cpl::CostModel,
    /// Validate the produced target against the target schema and keys.
    pub verify_target: bool,
    /// Check the source constraints against the source instances before
    /// transforming.
    pub check_source_constraints: bool,
    /// Worker threads the executors may use (see `cpl`'s threading-model
    /// docs). Defaults to the environment ([`cpl::Parallelism::from_env`]):
    /// the machine's available cores, overridable via `WOL_THREADS`. Both
    /// levels share one persistent [`cpl::WorkerPool`]: queries of a
    /// multi-query schedule stage evaluate concurrently on it, and each
    /// query's own operators still run pool morsels inside its slot (the
    /// pool bounds total concurrency); singleton-stage queries use the pool
    /// for operator-level morsels alone. Parallel execution is deterministic
    /// — the produced target is bit-identical at every thread count.
    pub parallelism: cpl::Parallelism,
    /// Per-batch source-constraint validation mode for standing pipelines
    /// ([`crate::MaterializedPipeline`] / [`crate::PipelineService`]); the
    /// one-shot transform ignores it (use `check_source_constraints`).
    pub batch_constraints: BatchConstraintMode,
    /// Push eligible filters (and projections) into backend scan providers on
    /// federated runs ([`Morphase::transform_federated`]); non-federated runs
    /// ignore it. Defaults to the environment: on, unless `WOL_PUSHDOWN` is
    /// set to `0`, `off`, or `false`. The produced target is bit-identical
    /// either way — pushdown only moves the same predicate evaluation from
    /// the executor into the ingest scan.
    pub pushdown: bool,
}

/// Process-wide default for federated pushdown: on, unless `WOL_PUSHDOWN` is
/// set to `0`, `off`, or `false` (the differential-testing knob, mirroring
/// `WOL_COLUMNAR`).
pub fn pushdown_default() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| {
        !matches!(
            std::env::var("WOL_PUSHDOWN").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            use_target_keys: true,
            use_source_constraints: true,
            generate_metadata_constraints: true,
            optimize_plans: true,
            cost_model: cpl::CostModel::default(),
            verify_target: true,
            check_source_constraints: false,
            parallelism: cpl::Parallelism::from_env(),
            batch_constraints: BatchConstraintMode::default(),
            pushdown: pushdown_default(),
        }
    }
}

/// Where (and how) a durable run journals its progress.
///
/// Durable runs write a snapshot + write-ahead-log journal under `dir` (see
/// `storage::persist::PipelineJournal`): each applied query becomes one
/// committed batch, so a run killed between queries resumes after the last
/// completed one instead of re-running the whole program. The journal is
/// keyed by a fingerprint of the compiled program; reusing the directory
/// with a different program resets it. Resuming assumes the *sources* are
/// unchanged since the crashed run — the fingerprint covers the program and
/// its compiled plans, not the source data.
#[derive(Clone, Debug)]
pub struct DurableOptions {
    /// Directory holding the journal files (created if absent).
    pub dir: PathBuf,
    /// Fault policy installed on the journal's WAL sink — a crash-injection
    /// hook for tests; `None` in normal use.
    pub fault: Option<FaultPolicy>,
}

impl DurableOptions {
    /// Journal into `dir`, no fault injection.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurableOptions {
            dir: dir.into(),
            fault: None,
        }
    }

    /// Install a fault policy on the journal's WAL sink.
    pub fn with_fault(mut self, fault: FaultPolicy) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// What a durable run recovered and journalled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// True when the run resumed work a previous (crashed) run completed.
    pub resumed: bool,
    /// Queries already durable when the run started.
    pub completed_before: u64,
    /// Queries skipped because the recovered target already held their
    /// effects.
    pub skipped: u64,
    /// Queries applied and journalled by this run.
    pub journaled: u64,
    /// True when existing journal files belonged to a different program and
    /// were discarded.
    pub reset: bool,
    /// True when recovery discarded a torn WAL tail (an interrupted batch).
    pub recovered_torn_tail: bool,
}

/// Wall-clock time spent in each pipeline stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Program validation (parsing is the caller's; this is type/range checks).
    pub validate: Duration,
    /// Meta-data constraint generation.
    pub metadata: Duration,
    /// Semi-normal-form rewriting.
    pub snf: Duration,
    /// Normalisation (unify/unfold, key resolution, optimisation).
    pub normalize: Duration,
    /// Translation to CPL.
    pub compile: Duration,
    /// Streaming ingest from backend scan providers (federated runs only;
    /// zero otherwise). Not part of [`StageTimings::compile_time`] — it is
    /// data movement, not compilation.
    pub ingest: Duration,
    /// CPL execution.
    pub execute: Duration,
    /// Target verification.
    pub verify: Duration,
}

impl StageTimings {
    /// Total compile-side time (everything before execution), the quantity the
    /// paper reports as "the time taken to compile and normalize".
    pub fn compile_time(&self) -> Duration {
        self.validate + self.metadata + self.snf + self.normalize + self.compile
    }

    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.compile_time() + self.ingest + self.execute + self.verify
    }
}

/// Estimated vs actual output rows of one join operator in one compiled
/// query, paired up from the planner's post-order estimates
/// ([`cpl::estimate_join_outputs`]) and the executor's join trace. The error
/// ratio these carry is the direct measure of estimate quality the histogram
/// work targets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinStat {
    /// Name of the query (normal clause) the join belongs to.
    pub query: String,
    /// Join operator kind (`HashJoin`, `NestedLoopJoin`, `CrossJoin`).
    pub kind: String,
    /// The planner's estimated output rows.
    pub estimated: u64,
    /// The rows the join actually produced.
    pub actual: u64,
}

impl JoinStat {
    /// How far off the estimate was, as a symmetric `>= 1` factor (both
    /// sides clamped to one row so empty joins stay finite).
    pub fn error_ratio(&self) -> f64 {
        let est = self.estimated.max(1) as f64;
        let act = self.actual.max(1) as f64;
        est.max(act) / est.min(act)
    }
}

/// One query's execution breakdown: which schedule stage it ran in, whether
/// its evaluation overlapped other queries of the stage, and where its time
/// went. The per-query timing view the report pins.
#[derive(Clone, Debug)]
pub struct QueryStat {
    /// Name of the query (the originating clause label(s)).
    pub query: String,
    /// Index of the schedule stage the query ran in.
    pub stage: usize,
    /// Whether the query's evaluation ran concurrently with other queries
    /// of its stage (query-level parallelism).
    pub overlapped: bool,
    /// Rows the query's plan emitted.
    pub rows_output: u64,
    /// Wall-clock spent evaluating the query (plan + insert expressions).
    pub eval: Duration,
    /// Wall-clock spent applying the evaluated inserts to the target (zero
    /// for queries executed directly on the main context, where evaluation
    /// and application interleave).
    pub apply: Duration,
}

/// The result of a Morphase run.
#[derive(Clone, Debug)]
pub struct MorphaseRun {
    /// The produced target instance.
    pub target: Instance,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Statistics of the snf rewriting stage.
    pub snf: SnfStats,
    /// The normal-form program (for inspection and size metrics).
    pub normal: NormalProgram,
    /// Number of clauses in the input program (after meta-data generation).
    pub input_clauses: usize,
    /// Number of auto-generated constraint clauses.
    pub generated_clauses: usize,
    /// CPL execution statistics.
    pub exec: ExecStats,
    /// Columnar-executor statistics merged across every query context:
    /// pipelines taken off the row-at-a-time path, batch rows they covered,
    /// and column chunks visited. All zero when the columnar path is
    /// disabled (`WOL_COLUMNAR=0`) or no plan shape qualified.
    pub columnar: cpl::ColumnarStats,
    /// Rendered CPL plans, one per normal clause.
    pub plans: Vec<String>,
    /// The planner's estimated output rows, one per compiled query (from the
    /// same cardinality model the join ordering used). Compared against
    /// `exec.rows_output` in reports.
    pub estimated_rows: Vec<u64>,
    /// Estimated vs actual rows per executed join operator (empty for
    /// compile-only runs). Reports print these with their error ratios.
    pub join_stats: Vec<JoinStat>,
    /// The worker-thread budget execution ran with.
    pub threads: usize,
    /// Per-worker-slot execution statistics accumulated across every
    /// parallel operator (empty when nothing ran in parallel). Slot `i`
    /// holds what worker `i` did: its share of produced rows, index probes
    /// and probe-cache hits — the skew of work across shards.
    pub shard_stats: Vec<ExecStats>,
    /// Per-query execution breakdown in program order: schedule stage,
    /// overlap, rows and timings (empty for compile-only runs).
    pub query_stats: Vec<QueryStat>,
    /// Journal/recovery statistics of a durable run
    /// ([`Morphase::transform_durable`]); `None` otherwise.
    pub durability: Option<DurabilityStats>,
}

/// The Morphase system: a configured pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct Morphase {
    /// Pipeline options.
    pub options: PipelineOptions,
}

impl Morphase {
    /// A Morphase instance with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// A Morphase instance with the given options.
    pub fn with_options(options: PipelineOptions) -> Self {
        Morphase { options }
    }

    /// Compile a program (validation, meta-data, snf, normalisation, CPL
    /// translation) without executing it. Returns the run with an empty
    /// target; useful for the compile-time experiments (E1, E2).
    pub fn compile(&self, program: &Program) -> Result<MorphaseRun> {
        self.run_inner(program, &[], false, None)
    }

    /// Run the full pipeline: compile the program and execute it against the
    /// given source instances.
    pub fn transform(&self, program: &Program, sources: &[&Instance]) -> Result<MorphaseRun> {
        self.run_inner(program, sources, true, None)
    }

    /// Run the full pipeline *durably*: like
    /// [`transform`](Morphase::transform), but every applied query's target
    /// mutations and Skolem assignments are journalled to `durable.dir` as
    /// one committed batch. A run killed between queries — a crash, an
    /// injected fault — resumes from the journal on the next
    /// `transform_durable` call with the same program, skipping the queries
    /// already applied; the resumed target (Skolem numbering included) is
    /// bit-identical to an uncrashed run.
    pub fn transform_durable(
        &self,
        program: &Program,
        sources: &[&Instance],
        durable: &DurableOptions,
    ) -> Result<MorphaseRun> {
        self.run_inner(program, sources, true, Some(durable))
    }

    /// Run the full pipeline against *federated* backend sources: compile
    /// with provider-reported statistics, push eligible filters and
    /// projections into the providers (when [`PipelineOptions::pushdown`] is
    /// on), stream-ingest the surviving rows, then execute. See
    /// [`crate::federate`] for the eligibility and bit-identity contract.
    pub fn transform_federated(
        &self,
        program: &Program,
        providers: &[&dyn storage::ScanProvider],
    ) -> Result<MorphaseRun> {
        crate::federate::transform_federated(self.options, program, providers)
    }

    fn run_inner(
        &self,
        program: &Program,
        sources: &[&Instance],
        execute: bool,
        durable: Option<&DurableOptions>,
    ) -> Result<MorphaseRun> {
        let compiled = compile_stages(self.options, program, sources)?;
        execute_pipeline(self.options, compiled, sources, execute, durable)
    }
}

/// Stages 5–6 of the pipeline (execution and verification), shared by
/// [`Morphase::run_inner`] and the federated path
/// ([`crate::federate::transform_federated`]), which compiles and ingests
/// differently but executes identically.
pub(crate) fn execute_pipeline(
    options: PipelineOptions,
    compiled: CompiledPipeline,
    sources: &[&Instance],
    execute: bool,
    durable: Option<&DurableOptions>,
) -> Result<MorphaseRun> {
    let CompiledPipeline {
        augmented,
        generated,
        snf,
        normal,
        queries,
        plans,
        estimated_rows,
        join_estimates,
        mut timings,
    } = compiled;

    // Stage 5: execution, with per-join actual row counts traced so the
    // run can report estimate-vs-actual error per join. Queries execute
    // stage by stage under the dependency schedule: singleton stages run
    // directly on the main context; multi-query stages *evaluate*
    // concurrently on the worker pool (claim contexts) and *apply* in
    // program order on the main context, so the target — Skolem
    // numbering included — is bit-identical to a sequential run.
    let mut exec = ExecStats::default();
    let mut columnar = cpl::ColumnarStats::default();
    let mut join_stats = Vec::new();
    let mut shard_stats = Vec::new();
    let mut query_stats = Vec::new();
    let mut durability: Option<DurabilityStats> = None;
    let mut target = Instance::new(augmented.target.schema.name());
    if execute {
        let start = Instant::now();
        let mut ctx = EvalCtx::new(sources).with_parallelism(options.parallelism);
        ctx.enable_join_trace();
        let schedule = plan_schedule(&queries);
        // Durable mode: open (or resume) the journal keyed by the
        // compiled program's fingerprint, restore the recovered target
        // and Skolem factory, and stage further target mutations for
        // per-query journalling. All factory growth and target mutation
        // happen on this main context during program-ordered apply
        // (overlapped stages evaluate on claim contexts), so the journal
        // is sound at every thread count.
        let mut journal: Option<PipelineJournal> = None;
        if let Some(opts) = durable {
            let fingerprint =
                program_fingerprint(augmented.target.schema.name(), sources, &queries, &plans);
            let (j, recovery) = PipelineJournal::open(
                &opts.dir,
                fingerprint,
                augmented.target.schema.name(),
                opts.fault,
            )?;
            target = recovery.instance;
            ctx.factory = SkolemFactory::from_state(recovery.skolem);
            target.begin_mutation_log();
            durability = Some(DurabilityStats {
                resumed: recovery.completed > 0,
                completed_before: recovery.completed,
                reset: recovery.reset,
                recovered_torn_tail: recovery.report.torn_tail.is_some(),
                skipped: 0,
                journaled: 0,
            });
            journal = Some(j);
        }
        let completed = journal.as_ref().map(|j| j.completed()).unwrap_or(0);
        let mut next_index: u64 = 0;
        let pool = WorkerPool::shared(options.parallelism);
        let overlap = options.parallelism.threads() > 1;
        let record_joins =
            |join_stats: &mut Vec<JoinStat>, qi: usize, actuals: &[cpl::exec::JoinActual]| {
                join_stats.extend(join_estimates[qi].iter().zip(actuals.iter()).map(
                    |(est, act)| JoinStat {
                        query: queries[qi].name.clone(),
                        kind: act.kind.to_string(),
                        estimated: est.rows.round() as u64,
                        actual: act.rows as u64,
                    },
                ));
            };
        for (stage_index, stage) in schedule.stages.iter().enumerate() {
            // Durable resume: queries whose applied-order index falls
            // below the journal's completed count are already in the
            // recovered target — skip them. Completed queries are always
            // a prefix of the applied order, hence a prefix of the stage.
            let mut live: Vec<(usize, u64)> = Vec::new();
            for (pos, &qi) in stage.iter().enumerate() {
                let k = next_index + pos as u64;
                if k < completed {
                    let stats = durability.as_mut().expect("skips only in durable mode");
                    stats.skipped += 1;
                    query_stats.push(QueryStat {
                        query: queries[qi].name.clone(),
                        stage: stage_index,
                        overlapped: false,
                        rows_output: 0,
                        eval: Duration::ZERO,
                        apply: Duration::ZERO,
                    });
                } else {
                    live.push((qi, k));
                }
            }
            next_index += stage.len() as u64;
            if overlap && live.len() > 1 {
                // Claim phase: evaluate every query of the stage
                // concurrently, each on its own claim context. The claim
                // contexts keep the full worker budget, so a big query
                // still runs operator-level morsels *inside* its slot —
                // the shared pool bounds total concurrency either way —
                // and its per-shard breakdown rolls back into the main
                // context's view.
                type Evaluated = (
                    cpl::Result<cpl::EvaluatedQuery>,
                    ExecStats,
                    Vec<ExecStats>,
                    cpl::ColumnarStats,
                    Vec<cpl::exec::JoinActual>,
                    Duration,
                );
                let jobs: Vec<Job<'_, Evaluated>> = live
                    .iter()
                    .map(|&(qi, _)| {
                        let query = &queries[qi];
                        Box::new(move || {
                            let eval_start = Instant::now();
                            let mut wctx = EvalCtx::claim_worker(sources)
                                .with_parallelism(options.parallelism);
                            wctx.enable_join_trace();
                            let mut wstats = ExecStats::default();
                            let result = evaluate_query(query, &mut wctx, &mut wstats);
                            (
                                result,
                                wstats,
                                wctx.take_shard_stats(),
                                wctx.take_columnar_stats(),
                                wctx.take_join_trace(),
                                eval_start.elapsed(),
                            )
                        }) as Job<'_, Evaluated>
                    })
                    .collect();
                let outcomes = pool.scope(jobs);
                // Resolution phase: absorb stats and apply in program
                // order; the earliest query's error propagates, exactly
                // like the sequential loop.
                for (&(qi, k), (result, wstats, shards, wcolumnar, actuals, eval)) in
                    live.iter().zip(outcomes)
                {
                    exec.absorb(wstats);
                    ctx.absorb_shard_stats(&shards);
                    columnar.absorb(&wcolumnar);
                    let query = &queries[qi];
                    let evaluated = result?;
                    let rows_output = evaluated.rows_output() as u64;
                    let apply_start = Instant::now();
                    let factory_before = journal.as_ref().map(|_| ctx.factory.counter_snapshot());
                    apply_evaluated_query(query, evaluated, &mut ctx, &mut target, &mut exec)?;
                    if let Some(j) = journal.as_mut() {
                        let mutations = target.take_mutation_log();
                        let assignments = ctx
                            .factory
                            .assignments_since(&factory_before.expect("taken before apply"));
                        j.record_query(k, mutations, assignments, &target)?;
                        durability.as_mut().expect("durable mode").journaled += 1;
                    }
                    record_joins(&mut join_stats, qi, &actuals);
                    query_stats.push(QueryStat {
                        query: query.name.clone(),
                        stage: stage_index,
                        overlapped: true,
                        rows_output,
                        eval,
                        apply: apply_start.elapsed(),
                    });
                }
            } else {
                for (qi, k) in live {
                    let query = &queries[qi];
                    let rows_before = exec.rows_output;
                    let eval_start = Instant::now();
                    let factory_before = journal.as_ref().map(|_| ctx.factory.counter_snapshot());
                    execute_query(query, &mut ctx, &mut target, &mut exec)?;
                    if let Some(j) = journal.as_mut() {
                        let mutations = target.take_mutation_log();
                        let assignments = ctx
                            .factory
                            .assignments_since(&factory_before.expect("taken before execute"));
                        j.record_query(k, mutations, assignments, &target)?;
                        durability.as_mut().expect("durable mode").journaled += 1;
                    }
                    let actuals = ctx.take_join_trace();
                    record_joins(&mut join_stats, qi, &actuals);
                    query_stats.push(QueryStat {
                        query: query.name.clone(),
                        stage: stage_index,
                        overlapped: false,
                        rows_output: (exec.rows_output - rows_before) as u64,
                        eval: eval_start.elapsed(),
                        apply: Duration::ZERO,
                    });
                }
            }
        }
        // Durable epilogue: fold the WAL into a final snapshot so the
        // journal directory holds the full target compactly.
        if let Some(j) = journal.as_mut() {
            target.end_mutation_log();
            j.finish(&target, &ctx.factory.export_state())?;
        }
        shard_stats = ctx.take_shard_stats();
        columnar.absorb(&ctx.take_columnar_stats());
        timings.execute = start.elapsed();

        // Stage 6: verification.
        if options.verify_target {
            let start = Instant::now();
            verify_target_instance(&augmented, &target)?;
            timings.verify = start.elapsed();
        }
    }

    Ok(MorphaseRun {
        target,
        timings,
        snf,
        normal,
        input_clauses: augmented.clauses.len(),
        generated_clauses: generated,
        exec,
        columnar,
        plans,
        estimated_rows,
        join_stats,
        threads: options.parallelism.threads(),
        shard_stats,
        query_stats,
        durability,
    })
}

/// Stage 6 of the pipeline: validate a produced target against the augmented
/// program's target schema, keys, and (non-Skolem-key) constraints. Shared by
/// [`Morphase::run_inner`] and the standing [`crate::MaterializedPipeline`],
/// which re-verifies at full-build boundaries.
pub(crate) fn verify_target_instance(augmented: &Program, target: &Instance) -> Result<()> {
    wol_model::validate::check_keyed_instance(
        target,
        &augmented.target.schema,
        &augmented.target.keys,
    )
    .map_err(|e| crate::MorphaseError::Verification(e.to_string()))?;
    let target_constraints: Vec<&wol_lang::Clause> = augmented
        .target_constraints()
        .into_iter()
        .map(|(_, c)| c)
        .filter(|c| {
            // Skolem-style key constraints are enforced by construction;
            // checking them against the Skolem-created identities would
            // re-create them, so only the remaining constraints are checked.
            !matches!(
                wol_engine::classify_constraint(c),
                wol_engine::ConstraintClass::SkolemKey(_)
            )
        })
        .collect();
    let refs: Vec<&Instance> = vec![target];
    let dbs = wol_engine::Databases::new(&refs);
    wol_engine::enforce_constraints(&target_constraints, &dbs)
        .map_err(|e| crate::MorphaseError::Verification(e.to_string()))?;
    Ok(())
}

/// The output of the pipeline's compile side (stages 0–4): the augmented
/// program, its normal form, and the compiled CPL queries with their planner
/// estimates. Factored out of [`Morphase::run_inner`] so the standing
/// [`crate::MaterializedPipeline`] compiles against (re-)mutated sources
/// exactly the way a full run does — same metadata generation, same
/// normalisation options, same statistics-fed planner.
pub(crate) struct CompiledPipeline {
    /// The program with auto-generated key/merge constraint clauses added.
    pub augmented: Program,
    /// Number of auto-generated constraint clauses.
    pub generated: usize,
    /// Statistics of the snf rewriting stage.
    pub snf: SnfStats,
    /// The normal-form program.
    pub normal: NormalProgram,
    /// The compiled CPL queries, one per normal clause.
    pub queries: Vec<cpl::Query>,
    /// Rendered plans, parallel to `queries`.
    pub plans: Vec<String>,
    /// The planner's estimated output rows per query.
    pub estimated_rows: Vec<u64>,
    /// Per-join output estimates per query (post-order).
    pub join_estimates: Vec<Vec<cpl::JoinEstimate>>,
    /// Compile-side stage timings (`execute`/`verify` still zero).
    pub timings: StageTimings,
}

/// Stages 0–4 of the pipeline: meta-data constraint generation, validation,
/// optional source-constraint checking, snf rewriting, normalisation, and
/// translation to CPL with statistics-fed planning.
pub(crate) fn compile_stages(
    options: PipelineOptions,
    program: &Program,
    sources: &[&Instance],
) -> Result<CompiledPipeline> {
    Ok(compile_stages_ext(options, program, sources, &[], None)?.0)
}

/// [`compile_stages`] with the federated extensions: `external` adds
/// backend-provider statistics the planner consults before the live
/// instances, and `catalog` (when given, and plan optimisation is on)
/// switches stage 4 to the pushdown-aware planner, returning the predicates
/// diverted per query.
pub(crate) fn compile_stages_ext(
    options: PipelineOptions,
    program: &Program,
    sources: &[&Instance],
    external: &[cpl::ExternalClassStats],
    catalog: Option<&cpl::PushdownCatalog>,
) -> Result<(CompiledPipeline, Vec<Vec<cpl::PushedPredicate>>)> {
    let mut timings = StageTimings::default();

    // Stage 0: meta-data constraint generation.
    let start = Instant::now();
    let mut augmented = program.clone();
    let mut generated = 0usize;
    if options.generate_metadata_constraints {
        let key_clauses = generate_key_clauses(&augmented.target.schema, &augmented.target.keys);
        generated += key_clauses.len();
        for clause in key_clauses {
            augmented.add_clause(clause);
        }
        let source_bindings: Vec<(wol_model::Schema, wol_model::KeySpec)> = augmented
            .sources
            .iter()
            .map(|b| (b.schema.clone(), b.keys.clone()))
            .collect();
        for (schema, keys) in source_bindings {
            let merge_clauses = generate_merge_key_clauses(&schema, &keys);
            generated += merge_clauses.len();
            for clause in merge_clauses {
                augmented.add_clause(clause);
            }
        }
    }
    timings.metadata = start.elapsed();

    // Stage 1: validation.
    let start = Instant::now();
    augmented.validate()?;
    timings.validate = start.elapsed();

    // Stage 1b: source constraint checking (optional).
    if options.check_source_constraints && !sources.is_empty() {
        let constraints: Vec<&wol_lang::Clause> = augmented
            .source_constraints()
            .into_iter()
            .map(|(_, c)| c)
            .collect();
        let dbs = wol_engine::Databases::new(sources);
        wol_engine::enforce_constraints(&constraints, &dbs)
            .map_err(|e| crate::MorphaseError::Verification(e.to_string()))?;
    }

    // Stage 2: semi-normal form.
    let start = Instant::now();
    let snf_clauses = program_to_snf(&augmented.clauses);
    let snf = snf_stats(&augmented.clauses, &snf_clauses);
    timings.snf = start.elapsed();

    // Stage 3: normalisation.
    let start = Instant::now();
    let normalize_options = NormalizeOptions {
        use_target_keys: options.use_target_keys,
        use_source_constraints: options.use_source_constraints,
        ..NormalizeOptions::default()
    };
    let normal = wol_engine::normalize(&augmented, &normalize_options)?;
    timings.normalize = start.elapsed();

    // Stage 4: translation to CPL. The planner is fed extent,
    // distinct-value and histogram statistics read from the live source
    // instances, so join orders reflect the data actually being
    // transformed — including its skew, under the default histogram
    // cost model.
    let start = Instant::now();
    let stats = cpl::Statistics::from_instances(sources)
        .with_external(external.to_vec())
        .with_cost_model(options.cost_model);
    let (queries, pushed) = match catalog {
        Some(catalog) if options.optimize_plans => {
            crate::compile::compile_program_pushdown(&normal, &stats, catalog)?
        }
        _ => {
            let mode = if options.optimize_plans {
                PlanMode::PlannerWithStats(&stats)
            } else {
                PlanMode::Raw
            };
            (compile_program_with(&normal, mode)?, Vec::new())
        }
    };
    let plans: Vec<String> = queries.iter().map(|q| q.plan.render()).collect();
    let estimated_rows = queries
        .iter()
        .map(|q| cpl::estimate_rows(&q.plan, &stats).round() as u64)
        .collect();
    // Per-join estimates are pure planner work over the compiled plans;
    // computing them here keeps the execute timing honest.
    let join_estimates: Vec<Vec<cpl::JoinEstimate>> = queries
        .iter()
        .map(|q| cpl::estimate_join_outputs(&q.plan, &stats))
        .collect();
    timings.compile = start.elapsed();

    Ok((
        CompiledPipeline {
            augmented,
            generated,
            snf,
            normal,
            queries,
            plans,
            estimated_rows,
            join_estimates,
            timings,
        },
        pushed,
    ))
}

/// FNV-1a (64-bit) fingerprint of the *compiled* program a durable journal
/// belongs to: target schema name, source schema names, and every compiled
/// query's name and rendered plan. Any change to the program, the schemas it
/// binds, or how it compiled produces a different fingerprint, which resets
/// (rather than resumes) an existing journal.
fn program_fingerprint(
    target_schema: &str,
    sources: &[&Instance],
    queries: &[cpl::Query],
    plans: &[String],
) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    fn eat(hash: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *hash ^= u64::from(b);
            *hash = hash.wrapping_mul(PRIME);
        }
        // Field separator so concatenation ambiguities don't collide.
        *hash ^= 0xFF;
        *hash = hash.wrapping_mul(PRIME);
    }
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    eat(&mut hash, target_schema.as_bytes());
    for source in sources {
        eat(&mut hash, source.schema_name().as_bytes());
    }
    for (query, plan) in queries.iter().zip(plans) {
        eat(&mut hash, query.name.as_bytes());
        eat(&mut hash, plan.as_bytes());
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_model::{ClassName, Value};
    use workloads::cities::{generate_euro, CitiesWorkload};
    use workloads::people::{generate_couples, PeopleWorkload};
    use workloads::wide;

    #[test]
    fn full_pipeline_on_the_cities_workload() {
        let w = CitiesWorkload::new();
        let program = w.euro_program();
        let source = generate_euro(5, 4, 99);
        let run = Morphase::new().transform(&program, &[&source][..]).unwrap();
        assert_eq!(run.target.extent_size(&ClassName::new("CountryT")), 5);
        assert_eq!(run.target.extent_size(&ClassName::new("CityT")), 20);
        assert!(run.timings.total() >= run.timings.compile_time());
        assert!(run.exec.rows_scanned > 0);
        assert!(!run.plans.is_empty());
        assert!(run.snf.atoms_after >= run.snf.atoms_before);
        // Metadata generated the target key clauses automatically.
        assert!(run.generated_clauses >= 3);
        assert!(run.input_clauses > program.clauses.len());
    }

    #[test]
    fn metadata_generation_lets_the_user_omit_key_clauses() {
        // The same cities program *without* the hand-written (C2)/(C3) key
        // clauses still normalises, because the target KeySpec generates them.
        let w = CitiesWorkload::new();
        let text = "T1: X in CountryT, X.name = E.name, X.language = E.language, X.currency = E.currency <= E in CountryE;\n\
                    T2: Y in CityT, Y.name = E.name, Y.place = ins_euro_city(X) <= E in CityE, X in CountryT, X.name = E.country.name;";
        let program = wol_lang::program::Program::new(
            "no_keys_written",
            vec![wol_lang::program::SchemaBinding::keyed(
                w.euro_schema.clone(),
                w.euro_keys.clone(),
            )],
            wol_lang::program::SchemaBinding::keyed(w.target_schema.clone(), w.target_keys.clone()),
        )
        .with_text(text);
        let source = generate_euro(3, 2, 5);
        let run = Morphase::new().transform(&program, &[&source][..]).unwrap();
        assert_eq!(run.target.extent_size(&ClassName::new("CityT")), 6);
        assert!(run.generated_clauses > 0);
    }

    /// Query-level parallelism end to end: at every thread count the
    /// overlapped pipeline produces the bit-identical target and equal
    /// merged `ExecStats` as the sequential one, reports per-query stats in
    /// program order with non-decreasing stage indices, and actually
    /// overlaps the (source-only, hence independent) cities queries.
    #[test]
    fn query_level_parallelism_is_bit_identical_to_sequential() {
        let w = CitiesWorkload::new();
        let program = w.euro_program();
        let source = generate_euro(6, 4, 7);
        let sequential = Morphase::with_options(PipelineOptions {
            parallelism: cpl::Parallelism::sequential(),
            ..PipelineOptions::default()
        })
        .transform(&program, &[&source][..])
        .unwrap();
        assert!(sequential.query_stats.iter().all(|q| !q.overlapped));
        let names: Vec<&str> = sequential
            .query_stats
            .iter()
            .map(|q| q.query.as_str())
            .collect();
        for threads in [2usize, 4, 8] {
            let run = Morphase::with_options(PipelineOptions {
                parallelism: cpl::Parallelism::new(threads),
                ..PipelineOptions::default()
            })
            .transform(&program, &[&source][..])
            .unwrap();
            assert_eq!(
                run.target, sequential.target,
                "target diverged at {threads} threads"
            );
            assert_eq!(
                run.exec, sequential.exec,
                "merged ExecStats diverged at {threads} threads"
            );
            // Per-query stats stay in program order whatever overlapped.
            let run_names: Vec<&str> = run.query_stats.iter().map(|q| q.query.as_str()).collect();
            assert_eq!(run_names, names);
            assert!(
                run.query_stats.windows(2).all(|w| w[0].stage <= w[1].stage),
                "stage indices must be non-decreasing in program order"
            );
            // The cities queries read only source extents, so they are
            // independent: the scheduler must actually overlap them.
            assert!(
                run.query_stats.iter().any(|q| q.overlapped),
                "independent queries never overlapped at {threads} threads"
            );
            assert!(run.join_stats.iter().eq(sequential.join_stats.iter()));
        }
    }

    fn temp_journal_dir(label: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wol-durable-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A durable run produces the bit-identical target of a plain run, and a
    /// second durable run over the same journal resumes (skipping every
    /// query) to the same target.
    #[test]
    fn durable_run_matches_plain_and_resumes_to_identity() {
        let w = CitiesWorkload::new();
        let program = w.euro_program();
        let source = generate_euro(5, 4, 99);
        let plain = Morphase::new().transform(&program, &[&source][..]).unwrap();
        let dir = temp_journal_dir("identity");
        let durable = crate::DurableOptions::new(&dir);
        let run = Morphase::new()
            .transform_durable(&program, &[&source][..], &durable)
            .unwrap();
        assert_eq!(run.target, plain.target);
        let d = run.durability.unwrap();
        assert!(!d.resumed);
        assert_eq!(d.journaled, plain.query_stats.len() as u64);
        // Resume over the finished journal: everything is already durable.
        let resumed = Morphase::new()
            .transform_durable(&program, &[&source][..], &durable)
            .unwrap();
        assert_eq!(resumed.target, plain.target);
        assert_eq!(
            resumed.target.deep_eq_report(&plain.target),
            None,
            "resumed target must be bit-identical"
        );
        let d = resumed.durability.unwrap();
        assert!(d.resumed);
        assert_eq!(d.skipped, plain.query_stats.len() as u64);
        assert_eq!(d.journaled, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Kill the run mid-journal with an injected fault; the resumed run
    /// skips the completed prefix and lands on the bit-identical target.
    #[test]
    fn durable_run_killed_mid_journal_resumes_bit_identically() {
        let w = CitiesWorkload::new();
        let program = w.euro_program();
        let source = generate_euro(6, 3, 7);
        let plain = Morphase::new().transform(&program, &[&source][..]).unwrap();
        let dir = temp_journal_dir("crash");
        // Crash 40 bytes into the journal's WAL: the first query's batch is
        // torn, so nothing (or only a prefix) survives.
        let crashing =
            crate::DurableOptions::new(&dir).with_fault(storage::persist::FaultPolicy::torn_at(40));
        let err = Morphase::new()
            .transform_durable(&program, &[&source][..], &crashing)
            .unwrap_err();
        assert!(matches!(err, crate::MorphaseError::Durability(_)), "{err}");
        // Resume without the fault: completes and matches the plain run.
        let durable = crate::DurableOptions::new(&dir);
        let resumed = Morphase::new()
            .transform_durable(&program, &[&source][..], &durable)
            .unwrap();
        assert_eq!(resumed.target, plain.target);
        let d = resumed.durability.unwrap();
        assert!(d.recovered_torn_tail, "the torn batch must be discarded");
        assert_eq!(
            d.skipped + d.journaled,
            plain.query_stats.len() as u64,
            "every query is either recovered or re-run"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A journal left by a different program is reset, not resumed.
    #[test]
    fn durable_run_resets_a_foreign_journal() {
        let w = CitiesWorkload::new();
        let source = generate_euro(3, 2, 5);
        let dir = temp_journal_dir("foreign");
        let durable = crate::DurableOptions::new(&dir);
        Morphase::new()
            .transform_durable(&w.euro_program(), &[&source][..], &durable)
            .unwrap();
        // A different program (people workload) reuses the directory.
        let p = PeopleWorkload::new();
        let p_source = generate_couples(3, 4);
        let run = Morphase::new()
            .transform_durable(&p.program(), &[&p_source][..], &durable)
            .unwrap();
        let d = run.durability.unwrap();
        assert!(d.reset, "foreign journal must be discarded");
        assert!(!d.resumed);
        assert_eq!(run.target.extent_size(&ClassName::new("Marriage")), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compile_only_runs_do_not_touch_sources() {
        let w = CitiesWorkload::new();
        let run = Morphase::new().compile(&w.euro_program()).unwrap();
        assert!(run.target.is_empty());
        assert!(run.normal.len() >= 3);
        assert_eq!(run.exec.rows_scanned, 0);
    }

    #[test]
    fn people_workload_round_trips_with_verification() {
        let w = PeopleWorkload::new();
        let program = w.program();
        let source = generate_couples(3, 4);
        let run = Morphase::new().transform(&program, &[&source][..]).unwrap();
        assert_eq!(run.target.extent_size(&ClassName::new("Marriage")), 3);
        // Verification checked the target against schema and keys.
        assert!(run.timings.verify > Duration::ZERO);
    }

    #[test]
    fn source_constraint_checking_rejects_bad_sources() {
        let w = CitiesWorkload::new();
        let mut program = w.euro_program();
        program
            .add_text(CitiesWorkload::euro_constraints_text())
            .unwrap();
        // A source where one country has two capitals violates (C5).
        let mut source = generate_euro(2, 2, 1);
        let second_city = source
            .objects(&ClassName::new("CityE"))
            .map(|(oid, _)| oid.clone())
            .nth(1)
            .unwrap();
        let mut v = source.value(&second_city).unwrap().clone();
        if let Value::Record(ref mut fields) = v {
            fields.insert("is_capital".into(), Value::bool(true));
        }
        source.update(&second_city, v).unwrap();
        let options = PipelineOptions {
            check_source_constraints: true,
            ..PipelineOptions::default()
        };
        let err = Morphase::with_options(options)
            .transform(&program, &[&source][..])
            .unwrap_err();
        assert!(matches!(err, crate::MorphaseError::Verification(_)));
    }

    #[test]
    fn compile_time_of_partial_programs_exceeds_normal_form_programs() {
        // The shape of the paper's ~6x claim: compiling a program that needs
        // normalisation does strictly more work than compiling one already in
        // normal form. (The exact ratio is measured by bench E1.)
        let normal_run = Morphase::new()
            .compile(&wide::normal_form_program(16))
            .unwrap();
        let partial_run = Morphase::new()
            .compile(&wide::partial_program(16, 8, true))
            .unwrap();
        assert_eq!(normal_run.normal.len(), 1);
        assert_eq!(partial_run.normal.len(), 8);
        assert!(partial_run.normal.size() >= normal_run.normal.size());
    }

    #[test]
    fn omitting_keys_blows_up_the_normal_form() {
        let options = PipelineOptions {
            use_target_keys: false,
            generate_metadata_constraints: false,
            ..PipelineOptions::default()
        };
        let with_keys = Morphase::new()
            .compile(&wide::partial_program(8, 4, true))
            .unwrap();
        let without_keys = Morphase::with_options(options)
            .compile(&wide::partial_program(8, 4, false))
            .unwrap();
        assert!(without_keys.normal.len() > with_keys.normal.len());
    }
}
