//! # cpl
//!
//! A small complex-value query engine standing in for **CPL / Kleisli**, the
//! "database programming language for complex values developed at the
//! University of Pennsylvania" that Morphase compiles normal-form WOL programs
//! into (Section 5 of the paper). The real CPL is a closed research prototype;
//! this crate implements the fragment Morphase needs:
//!
//! * row expressions over complex values ([`expr::Expr`]): projection through
//!   object identities, record/variant construction, Skolem object creation,
//!   comparisons and boolean connectives;
//! * a physical algebra ([`plan::Plan`]): class scans, filters, binding maps,
//!   nested-loop, hash (single- or composite-key) and cross joins, and
//!   distinct;
//! * a single-pass executor ([`exec`]) that runs a plan against a set of
//!   source instances and applies *insert actions* to build the target
//!   instance, merging partial inserts by Skolem key;
//! * a cost-based join-graph planner ([`optimizer`]): decomposes a compiled
//!   plan into scans plus a conjunct pool and greedily re-joins the cheapest
//!   connected pair, fed by extent statistics and per-attribute equi-depth
//!   histograms over the live instances ([`optimizer::Statistics`],
//!   [`optimizer::CostModel`]) with ndv propagated through join outputs; the
//!   flat `1/ndv` model remains selectable as the differential baseline, and
//!   the legacy rule-based rewriter survives as
//!   [`optimizer::optimize_reference`];
//! * execution statistics ([`exec::ExecStats`]) used by the benchmark harness.
//!
//! ## Threading model
//!
//! The executor runs morsel-style partitioned parallelism over a
//! **persistent worker pool** ([`wol_model::WorkerPool`]; long-lived
//! channel-fed workers, caller participation, panic propagation on join),
//! governed by a [`Parallelism`] knob (default: available cores, overridable
//! via the `WOL_THREADS` environment variable) threaded through
//! [`expr::EvalCtx`]. Because a pool dispatch round costs microseconds where
//! a `std::thread::scope` spawn round cost ~100µs, operators go parallel
//! from ~128 input rows instead of 1024. The contract:
//!
//! * **Shared immutably** — the source [`wol_model::Instance`]s. Extents,
//!   attribute indexes and histograms are read concurrently from every
//!   worker; the lazy index cache sits behind an `RwLock` inside `Instance`,
//!   and mutation requires `&mut`, so a parallel section can never observe a
//!   write.
//! * **Partitioned** — hash-join *build sides* and index-probed *driving
//!   rows* are sharded by key hash (a distinct key, its probe and its
//!   probe-cache entry belong to exactly one worker); scans+filters, maps and
//!   loop joins are split into contiguous input chunks.
//! * **Deterministic by construction** — partition results are reassembled
//!   in input order (chunk concatenation, or per-driving-row slots), and a
//!   key's build rows stay in build order within their shard. Skolem
//!   creation — whose identity numbering depends on first-call order — runs
//!   off the main thread only under the **two-phase key-claim protocol**
//!   ([`wol_model::SkolemClaims`]): workers record `(class, key)` claims and
//!   mint provisional identities, then a resolution pass on the owning
//!   thread replays the claims in input order against the shared factory
//!   and rewrites the outputs, so the final numbering equals the sequential
//!   run's exactly. The protocol covers `Map` bindings and the insert
//!   actions (where compiled programs put their Skolems — both restricted
//!   to *value position*, [`Expr::skolem_parallel_safe`]); Skolems anywhere
//!   else pin their operator to the sequential path. Insert actions always
//!   *apply* on the owning thread in row order. The output row stream, the
//!   target instance, and the merged [`ExecStats`] totals are therefore
//!   bit-identical at every thread count; this is enforced by the
//!   thread-matrix differential tests in `tests/properties.rs` (including
//!   the Skolem-insertion soak proptest) and the partition edge-case tests
//!   in [`exec`].

pub mod columnar;
pub mod error;
pub mod exec;
pub mod expr;
pub mod optimizer;
pub mod plan;

pub use error::CplError;
pub use exec::{
    apply_evaluated_query, evaluate_query, execute_query, run_plan, scan_order_trace,
    ColumnarStats, EvaluatedQuery, ExecStats, Row,
};
pub use expr::Expr;
pub use optimizer::{
    estimate_join_outputs, estimate_rows, optimize, optimize_reference, optimize_with_pushdown,
    optimize_with_stats, CostModel, ExternalClassStats, JoinEstimate, PushCmp, PushdownCatalog,
    PushedPredicate, Statistics,
};
pub use plan::{InsertAction, Plan, Query};
pub use wol_model::{Parallelism, WorkerPool};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CplError>;
