//! Quick probe of the E6 genome pipeline: plans, exec stats, stage timings.
//!
//! ```text
//! cargo run --release --example e6_probe
//! ```

use wol_repro::morphase::{render_report, Morphase};
use wol_repro::workloads::genome::{self, GenomeParams};

fn main() {
    let params = GenomeParams {
        clones: 100,
        markers: 300,
        density: 0.6,
        seed: 22,
    };
    let source = genome::generate_source(&params);
    let program = genome::program();
    let run = Morphase::new()
        .transform(&program, &[&source][..])
        .expect("runs");
    println!("{}", render_report(&run));
    for plan in &run.plans {
        println!("{plan}");
    }
}
