//! Validation of instances against schemas.
//!
//! An instance is valid for a schema iff every object's value conforms to the
//! type its class declares, and every object identity occurring inside any
//! value is present in one of the instance's extents (Section 2.1). Keyed
//! schemas additionally require the key specification to be satisfied.

use crate::error::ModelError;
use crate::instance::Instance;
use crate::keys::KeySpec;
use crate::schema::Schema;
use crate::types::{BaseType, ClassName, Type};
use crate::values::Value;
use crate::Result;

/// Check that `value` conforms to `ty`.
///
/// Object identities are checked to have the class the type requires and to be
/// present in the instance. `Absent` is only allowed for `Optional` types.
pub fn check_value(value: &Value, ty: &Type, instance: &Instance, context: &str) -> Result<()> {
    match (ty, value) {
        (Type::Base(BaseType::Bool), Value::Bool(_)) => Ok(()),
        (Type::Base(BaseType::Int), Value::Int(_)) => Ok(()),
        (Type::Base(BaseType::Real), Value::Real(_)) => Ok(()),
        (Type::Base(BaseType::Str), Value::Str(_)) => Ok(()),
        (Type::Unit, Value::Unit) => Ok(()),
        (Type::Optional(_), Value::Absent) => Ok(()),
        (Type::Optional(inner), v) => check_value(v, inner, instance, context),
        (Type::Class(class), Value::Oid(oid)) => {
            if oid.class() != class {
                return Err(ModelError::TypeMismatch {
                    expected: format!("object of class `{class}`"),
                    found: format!("object of class `{}`", oid.class()),
                    context: context.to_string(),
                });
            }
            if !instance.contains(oid) {
                return Err(ModelError::DanglingOid(format!("{oid} (at {context})")));
            }
            Ok(())
        }
        (Type::Set(elem), Value::Set(items)) => {
            for (i, item) in items.iter().enumerate() {
                check_value(item, elem, instance, &format!("{context}{{{i}}}"))?;
            }
            Ok(())
        }
        (Type::List(elem), Value::List(items)) => {
            for (i, item) in items.iter().enumerate() {
                check_value(item, elem, instance, &format!("{context}[{i}]"))?;
            }
            Ok(())
        }
        (Type::Record(fields), Value::Record(actual)) => {
            for (label, field_ty) in fields {
                match actual.get(label) {
                    Some(v) => {
                        check_value(v, field_ty, instance, &format!("{context}.{label}"))?;
                    }
                    None => {
                        // Missing fields are only allowed when the field is optional.
                        if !matches!(field_ty, Type::Optional(_)) {
                            return Err(ModelError::TypeMismatch {
                                expected: format!("field `{label}`"),
                                found: "missing field".to_string(),
                                context: context.to_string(),
                            });
                        }
                    }
                }
            }
            // Reject fields the type does not declare.
            for label in actual.keys() {
                if !fields.iter().any(|(l, _)| l == label) {
                    return Err(ModelError::TypeMismatch {
                        expected: "no such field".to_string(),
                        found: format!("unexpected field `{label}`"),
                        context: context.to_string(),
                    });
                }
            }
            Ok(())
        }
        (Type::Variant(alts), Value::Variant(label, payload)) => {
            match alts.iter().find(|(l, _)| l == label) {
                Some((_, alt_ty)) => {
                    check_value(payload, alt_ty, instance, &format!("{context}<{label}>"))
                }
                None => Err(ModelError::TypeMismatch {
                    expected: format!(
                        "one of the variant alternatives {:?}",
                        alts.iter().map(|(l, _)| l.as_str()).collect::<Vec<_>>()
                    ),
                    found: format!("variant `{label}`"),
                    context: context.to_string(),
                }),
            }
        }
        (expected, found) => Err(ModelError::TypeMismatch {
            expected: format!("{expected:?}"),
            found: found.kind().to_string(),
            context: context.to_string(),
        }),
    }
}

/// Validate a whole instance against a schema.
pub fn check_instance(instance: &Instance, schema: &Schema) -> Result<()> {
    schema.validate()?;
    // Every populated class must be declared.
    for class in instance.populated_classes() {
        if instance.extent_size(&class) > 0 && !schema.has_class(&class) {
            return Err(ModelError::UnknownClass(class));
        }
    }
    // Every object's value must conform to its class's type.
    for (class, ty) in schema.classes() {
        for (oid, value) in instance.objects(class) {
            check_value(value, ty, instance, &format!("{class}({oid})"))?;
        }
    }
    Ok(())
}

/// Validate an instance against a keyed schema: schema conformance plus key
/// satisfaction (Section 2.2: "an instance of a keyed schema `(S, K)` is an
/// instance of `S` that satisfies `K`").
pub fn check_keyed_instance(instance: &Instance, schema: &Schema, keys: &KeySpec) -> Result<()> {
    check_instance(instance, schema)?;
    keys.check(instance)
}

/// Collect the classes of a schema whose extents contain at least one object
/// that fails validation. Used for diagnostics in the Morphase pipeline.
pub fn invalid_classes(instance: &Instance, schema: &Schema) -> Vec<ClassName> {
    let mut out = Vec::new();
    for (class, ty) in schema.classes() {
        let bad = instance.objects(class).any(|(oid, value)| {
            check_value(value, ty, instance, &format!("{class}({oid})")).is_err()
        });
        if bad {
            out.push(class.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::Oid;

    fn euro_schema() -> Schema {
        Schema::new("euro")
            .with_class(
                "CityE",
                Type::record([
                    ("name", Type::str()),
                    ("is_capital", Type::bool()),
                    ("country", Type::class("CountryE")),
                ]),
            )
            .with_class(
                "CountryE",
                Type::record([
                    ("name", Type::str()),
                    ("language", Type::str()),
                    ("currency", Type::str()),
                ]),
            )
    }

    fn country(name: &str) -> Value {
        Value::record([
            ("name", Value::str(name)),
            ("language", Value::str("English")),
            ("currency", Value::str("sterling")),
        ])
    }

    #[test]
    fn valid_instance_passes() {
        let schema = euro_schema();
        let mut inst = Instance::new("euro");
        let uk = inst.insert_fresh(&ClassName::new("CountryE"), country("United Kingdom"));
        inst.insert_fresh(
            &ClassName::new("CityE"),
            Value::record([
                ("name", Value::str("London")),
                ("is_capital", Value::bool(true)),
                ("country", Value::oid(uk)),
            ]),
        );
        assert!(check_instance(&inst, &schema).is_ok());
        assert!(invalid_classes(&inst, &schema).is_empty());
    }

    #[test]
    fn dangling_reference_detected() {
        let schema = euro_schema();
        let mut inst = Instance::new("euro");
        let ghost = Oid::new(ClassName::new("CountryE"), 42);
        inst.insert_fresh(
            &ClassName::new("CityE"),
            Value::record([
                ("name", Value::str("London")),
                ("is_capital", Value::bool(true)),
                ("country", Value::oid(ghost)),
            ]),
        );
        let err = check_instance(&inst, &schema).unwrap_err();
        assert!(matches!(err, ModelError::DanglingOid(_)));
        assert_eq!(
            invalid_classes(&inst, &schema),
            vec![ClassName::new("CityE")]
        );
    }

    #[test]
    fn wrong_field_type_detected() {
        let schema = euro_schema();
        let mut inst = Instance::new("euro");
        inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::int(3)),
                ("language", Value::str("English")),
                ("currency", Value::str("sterling")),
            ]),
        );
        assert!(matches!(
            check_instance(&inst, &schema).unwrap_err(),
            ModelError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn missing_required_field_detected() {
        let schema = euro_schema();
        let mut inst = Instance::new("euro");
        inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([("name", Value::str("France"))]),
        );
        assert!(check_instance(&inst, &schema).is_err());
    }

    #[test]
    fn unexpected_field_detected() {
        let schema = euro_schema();
        let mut inst = Instance::new("euro");
        let mut fields = country("France");
        if let Value::Record(ref mut map) = fields {
            map.insert("population".into(), Value::int(67));
        }
        inst.insert_fresh(&ClassName::new("CountryE"), fields);
        assert!(check_instance(&inst, &schema).is_err());
    }

    #[test]
    fn optional_fields_may_be_absent() {
        let schema = Schema::new("s").with_class(
            "Marker",
            Type::record([
                ("name", Type::str()),
                ("position", Type::optional(Type::int())),
            ]),
        );
        let mut inst = Instance::new("s");
        inst.insert_fresh(
            &ClassName::new("Marker"),
            Value::record([("name", Value::str("D22S1")), ("position", Value::Absent)]),
        );
        inst.insert_fresh(
            &ClassName::new("Marker"),
            Value::record([("name", Value::str("D22S2"))]),
        );
        inst.insert_fresh(
            &ClassName::new("Marker"),
            Value::record([("name", Value::str("D22S3")), ("position", Value::int(17))]),
        );
        assert!(check_instance(&inst, &schema).is_ok());
    }

    #[test]
    fn variant_values_checked_against_alternatives() {
        let schema = Schema::new("s")
            .with_class("StateT", Type::record([("name", Type::str())]))
            .with_class("CountryT", Type::record([("name", Type::str())]))
            .with_class(
                "CityT",
                Type::record([
                    ("name", Type::str()),
                    (
                        "place",
                        Type::variant([
                            ("state", Type::class("StateT")),
                            ("country", Type::class("CountryT")),
                        ]),
                    ),
                ]),
            );
        let mut inst = Instance::new("s");
        let pa = inst.insert_fresh(
            &ClassName::new("StateT"),
            Value::record([("name", Value::str("PA"))]),
        );
        inst.insert_fresh(
            &ClassName::new("CityT"),
            Value::record([
                ("name", Value::str("Philadelphia")),
                ("place", Value::variant("state", Value::oid(pa))),
            ]),
        );
        assert!(check_instance(&inst, &schema).is_ok());

        // Wrong alternative label fails.
        let mut bad = Instance::new("s");
        let pa2 = bad.insert_fresh(
            &ClassName::new("StateT"),
            Value::record([("name", Value::str("PA"))]),
        );
        bad.insert_fresh(
            &ClassName::new("CityT"),
            Value::record([
                ("name", Value::str("Philadelphia")),
                ("place", Value::variant("planet", Value::oid(pa2))),
            ]),
        );
        assert!(check_instance(&bad, &schema).is_err());
    }

    #[test]
    fn class_mismatch_in_reference_detected() {
        let schema = euro_schema();
        let mut inst = Instance::new("euro");
        let city = inst.insert_fresh(
            &ClassName::new("CityE"),
            Value::record([
                ("name", Value::str("Lyon")),
                ("is_capital", Value::bool(false)),
                // A city pointing at another city instead of a country.
                ("country", Value::oid(Oid::new(ClassName::new("CityE"), 0))),
            ]),
        );
        let _ = city;
        assert!(check_instance(&inst, &schema).is_err());
    }

    #[test]
    fn populated_undeclared_class_detected() {
        let schema = euro_schema();
        let mut inst = Instance::new("euro");
        inst.insert_fresh(
            &ClassName::new("Mystery"),
            Value::record([("x", Value::int(1))]),
        );
        assert!(matches!(
            check_instance(&inst, &schema).unwrap_err(),
            ModelError::UnknownClass(_)
        ));
    }

    #[test]
    fn keyed_instance_check() {
        let schema = euro_schema();
        let keys = KeySpec::new().with_key("CountryE", crate::keys::KeyExpr::path("name"));
        let mut inst = Instance::new("euro");
        inst.insert_fresh(&ClassName::new("CountryE"), country("France"));
        inst.insert_fresh(&ClassName::new("CountryE"), country("France"));
        assert!(check_instance(&inst, &schema).is_ok());
        assert!(check_keyed_instance(&inst, &schema, &keys).is_err());
    }
}
