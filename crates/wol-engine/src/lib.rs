//! # wol-engine
//!
//! The WOL engine: the paper's primary contribution, implemented as a set of
//! composable analyses and rewrites over [`wol_lang`] programs and
//! [`wol_model`] instances.
//!
//! * [`env`] — reference evaluation: databases, bindings, term evaluation and
//!   body matching.
//! * [`constraints`] — constraint checking and constraint analysis (key
//!   extraction, classification).
//! * [`snf`] — semi-normal form rewriting (Section 5).
//! * [`headform`] — analysis of transformation-clause heads into partial
//!   object descriptions.
//! * [`normalize`] — normalisation by unify/unfold into normal-form clauses,
//!   plus a single-pass executor for normal-form programs.
//! * [`optimize`] — source-constraint-based simplification and unsatisfiable
//!   clause pruning (Section 4.2).
//! * [`semantics`] — the naive multi-pass evaluator (the strategy Section 5
//!   argues is inefficient), used as reference semantics and baseline.
//! * [`completeness`] — static completeness analysis (Section 3.2).
//! * [`info_preserve`] — empirical information-preservation (injectivity)
//!   checking (Section 4.3).
//!
//! # Constraint checking
//!
//! [`check_constraints`] validates constraint clauses by full extent scans;
//! [`enforce_constraints`] fails with the **full** violation list (clause
//! order, then binding order) when any constraint is violated.
//! [`constraints::incremental`] validates a mutation batch by examining only
//! the delta — read-set analysis decides per constraint whether to skip,
//! probe the maintained attribute indexes / re-match seeded bindings, or
//! re-check from scratch — partitioned over the shared worker pool with an
//! output that is bit-identical to the full scan at every thread count (see
//! the module docs for the exactness argument).
//!
//! Every batch validation emits a [`ConstraintCertificate`]: an auditable,
//! independently re-checkable record in the spirit of "Rust emits, Lean
//! re-checks". [`constraints::incremental::recheck`] replays a certificate
//! against a snapshot and fails on any disagreement.
//!
//! ## Certificate wire format (version 1)
//!
//! All integers use the `storage::persist` codec primitives (little-endian
//! fixed-width ints, LEB128 varints, varint-length-prefixed UTF-8 strings,
//! oids as class string + varint id):
//!
//! | Field | Encoding | Meaning |
//! |---|---|---|
//! | magic | 8 raw bytes `b"WOLCERT\0"` | format marker |
//! | version | `u32` | certificate format version (currently 1) |
//! | entry count | varint | number of per-constraint entries |
//! | — entry.constraint | string | clause label (or `<unlabelled>`) |
//! | — entry.mode | `u8` | 0 = skipped, 1 = delta, 2 = full |
//! | — entry.checked | varint | objects/bindings examined |
//! | — entry.probes | varint | attribute-index probes issued |
//! | — entry.violation count | varint | violations recorded for this entry |
//! | — — violation.clause | string | violated clause label |
//! | — — violation.detail | string | human-readable witness description |
//! | — — violation.oid count | varint | participating object identities |
//! | — — — violation.oid | oid | one participating identity |
//! | crc | `u32` | CRC-32 over every preceding byte |
//!
//! Version-bump rules match the persistence layer's: existing field
//! positions, mode tags and the magic are frozen; any change to them — or
//! any new field — requires bumping `CERTIFICATE_VERSION`, and decoders
//! reject versions they do not know. A certificate that fails the CRC, has
//! trailing bytes, or uses an unknown tag is rejected with
//! [`EngineError::Certificate`] — corruption is never silently accepted.

pub mod completeness;
pub mod constraints;
pub mod env;
pub mod error;
pub mod headform;
pub mod info_preserve;
pub mod normalize;
pub mod optimize;
pub mod rotation;
pub mod semantics;
pub mod snf;

pub use completeness::{check_completeness, CompletenessReport};
pub use constraints::incremental::{
    analyze_constraint, check_batch, recheck, BatchCheck, CertEntry, CheckMode,
    ConstraintCertificate, RecheckReport, CERTIFICATE_MAGIC, CERTIFICATE_VERSION,
};
pub use constraints::{
    check_constraint, check_constraints, classify_constraint, enforce_constraints,
    extract_merge_keys, extract_object_keys, ConstraintClass, ObjectKey, Violation,
};
pub use env::{
    eval_term, match_body, match_body_partitioned, match_body_reference, match_body_with_stats,
    Bindings, Databases, MatchStats,
};
pub use error::EngineError;
pub use info_preserve::{canonical_form, check_injective, instances_equivalent, InjectivityReport};
pub use normalize::{execute, normalize, NormalClause, NormalProgram, NormalizeOptions};
pub use rotation::{batch_is_additive, delta_rotations, Rotation, Slot};
pub use semantics::{naive_transform, naive_transform_with_report, NaiveOptions, NaiveReport};
pub use snf::{program_to_snf, to_snf, SnfStats};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
