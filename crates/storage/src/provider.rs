//! Backends as planner-visible *sources*: the [`ScanProvider`] trait plus
//! implementations for the three storage substrates and the streaming
//! ingest driver.
//!
//! A whole-instance load gives the planner nothing to work with: every row
//! of every backend is materialized before the first cardinality question is
//! asked. A [`ScanProvider`] instead exposes each backend class *before*
//! ingest — per-class row counts and distinct-value counts for planning
//! ([`ClassStats`]), a pushed conjunct set plus projection list
//! ([`Pushdown`]), and a deterministic chunked row stream — so the planner
//! can decide join order and predicate placement first, and the ingest path
//! ([`ingest_class`]) only ever materializes the rows that survive the
//! pushed filters.
//!
//! ## Contract (shared by every implementation)
//!
//! * **Determinism** — for a fixed backend state and [`Pushdown`], `scan`
//!   yields the same rows in the same order on every call: backend-native
//!   order (file order for CSV, store order for AceDB, row order for
//!   tables), never hash order. Chunk boundaries fall every `chunk_rows`
//!   surviving rows; chunking must not reorder rows.
//! * **Filter semantics** — a pushed `attr op const` filter keeps exactly
//!   the rows the executor's own predicate evaluation would keep
//!   ([`PushedFilter::matches`] mirrors `cpl`'s comparison semantics:
//!   missing attributes and uncomparable kinds fail ordered comparisons,
//!   `!=` over distinct kinds succeeds). Conjunction: a row must pass every
//!   filter.
//! * **Projection** — when a projection list is given, streamed records
//!   carry only those attributes. Callers must project identically whether
//!   or not filters are pushed, or row identity between modes breaks.
//! * **Stats freshness** — [`ScanProvider::stats`] describes the backend
//!   state the *next* `scan` call will stream (unfiltered totals). Providers
//!   over mutable backends must recompute or invalidate on mutation.
//! * **Residual predicates** — a provider only sees the conjuncts the
//!   planner chose to push; everything else (multi-variable predicates,
//!   computed expressions) remains the executor's obligation. Pushing is an
//!   optimisation, never a semantic filter of last resort.

use std::collections::{BTreeMap, BTreeSet};

use wol_model::histogram::SAMPLE_THRESHOLD;
use wol_model::index::{value_hash, AttrIndex};
use wol_model::{AttrHistogram, ClassName, Instance, Oid, RealVal, Value};

use crate::acedb::{AceMapping, AceStore, AceValue};
use crate::csv::CsvReader;
use crate::error::StorageError;
use crate::relational::{ColumnType, Table};
use crate::Result;

/// Default number of surviving rows per streamed chunk.
pub const DEFAULT_CHUNK_ROWS: usize = 4096;

/// A comparison a backend evaluates natively on one attribute. Mirrors the
/// planner's pushdown operators (`cpl::PushCmp`); the attribute is always on
/// the left.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOp {
    /// `attr = const`.
    Eq,
    /// `attr != const`.
    Neq,
    /// `attr < const`.
    Lt,
    /// `attr =< const`.
    Leq,
    /// `attr > const`.
    Gt,
    /// `attr >= const`.
    Geq,
}

/// One pushed conjunct: `attr op value`.
#[derive(Clone, Debug, PartialEq)]
pub struct PushedFilter {
    /// The attribute compared.
    pub attr: String,
    /// The comparison.
    pub op: PushOp,
    /// The constant compared against.
    pub value: Value,
}

impl PushedFilter {
    /// Whether a row whose `attr` holds `value` (or lacks it, `None`)
    /// passes. Mirrors the executor's semantics exactly: a missing
    /// attribute never passes (the executor's projection error makes the
    /// predicate false), equality across kinds is plain value inequality,
    /// and ordered comparisons over uncomparable kinds fail.
    pub fn matches(&self, value: Option<&Value>) -> bool {
        let Some(value) = value else {
            return false;
        };
        use std::cmp::Ordering;
        match self.op {
            PushOp::Eq => value == &self.value,
            PushOp::Neq => value != &self.value,
            PushOp::Lt => compare(value, &self.value) == Some(Ordering::Less),
            PushOp::Leq => {
                matches!(compare(value, &self.value), Some(o) if o != Ordering::Greater)
            }
            PushOp::Gt => compare(value, &self.value) == Some(Ordering::Greater),
            PushOp::Geq => {
                matches!(compare(value, &self.value), Some(o) if o != Ordering::Less)
            }
        }
    }
}

/// Ordered comparison with the executor's exact domain: integers, reals
/// (including the int/real mixes) and strings; everything else is
/// uncomparable.
fn compare(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(y)),
        (Value::Real(x), Value::Real(y)) => Some(x.cmp(y)),
        (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
        (Value::Int(x), Value::Real(y)) => Some(RealVal(*x as f64).cmp(y)),
        (Value::Real(x), Value::Int(y)) => Some(x.cmp(&RealVal(*y as f64))),
        _ => None,
    }
}

/// What the planner pushed into one scan: the conjuncts the backend must
/// apply (all of them — conjunction) and, optionally, the attributes to
/// materialize per row (`None` = all).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Pushdown {
    /// Conjuncts to apply natively; a row must pass every one.
    pub filters: Vec<PushedFilter>,
    /// Attributes to keep in the streamed records; `None` keeps everything.
    pub projection: Option<BTreeSet<String>>,
}

impl Pushdown {
    /// A pushdown that filters and projects nothing (full scan).
    pub fn none() -> Pushdown {
        Pushdown::default()
    }

    /// True if `attr` survives the projection.
    fn keeps(&self, attr: &str) -> bool {
        self.projection.as_ref().is_none_or(|p| p.contains(attr))
    }
}

/// Per-class statistics a provider reports for planning, describing the
/// *unfiltered* stream the backend would produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassStats {
    /// The served class.
    pub class: ClassName,
    /// Total rows without any pushed filter.
    pub rows: usize,
    /// Approximate distinct values per attribute.
    pub ndvs: BTreeMap<String, usize>,
}

/// Row accounting of one `scan` call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanSummary {
    /// Backend rows read (before pushed filters).
    pub rows_in: usize,
    /// Rows streamed to the sink (after pushed filters).
    pub rows_out: usize,
}

/// A backend the planner can push filters and projections into. See the
/// module docs for the determinism/ordering/stats contract.
pub trait ScanProvider {
    /// Short backend name, for reports (`"csv"`, `"acedb"`, `"relational"`).
    fn name(&self) -> &str;

    /// The classes this provider serves, in deterministic order.
    fn classes(&self) -> Vec<ClassName>;

    /// Planning statistics for one served class; `None` if not served.
    fn stats(&self, class: &ClassName) -> Option<ClassStats>;

    /// Stream the rows of `class` that pass `pushdown`, as record
    /// [`Value`]s, calling `sink` once per chunk of at most `chunk_rows`
    /// rows (in backend order). Returns the row accounting.
    fn scan(
        &self,
        class: &ClassName,
        pushdown: &Pushdown,
        chunk_rows: usize,
        sink: &mut dyn FnMut(Vec<Value>) -> Result<()>,
    ) -> Result<ScanSummary>;
}

/// Emit `row` into the pending chunk, flushing through `sink` when full.
fn push_chunked(
    chunk: &mut Vec<Value>,
    chunk_rows: usize,
    row: Value,
    sink: &mut dyn FnMut(Vec<Value>) -> Result<()>,
) -> Result<()> {
    chunk.push(row);
    if chunk.len() >= chunk_rows.max(1) {
        sink(std::mem::take(chunk))?;
    }
    Ok(())
}

/// Flush the final partial chunk.
fn flush_chunk(
    chunk: &mut Vec<Value>,
    sink: &mut dyn FnMut(Vec<Value>) -> Result<()>,
) -> Result<()> {
    if !chunk.is_empty() {
        sink(std::mem::take(chunk))?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// CSV directory provider.
// ---------------------------------------------------------------------------

struct CsvClass {
    class: ClassName,
    source: String,
    text: String,
    columns: Vec<String>,
    rows: usize,
    ndvs: BTreeMap<String, usize>,
}

/// A directory of `*.csv` files, one class per file (named by file stem),
/// alphabetically ordered. Statistics come from one streaming pass at
/// construction time (which also validates field counts and column-type
/// consistency); scans re-decode the retained text record-at-a-time, so a
/// pushed filter is evaluated on at most the filtered attributes before the
/// row's record value is ever built — dropped rows cost a decode, not an
/// allocation per attribute.
pub struct CsvDirProvider {
    classes: Vec<CsvClass>,
}

impl CsvDirProvider {
    /// Scan `dir` for `*.csv` files and compute per-class statistics.
    pub fn open(dir: &std::path::Path) -> Result<CsvDirProvider> {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| StorageError::io(dir.display().to_string(), e))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "csv"))
            .collect();
        paths.sort();
        let mut classes = Vec::new();
        for path in paths {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| StorageError::io(path.display().to_string(), e))?;
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "csv".to_string());
            classes.push(CsvClass::build(&name, &path.display().to_string(), text)?);
        }
        Ok(CsvDirProvider { classes })
    }

    /// A provider over in-memory CSV texts (`(class name, source label,
    /// text)`), for tests and generated workloads.
    pub fn from_texts(texts: Vec<(String, String, String)>) -> Result<CsvDirProvider> {
        let mut classes = Vec::new();
        for (name, source, text) in texts {
            classes.push(CsvClass::build(&name, &source, text)?);
        }
        Ok(CsvDirProvider { classes })
    }

    fn class(&self, class: &ClassName) -> Option<&CsvClass> {
        self.classes.iter().find(|c| &c.class == class)
    }
}

impl CsvClass {
    /// One streaming validation + statistics pass over the text.
    fn build(name: &str, source: &str, text: String) -> Result<CsvClass> {
        let mut rows = 0usize;
        let mut distinct: Vec<BTreeSet<Value>>;
        let columns: Vec<String>;
        let mut types: Vec<Option<ColumnType>>;
        {
            let mut reader = CsvReader::new(source, &text)?;
            columns = reader.columns().to_vec();
            distinct = vec![BTreeSet::new(); columns.len()];
            types = vec![None; columns.len()];
            while let Some(record) = reader.next_record()? {
                if record.fields.len() != columns.len() {
                    return Err(StorageError::corrupt_at_line(
                        source,
                        record.line,
                        format!("{} fields", columns.len()),
                        format!("{} fields", record.fields.len()),
                    ));
                }
                rows += 1;
                for (i, field) in record.fields.iter().enumerate() {
                    let value = field.value();
                    let ty = match value {
                        Value::Int(_) => ColumnType::Int,
                        Value::Bool(_) => ColumnType::Bool,
                        _ => ColumnType::Str,
                    };
                    match types[i] {
                        None => types[i] = Some(ty),
                        Some(expected) if expected != ty => {
                            return Err(StorageError::corrupt_at_line(
                                source,
                                record.line,
                                format!("a consistently typed column `{}`", columns[i]),
                                format!("`{}`", field.text),
                            ));
                        }
                        Some(_) => {}
                    }
                    distinct[i].insert(value);
                }
            }
        }
        let ndvs = columns
            .iter()
            .zip(distinct)
            .map(|(name, set)| (name.clone(), set.len()))
            .collect();
        Ok(CsvClass {
            class: ClassName::new(name),
            source: source.to_string(),
            text,
            columns,
            rows,
            ndvs,
        })
    }
}

impl ScanProvider for CsvDirProvider {
    fn name(&self) -> &str {
        "csv"
    }

    fn classes(&self) -> Vec<ClassName> {
        self.classes.iter().map(|c| c.class.clone()).collect()
    }

    fn stats(&self, class: &ClassName) -> Option<ClassStats> {
        let c = self.class(class)?;
        Some(ClassStats {
            class: c.class.clone(),
            rows: c.rows,
            ndvs: c.ndvs.clone(),
        })
    }

    fn scan(
        &self,
        class: &ClassName,
        pushdown: &Pushdown,
        chunk_rows: usize,
        sink: &mut dyn FnMut(Vec<Value>) -> Result<()>,
    ) -> Result<ScanSummary> {
        let c = self
            .class(class)
            .ok_or_else(|| StorageError::Missing(format!("csv class `{class}`")))?;
        // Column position of each filtered attribute, resolved once.
        let filter_cols: Vec<(usize, &PushedFilter)> = pushdown
            .filters
            .iter()
            .map(|f| {
                c.columns
                    .iter()
                    .position(|name| name == &f.attr)
                    .map(|i| (i, f))
                    .ok_or_else(|| {
                        StorageError::Missing(format!("csv column `{}` in `{class}`", f.attr))
                    })
            })
            .collect::<Result<_>>()?;
        let mut reader = CsvReader::new(&c.source, &c.text)?;
        let mut summary = ScanSummary::default();
        let mut chunk = Vec::new();
        while let Some(record) = reader.next_record()? {
            summary.rows_in += 1;
            // Cheap pre-filter: decode only the filtered fields first.
            let passes = filter_cols.iter().all(|(i, filter)| {
                record
                    .fields
                    .get(*i)
                    .is_some_and(|field| filter.matches(Some(&field.value())))
            });
            if !passes {
                continue;
            }
            summary.rows_out += 1;
            let mut fields = BTreeMap::new();
            for (name, field) in c.columns.iter().zip(record.fields.iter()) {
                if pushdown.keeps(name) {
                    fields.insert(name.clone(), field.value());
                }
            }
            push_chunked(&mut chunk, chunk_rows, Value::Record(fields), sink)?;
        }
        flush_chunk(&mut chunk, sink)?;
        Ok(summary)
    }
}

// ---------------------------------------------------------------------------
// AceDB provider.
// ---------------------------------------------------------------------------

/// An [`AceStore`] served through a set of [`AceMapping`]s, one model class
/// per mapping, objects in store order. Cross-object references stream as
/// the referenced object's *name* (a string key): in a federated pipeline
/// the linkage is the WOL program's join, not an intra-instance identity.
/// Lists stream as sets of the same key-valued conversions.
pub struct AceProvider {
    store: AceStore,
    mappings: Vec<AceMapping>,
}

impl AceProvider {
    /// Serve `store` through `mappings`.
    pub fn new(store: AceStore, mappings: Vec<AceMapping>) -> AceProvider {
        AceProvider { store, mappings }
    }

    fn mapping(&self, class: &ClassName) -> Option<&AceMapping> {
        self.mappings
            .iter()
            .find(|m| m.model_class == class.as_str())
    }

    fn record(
        object: &crate::acedb::AceObject,
        mapping: &AceMapping,
        pushdown: &Pushdown,
    ) -> Value {
        let mut fields = BTreeMap::new();
        if pushdown.keeps("name") {
            fields.insert("name".to_string(), Value::str(&object.name));
        }
        for (tag, label) in &mapping.tags {
            if !pushdown.keeps(label) {
                continue;
            }
            if let Some(value) = object.tags.get(tag) {
                fields.insert(label.clone(), convert_keyed(value));
            }
        }
        Value::Record(fields)
    }

    fn attr_value(
        object: &crate::acedb::AceObject,
        mapping: &AceMapping,
        attr: &str,
    ) -> Option<Value> {
        if attr == "name" {
            return Some(Value::str(&object.name));
        }
        let (tag, _) = mapping.tags.iter().find(|(_, label)| label == attr)?;
        object.tags.get(tag).map(convert_keyed)
    }
}

/// Convert an [`AceValue`] for federated streaming: references become the
/// referenced object's name, lists become sets.
fn convert_keyed(value: &AceValue) -> Value {
    match value {
        AceValue::Text(s) => Value::str(s.clone()),
        AceValue::Int(i) => Value::Int(*i),
        AceValue::ObjectRef(_, name) => Value::str(name.clone()),
        AceValue::Many(items) => Value::Set(items.iter().map(convert_keyed).collect()),
    }
}

impl ScanProvider for AceProvider {
    fn name(&self) -> &str {
        "acedb"
    }

    fn classes(&self) -> Vec<ClassName> {
        self.mappings
            .iter()
            .map(|m| ClassName::new(&m.model_class))
            .collect()
    }

    fn stats(&self, class: &ClassName) -> Option<ClassStats> {
        let mapping = self.mapping(class)?;
        let objects = self.store.of_class(&mapping.ace_class);
        let mut distinct: BTreeMap<String, BTreeSet<Value>> = BTreeMap::new();
        for object in &objects {
            distinct
                .entry("name".to_string())
                .or_default()
                .insert(Value::str(&object.name));
            for (tag, label) in &mapping.tags {
                if let Some(value) = object.tags.get(tag) {
                    distinct
                        .entry(label.clone())
                        .or_default()
                        .insert(convert_keyed(value));
                }
            }
        }
        Some(ClassStats {
            class: class.clone(),
            rows: objects.len(),
            ndvs: distinct.into_iter().map(|(a, s)| (a, s.len())).collect(),
        })
    }

    fn scan(
        &self,
        class: &ClassName,
        pushdown: &Pushdown,
        chunk_rows: usize,
        sink: &mut dyn FnMut(Vec<Value>) -> Result<()>,
    ) -> Result<ScanSummary> {
        let mapping = self
            .mapping(class)
            .ok_or_else(|| StorageError::Missing(format!("acedb mapping for `{class}`")))?;
        let mut summary = ScanSummary::default();
        let mut chunk = Vec::new();
        for object in self.store.of_class(&mapping.ace_class) {
            summary.rows_in += 1;
            let passes = pushdown
                .filters
                .iter()
                .all(|f| f.matches(Self::attr_value(object, mapping, &f.attr).as_ref()));
            if !passes {
                continue;
            }
            summary.rows_out += 1;
            push_chunked(
                &mut chunk,
                chunk_rows,
                Self::record(object, mapping, pushdown),
                sink,
            )?;
        }
        flush_chunk(&mut chunk, sink)?;
        Ok(summary)
    }
}

// ---------------------------------------------------------------------------
// Relational provider.
// ---------------------------------------------------------------------------

/// A set of [`Table`]s, one class per table, rows in table order. Reference
/// columns stream as their string keys (see [`AceProvider`] on federated
/// linkage); [`Value::Absent`] cells are left out of the record, like the
/// sparse AceDB import.
pub struct RelationalProvider {
    tables: Vec<Table>,
}

impl RelationalProvider {
    /// Serve the given tables.
    pub fn new(tables: Vec<Table>) -> RelationalProvider {
        RelationalProvider { tables }
    }

    fn table(&self, class: &ClassName) -> Option<&Table> {
        self.tables.iter().find(|t| t.schema.name == class.as_str())
    }
}

impl ScanProvider for RelationalProvider {
    fn name(&self) -> &str {
        "relational"
    }

    fn classes(&self) -> Vec<ClassName> {
        self.tables
            .iter()
            .map(|t| ClassName::new(&t.schema.name))
            .collect()
    }

    fn stats(&self, class: &ClassName) -> Option<ClassStats> {
        let table = self.table(class)?;
        let mut ndvs = BTreeMap::new();
        for (i, column) in table.schema.columns.iter().enumerate() {
            let distinct: BTreeSet<&Value> = table
                .rows
                .iter()
                .map(|row| &row[i])
                .filter(|v| !matches!(v, Value::Absent))
                .collect();
            ndvs.insert(column.name.clone(), distinct.len());
        }
        Some(ClassStats {
            class: class.clone(),
            rows: table.len(),
            ndvs,
        })
    }

    fn scan(
        &self,
        class: &ClassName,
        pushdown: &Pushdown,
        chunk_rows: usize,
        sink: &mut dyn FnMut(Vec<Value>) -> Result<()>,
    ) -> Result<ScanSummary> {
        let table = self
            .table(class)
            .ok_or_else(|| StorageError::Missing(format!("table `{class}`")))?;
        let filter_cols: Vec<(usize, &PushedFilter)> = pushdown
            .filters
            .iter()
            .map(|f| {
                table
                    .schema
                    .columns
                    .iter()
                    .position(|c| c.name == f.attr)
                    .map(|i| (i, f))
                    .ok_or_else(|| {
                        StorageError::Missing(format!("column `{}` in table `{class}`", f.attr))
                    })
            })
            .collect::<Result<_>>()?;
        let mut summary = ScanSummary::default();
        let mut chunk = Vec::new();
        for row in &table.rows {
            summary.rows_in += 1;
            let passes = filter_cols.iter().all(|(i, filter)| {
                let value = &row[*i];
                let value = (!matches!(value, Value::Absent)).then_some(value);
                filter.matches(value)
            });
            if !passes {
                continue;
            }
            summary.rows_out += 1;
            let mut fields = BTreeMap::new();
            for (column, value) in table.schema.columns.iter().zip(row.iter()) {
                if matches!(value, Value::Absent) || !pushdown.keeps(&column.name) {
                    continue;
                }
                fields.insert(column.name.clone(), value.clone());
            }
            push_chunked(&mut chunk, chunk_rows, Value::Record(fields), sink)?;
        }
        flush_chunk(&mut chunk, sink)?;
        Ok(summary)
    }
}

// ---------------------------------------------------------------------------
// Streaming ingest.
// ---------------------------------------------------------------------------

/// Row and cache accounting of one [`ingest_class`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Backend rows the provider read (before pushed filters).
    pub rows_in: usize,
    /// Rows actually inserted (after pushed filters).
    pub rows_out: usize,
    /// Chunks streamed.
    pub chunks: usize,
    /// Attribute indexes (and histograms) built chunk-at-a-time and
    /// installed on the instance.
    pub indexed_attrs: usize,
}

/// Stream one provider class into `instance`, chunk-at-a-time: each chunk is
/// applied with [`Instance::bulk_insert`] under sequential fresh identities,
/// while per-attribute hash indexes and value streams accumulate alongside.
/// After the last chunk the indexes and equi-depth histograms are installed
/// ([`Instance::install_attr_index`] / [`Instance::install_attr_histogram`])
/// with contents bit-identical to what a later lazy build over the finished
/// extent would produce — rows arrive in ascending-identity order, which *is*
/// extent order, and the exact-vs-sampled histogram rule matches the lazy
/// path's.
pub fn ingest_class(
    instance: &mut Instance,
    provider: &dyn ScanProvider,
    class: &ClassName,
    pushdown: &Pushdown,
    chunk_rows: usize,
) -> Result<IngestStats> {
    let mut next_id = instance.oid_counter(class);
    let mut indexes: BTreeMap<String, AttrIndex> = BTreeMap::new();
    let mut attr_values: BTreeMap<String, Vec<Value>> = BTreeMap::new();
    let mut chunks = 0usize;
    let mut ingest = |values: Vec<Value>| -> Result<()> {
        chunks += 1;
        let mut batch = Vec::with_capacity(values.len());
        for value in values {
            let oid = Oid::new(class.clone(), next_id);
            next_id += 1;
            if let Some(record) = value.as_record() {
                for (attr, attr_value) in record {
                    indexes
                        .entry(attr.clone())
                        .or_default()
                        .add(value_hash(attr_value), oid.clone());
                    attr_values
                        .entry(attr.clone())
                        .or_default()
                        .push(attr_value.clone());
                }
            }
            batch.push((oid, value));
        }
        instance
            .bulk_insert(class, batch)
            .map_err(|e| StorageError::Model(e.to_string()))
    };
    let summary = provider.scan(class, pushdown, chunk_rows, &mut ingest)?;
    instance.restore_oid_counter(class, next_id);
    instance.ensure_class(class);
    let extent = instance.extent_size(class);
    let indexed_attrs = indexes.len();
    for (attr, index) in indexes {
        instance.install_attr_index(class, &attr, index);
    }
    for (attr, values) in attr_values {
        let histogram = if extent > SAMPLE_THRESHOLD {
            AttrHistogram::build_sampled(|| values.iter().cloned())
        } else {
            AttrHistogram::build(values)
        };
        instance.install_attr_histogram(class, &attr, histogram);
    }
    Ok(IngestStats {
        rows_in: summary.rows_in,
        rows_out: summary.rows_out,
        chunks,
        indexed_attrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acedb::AceObject;
    use crate::csv::parse_csv;
    use crate::relational::{Column, TableSchema};

    fn csv_provider() -> CsvDirProvider {
        let text =
            "name,length,lab\n\"c1\",100,\"Sanger\"\n\"c2\",250,\"LANL\"\n\"c3\",50,\"Sanger\"\n";
        CsvDirProvider::from_texts(vec![(
            "CloneC".to_string(),
            "clones.csv".to_string(),
            text.to_string(),
        )])
        .unwrap()
    }

    #[test]
    fn csv_provider_reports_stats_and_streams_chunks() {
        let provider = csv_provider();
        assert_eq!(provider.classes(), vec![ClassName::new("CloneC")]);
        let stats = provider.stats(&ClassName::new("CloneC")).unwrap();
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.ndvs.get("lab"), Some(&2));
        assert_eq!(stats.ndvs.get("name"), Some(&3));

        // Chunked streaming preserves order; chunk boundary at 2 rows.
        let mut seen: Vec<usize> = Vec::new();
        let mut names: Vec<Value> = Vec::new();
        let summary = provider
            .scan(
                &ClassName::new("CloneC"),
                &Pushdown::none(),
                2,
                &mut |chunk| {
                    seen.push(chunk.len());
                    for row in &chunk {
                        names.push(row.project("name").cloned().unwrap());
                    }
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(
            summary,
            ScanSummary {
                rows_in: 3,
                rows_out: 3
            }
        );
        assert_eq!(seen, vec![2, 1]);
        assert_eq!(
            names,
            vec![Value::str("c1"), Value::str("c2"), Value::str("c3")]
        );
    }

    #[test]
    fn pushed_filters_and_projection_apply() {
        let provider = csv_provider();
        let pushdown = Pushdown {
            filters: vec![PushedFilter {
                attr: "length".to_string(),
                op: PushOp::Lt,
                value: Value::int(200),
            }],
            projection: Some(BTreeSet::from(["name".to_string(), "length".to_string()])),
        };
        let mut rows = Vec::new();
        let summary = provider
            .scan(&ClassName::new("CloneC"), &pushdown, 100, &mut |chunk| {
                rows.extend(chunk);
                Ok(())
            })
            .unwrap();
        assert_eq!(
            summary,
            ScanSummary {
                rows_in: 3,
                rows_out: 2
            }
        );
        assert_eq!(rows.len(), 2);
        // Projection dropped `lab`.
        assert_eq!(rows[0].project("lab"), None);
        assert_eq!(rows[0].project("name"), Some(&Value::str("c1")));
        assert_eq!(rows[1].project("length"), Some(&Value::int(50)));
    }

    #[test]
    fn filter_semantics_mirror_the_executor() {
        let eq = PushedFilter {
            attr: "x".into(),
            op: PushOp::Eq,
            value: Value::int(3),
        };
        assert!(eq.matches(Some(&Value::int(3))));
        assert!(!eq.matches(Some(&Value::str("3"))));
        assert!(!eq.matches(None));
        // `!=` across kinds is true, exactly like `Value != Value`.
        let neq = PushedFilter {
            attr: "x".into(),
            op: PushOp::Neq,
            value: Value::int(3),
        };
        assert!(neq.matches(Some(&Value::str("3"))));
        assert!(!neq.matches(None));
        // Ordered comparisons fail over uncomparable kinds.
        let lt = PushedFilter {
            attr: "x".into(),
            op: PushOp::Lt,
            value: Value::int(10),
        };
        assert!(lt.matches(Some(&Value::int(9))));
        assert!(!lt.matches(Some(&Value::str("9"))));
        let geq = PushedFilter {
            attr: "x".into(),
            op: PushOp::Geq,
            value: Value::str("m"),
        };
        assert!(geq.matches(Some(&Value::str("z"))));
        assert!(!geq.matches(Some(&Value::str("a"))));
    }

    #[test]
    fn ace_provider_streams_keyed_references() {
        let mut store = AceStore::new();
        store.add(
            AceObject::new("Marker", "m1")
                .with_tag("Position", AceValue::Int(17))
                .with_tag(
                    "Clone",
                    AceValue::ObjectRef("Clone".to_string(), "c1".to_string()),
                ),
        );
        store.add(AceObject::new("Marker", "m2").with_tag("Position", AceValue::Int(40)));
        let provider = AceProvider::new(
            store,
            vec![AceMapping::new(
                "Marker",
                "MarkerA",
                &[("Position", "position"), ("Clone", "clone_name")],
            )],
        );
        let stats = provider.stats(&ClassName::new("MarkerA")).unwrap();
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.ndvs.get("position"), Some(&2));
        // Sparse attribute: only one object carries `clone_name`.
        assert_eq!(stats.ndvs.get("clone_name"), Some(&1));

        let pushdown = Pushdown {
            filters: vec![PushedFilter {
                attr: "position".to_string(),
                op: PushOp::Leq,
                value: Value::int(20),
            }],
            projection: None,
        };
        let mut rows = Vec::new();
        let summary = provider
            .scan(&ClassName::new("MarkerA"), &pushdown, 100, &mut |chunk| {
                rows.extend(chunk);
                Ok(())
            })
            .unwrap();
        assert_eq!(
            summary,
            ScanSummary {
                rows_in: 2,
                rows_out: 1
            }
        );
        // The reference streamed as the referenced object's name.
        assert_eq!(rows[0].project("clone_name"), Some(&Value::str("c1")));
    }

    #[test]
    fn relational_provider_streams_key_valued_rows() {
        let mut table = Table::new(TableSchema {
            name: "CloneR".to_string(),
            key_column: "name".to_string(),
            columns: vec![
                Column::str("name"),
                Column::int("length"),
                Column::reference("lab", "LabR"),
            ],
        });
        table
            .push_row(vec![
                Value::str("c1"),
                Value::int(100),
                Value::str("Sanger"),
            ])
            .unwrap();
        table
            .push_row(vec![Value::str("c2"), Value::Absent, Value::str("LANL")])
            .unwrap();
        let provider = RelationalProvider::new(vec![table]);
        let stats = provider.stats(&ClassName::new("CloneR")).unwrap();
        assert_eq!(stats.rows, 2);
        // Absent cells do not count toward ndv.
        assert_eq!(stats.ndvs.get("length"), Some(&1));

        // A filter over the sparse column drops the Absent row, mirroring
        // the executor's missing-attribute semantics.
        let pushdown = Pushdown {
            filters: vec![PushedFilter {
                attr: "length".to_string(),
                op: PushOp::Geq,
                value: Value::int(0),
            }],
            projection: None,
        };
        let mut rows = Vec::new();
        let summary = provider
            .scan(&ClassName::new("CloneR"), &pushdown, 100, &mut |chunk| {
                rows.extend(chunk);
                Ok(())
            })
            .unwrap();
        assert_eq!(
            summary,
            ScanSummary {
                rows_in: 2,
                rows_out: 1
            }
        );
        // Reference columns stream as string keys.
        assert_eq!(rows[0].project("lab"), Some(&Value::str("Sanger")));
    }

    /// The tentpole equivalence: a streamed ingest (with chunked index and
    /// histogram construction) produces an instance bit-identical to a bulk
    /// materialization, with the installed caches matching what the lazy
    /// path would build.
    #[test]
    fn streamed_ingest_matches_bulk_load_and_lazy_caches() {
        let provider = csv_provider();
        let class = ClassName::new("CloneC");

        let mut streamed = Instance::new("fed");
        let stats = ingest_class(&mut streamed, &provider, &class, &Pushdown::none(), 2).unwrap();
        assert_eq!(stats.rows_in, 3);
        assert_eq!(stats.rows_out, 3);
        assert_eq!(stats.chunks, 2);
        assert_eq!(stats.indexed_attrs, 3);

        // Reference: parse the same text into a table, load row-by-row with
        // fresh identities, and build the caches lazily.
        let text =
            "name,length,lab\n\"c1\",100,\"Sanger\"\n\"c2\",250,\"LANL\"\n\"c3\",50,\"Sanger\"\n";
        let table = parse_csv("CloneC", text).unwrap();
        let mut reference = Instance::new("fed");
        for row in &table.rows {
            let mut fields = BTreeMap::new();
            for (column, value) in table.schema.columns.iter().zip(row.iter()) {
                fields.insert(column.name.clone(), value.clone());
            }
            reference.insert_fresh(&class, Value::Record(fields));
        }
        assert_eq!(streamed.deep_eq_report(&reference), None);
        assert_eq!(streamed.oid_counter(&class), reference.oid_counter(&class));

        // Installed caches answer identically to lazily built ones.
        for attr in ["name", "length", "lab"] {
            assert!(streamed.has_attr_histogram(&class, attr));
            assert_eq!(
                streamed.attr_histogram(&class, attr),
                reference.attr_histogram(&class, attr),
                "histogram of `{attr}` diverged"
            );
            assert_eq!(
                streamed.attr_ndv(&class, attr),
                reference.attr_ndv(&class, attr),
                "ndv of `{attr}` diverged"
            );
        }
        assert_eq!(
            streamed.lookup_by_attr(&class, "lab", &Value::str("Sanger")),
            reference.lookup_by_attr(&class, "lab", &Value::str("Sanger"))
        );
    }

    /// A filtered ingest produces exactly the instance a full ingest plus an
    /// executor-side filter would retain — the row set the differential
    /// tests rely on — while reading every backend row exactly once.
    #[test]
    fn filtered_ingest_accounts_rows() {
        let provider = csv_provider();
        let class = ClassName::new("CloneC");
        let pushdown = Pushdown {
            filters: vec![PushedFilter {
                attr: "lab".to_string(),
                op: PushOp::Eq,
                value: Value::str("Sanger"),
            }],
            projection: None,
        };
        let mut filtered = Instance::new("fed");
        let stats = ingest_class(&mut filtered, &provider, &class, &pushdown, 10).unwrap();
        assert_eq!(stats.rows_in, 3);
        assert_eq!(stats.rows_out, 2);
        assert_eq!(filtered.extent_size(&class), 2);
        let names: Vec<&Value> = filtered
            .objects(&class)
            .filter_map(|(_, v)| v.project("name"))
            .collect();
        assert_eq!(names, vec![&Value::str("c1"), &Value::str("c3")]);
    }
}
