//! Semi-normal form (snf).
//!
//! "The clauses are first rewritten into semi-normal form (snf), which reduces
//! the number of forms the atoms of a clause can take, so that any two
//! equivalent clauses or sets of atoms will differ only in their choice of
//! variables. This simplifies the unification of clauses, as well as the
//! book-keeping necessary for optimizations." (Section 5)
//!
//! In semi-normal form every atom is *flat*:
//!
//! * `X in C` — membership of a variable;
//! * `X = Y` — equality of variables;
//! * `X = c` — a variable equals a constant;
//! * `X = Y.a` — a variable equals a single projection of a variable;
//! * `X = ins_a(Y)` — a variable equals a variant injection of a variable;
//! * `X = Mk_C(Y1, ..)` / `X = Mk_C(a = Y1, ..)` — a variable equals a Skolem
//!   term over variables;
//! * `X = (a1 = Y1, ...)` — a variable equals a record of variables;
//! * comparison and set-membership atoms over variables.
//!
//! Nested terms are flattened by introducing fresh variables (named `_snfN`).

use wol_lang::ast::{Atom, Clause, SkolemArgs, Term, Var};
use wol_model::Value;

/// A generator of fresh variables used during flattening.
#[derive(Debug, Default)]
pub struct FreshVars {
    counter: usize,
}

impl FreshVars {
    /// Create a generator; fresh variables are named `_snf0`, `_snf1`, ...
    pub fn new() -> Self {
        Self::default()
    }

    /// Produce a fresh variable name.
    pub fn fresh(&mut self) -> Var {
        let v = format!("_snf{}", self.counter);
        self.counter += 1;
        v
    }
}

/// Is a term already "simple" (a variable or a constant of a base type)?
fn is_simple(term: &Term) -> bool {
    matches!(term, Term::Var(_)) || matches!(term, Term::Const(_))
}

/// Flatten a term to a simple term, emitting defining atoms into `out`.
fn flatten_term(term: &Term, fresh: &mut FreshVars, out: &mut Vec<Atom>) -> Term {
    match term {
        Term::Var(_) | Term::Const(_) => term.clone(),
        Term::Proj(base, label) => {
            let base_simple = flatten_to_var(base, fresh, out);
            let v = fresh.fresh();
            out.push(Atom::Eq(
                Term::Var(v.clone()),
                Term::Proj(Box::new(base_simple), label.clone()),
            ));
            Term::Var(v)
        }
        Term::Variant(label, payload) => {
            let payload_simple = if **payload == Term::Const(Value::Unit) {
                Term::Const(Value::Unit)
            } else {
                flatten_term(payload, fresh, out)
            };
            let v = fresh.fresh();
            out.push(Atom::Eq(
                Term::Var(v.clone()),
                Term::Variant(label.clone(), Box::new(payload_simple)),
            ));
            Term::Var(v)
        }
        Term::Record(fields) => {
            let flat_fields: Vec<(String, Term)> = fields
                .iter()
                .map(|(l, t)| (l.clone(), flatten_term(t, fresh, out)))
                .collect();
            let v = fresh.fresh();
            out.push(Atom::Eq(Term::Var(v.clone()), Term::Record(flat_fields)));
            Term::Var(v)
        }
        Term::Skolem(class, args) => {
            let flat_args = match args {
                SkolemArgs::Positional(ts) => {
                    SkolemArgs::Positional(ts.iter().map(|t| flatten_term(t, fresh, out)).collect())
                }
                SkolemArgs::Named(fs) => SkolemArgs::Named(
                    fs.iter()
                        .map(|(l, t)| (l.clone(), flatten_term(t, fresh, out)))
                        .collect(),
                ),
            };
            let v = fresh.fresh();
            out.push(Atom::Eq(
                Term::Var(v.clone()),
                Term::Skolem(class.clone(), flat_args),
            ));
            Term::Var(v)
        }
    }
}

/// Flatten a term into a *variable* (introducing a defining atom for constants
/// only if needed as a projection base).
fn flatten_to_var(term: &Term, fresh: &mut FreshVars, out: &mut Vec<Atom>) -> Term {
    match term {
        Term::Var(_) => term.clone(),
        _ => flatten_term(term, fresh, out),
    }
}

/// Flatten one atom into a list of snf atoms.
fn flatten_atom(atom: &Atom, fresh: &mut FreshVars) -> Vec<Atom> {
    let mut out = Vec::new();
    let flattened = match atom {
        Atom::Member(t, c) => {
            let simple = flatten_to_var(t, fresh, &mut out);
            Atom::Member(simple, c.clone())
        }
        Atom::Eq(s, t) => {
            // Keep one level of structure on the right-hand side so the atom
            // shapes listed in the module documentation are produced; deeper
            // structure is flattened out.
            match (is_simple(s), depth_one(t)) {
                (true, true) => Atom::Eq(s.clone(), shallow_flatten(t, fresh, &mut out)),
                _ => match (depth_one(s), is_simple(t)) {
                    (true, true) => Atom::Eq(shallow_flatten(s, fresh, &mut out), t.clone()),
                    _ => {
                        let fs = flatten_term(s, fresh, &mut out);
                        let ft = flatten_term(t, fresh, &mut out);
                        Atom::Eq(fs, ft)
                    }
                },
            }
        }
        Atom::Neq(s, t) => Atom::Neq(
            flatten_term(s, fresh, &mut out),
            flatten_term(t, fresh, &mut out),
        ),
        Atom::Lt(s, t) => Atom::Lt(
            flatten_term(s, fresh, &mut out),
            flatten_term(t, fresh, &mut out),
        ),
        Atom::Leq(s, t) => Atom::Leq(
            flatten_term(s, fresh, &mut out),
            flatten_term(t, fresh, &mut out),
        ),
        Atom::InSet(s, t) => Atom::InSet(
            flatten_term(s, fresh, &mut out),
            flatten_term(t, fresh, &mut out),
        ),
    };
    out.push(flattened);
    out
}

/// Does the term have at most one level of structure over simple terms?
fn depth_one(term: &Term) -> bool {
    match term {
        Term::Var(_) | Term::Const(_) => true,
        Term::Proj(base, _) => is_simple(base),
        Term::Variant(_, payload) => is_simple(payload),
        Term::Record(fields) => fields.iter().all(|(_, t)| is_simple(t)),
        Term::Skolem(_, args) => args.terms().iter().all(|t| is_simple(t)),
    }
}

/// Flatten only the sub-terms of a depth-one term.
fn shallow_flatten(term: &Term, fresh: &mut FreshVars, out: &mut Vec<Atom>) -> Term {
    match term {
        Term::Proj(base, label) => {
            Term::Proj(Box::new(flatten_to_var(base, fresh, out)), label.clone())
        }
        other => other.clone(),
    }
}

/// Rewrite a clause into semi-normal form.
pub fn to_snf(clause: &Clause) -> Clause {
    let mut fresh = FreshVars::new();
    let mut head = Vec::new();
    for atom in &clause.head {
        head.extend(flatten_atom(atom, &mut fresh));
    }
    let mut body = Vec::new();
    for atom in &clause.body {
        body.extend(flatten_atom(atom, &mut fresh));
    }
    Clause {
        head,
        body,
        label: clause.label.clone(),
    }
}

/// Rewrite a whole program's clauses into semi-normal form.
pub fn program_to_snf(clauses: &[Clause]) -> Vec<Clause> {
    clauses.iter().map(to_snf).collect()
}

/// Statistics comparing a clause before and after snf rewriting; used in the
/// Morphase pipeline report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnfStats {
    /// Atoms before rewriting.
    pub atoms_before: usize,
    /// Atoms after rewriting.
    pub atoms_after: usize,
    /// Fresh variables introduced.
    pub fresh_vars: usize,
}

/// Compute snf statistics for a set of clauses.
pub fn snf_stats(before: &[Clause], after: &[Clause]) -> SnfStats {
    let atoms_before = before.iter().map(Clause::len).sum();
    let atoms_after = after.iter().map(Clause::len).sum();
    let fresh_vars = after
        .iter()
        .flat_map(|c| c.variables())
        .filter(|v| v.starts_with("_snf"))
        .count();
    SnfStats {
        atoms_before,
        atoms_after,
        fresh_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_lang::parse_clause;

    fn is_snf_atom(atom: &Atom) -> bool {
        let simple = |t: &Term| matches!(t, Term::Var(_) | Term::Const(_));
        match atom {
            Atom::Member(t, _) => simple(t),
            Atom::Eq(s, t) => (simple(s) && depth_one(t)) || (depth_one(s) && simple(t)),
            Atom::Neq(s, t) | Atom::Lt(s, t) | Atom::Leq(s, t) | Atom::InSet(s, t) => {
                simple(s) && simple(t)
            }
        }
    }

    #[test]
    fn already_flat_clause_unchanged_in_shape() {
        let c = parse_clause("X.state = Y <= Y in StateA, X = Y.capital").unwrap();
        let snf = to_snf(&c);
        assert_eq!(snf.head.len(), 1);
        assert_eq!(snf.body.len(), 2);
        assert!(snf.head.iter().chain(snf.body.iter()).all(is_snf_atom));
    }

    #[test]
    fn nested_projection_is_flattened() {
        // E.country.name is a two-step projection: snf introduces a variable
        // for E.country.
        let c = parse_clause("X.name = E.country.name <= E in CityE, X in CountryT").unwrap();
        let snf = to_snf(&c);
        assert!(snf.head.iter().chain(snf.body.iter()).all(is_snf_atom));
        assert!(snf.variables().iter().any(|v| v.starts_with("_snf")));
        // The flattened clause mentions E.country via a fresh variable.
        let rendered = wol_lang::render_clause(&snf);
        assert!(rendered.contains("_snf"));
        assert!(rendered.contains(".country"));
        assert!(rendered.contains(".name"));
    }

    #[test]
    fn variant_of_projection_flattened() {
        let c =
            parse_clause("Y.place = ins_euro_city(E.country) <= E in CityE, Y in CityT").unwrap();
        let snf = to_snf(&c);
        assert!(snf.head.iter().chain(snf.body.iter()).all(is_snf_atom));
    }

    #[test]
    fn skolem_over_nested_terms_flattened() {
        let c = parse_clause(
            "X = Mk_CityT(name = E.name, country = Mk_CountryT(E.country.name)) <= E in CityE",
        )
        .unwrap();
        let snf = to_snf(&c);
        assert!(snf.head.iter().chain(snf.body.iter()).all(is_snf_atom));
        // The nested Skolem and projection each got a defining atom.
        assert!(snf.len() > c.len());
    }

    #[test]
    fn snf_preserves_label_and_counts_stats() {
        let c = parse_clause("T2: Y.name = E.country.name <= E in CityE, Y in CityT").unwrap();
        let snf = to_snf(&c);
        assert_eq!(snf.label.as_deref(), Some("T2"));
        let stats = snf_stats(std::slice::from_ref(&c), std::slice::from_ref(&snf));
        assert!(stats.atoms_after > stats.atoms_before);
        assert!(stats.fresh_vars >= 1);
    }

    #[test]
    fn program_to_snf_rewrites_each_clause() {
        let clauses = wol_lang::parse_program(
            "T1: X in CountryT, X.name = E.name <= E in CountryE;\n\
             T2: Y.name = E.country.name <= E in CityE, Y in CityT;",
        )
        .unwrap();
        let snf = program_to_snf(&clauses);
        assert_eq!(snf.len(), 2);
        assert!(snf[1].len() > clauses[1].len());
    }

    #[test]
    fn equivalent_clauses_differ_only_in_variables() {
        // Two alpha-equivalent clauses produce snf clauses of identical shape.
        let a = parse_clause("X.name = E.country.name <= E in CityE, X in CountryT").unwrap();
        let b = parse_clause("P.name = Q.country.name <= Q in CityE, P in CountryT").unwrap();
        let sa = to_snf(&a);
        let sb = to_snf(&b);
        assert_eq!(sa.len(), sb.len());
        let shape = |c: &Clause| {
            c.head
                .iter()
                .chain(c.body.iter())
                .map(std::mem::discriminant)
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&sa), shape(&sb));
    }
}
