//! The variant family V(k) (Section 3.2 / 3.3).
//!
//! "If variants are involved, the number of clauses required may be
//! exponential in the number of variants involved. ... it is necessary to be
//! able to split up the specification of the transformation into small parts."
//!
//! `V(k)` has a source class `Src` with `k` boolean flags and a target class
//! `Obj` with `k` variant-typed attributes. The WOL program uses `2k` partial
//! clauses (one per attribute alternative) plus one key constraint; a
//! complete-clause language (Datalog/ILOG — see the `datalog-baseline` crate)
//! needs `2^k` clauses, one per combination of alternatives.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wol_lang::program::{Program, SchemaBinding};
use wol_model::{ClassName, Instance, Schema, Type, Value};

/// The name of the i-th flag attribute of the source class.
pub fn flag_attr(i: usize) -> String {
    format!("flag{i}")
}

/// The name of the i-th variant attribute of the target class.
pub fn variant_attr(i: usize) -> String {
    format!("a{i}")
}

/// The source schema of V(k): `Src(name, flag0, ..., flag{k-1})`.
pub fn source_schema(k: usize) -> Schema {
    let mut fields = vec![("name".to_string(), Type::str())];
    for i in 0..k {
        fields.push((flag_attr(i), Type::bool()));
    }
    Schema::new(format!("variant_source_{k}")).with_class("Src", Type::Record(fields))
}

/// The target schema of V(k): `Obj(name, a0: <|yes|no|>, ..., a{k-1})`.
pub fn target_schema(k: usize) -> Schema {
    let mut fields = vec![("name".to_string(), Type::str())];
    for i in 0..k {
        fields.push((
            variant_attr(i),
            Type::variant([("yes", Type::Unit), ("no", Type::Unit)]),
        ));
    }
    Schema::new(format!("variant_target_{k}")).with_class("Obj", Type::Record(fields))
}

/// The WOL program for V(k): `2k` partial clauses plus the key constraint —
/// linear in `k`.
pub fn wol_program(k: usize) -> Program {
    let mut text = String::new();
    for i in 0..k {
        let flag = flag_attr(i);
        let attr = variant_attr(i);
        text.push_str(&format!(
            "Y{i}: X in Obj, X.name = N, X.{attr} = ins_yes() <= S in Src, S.name = N, S.{flag} = true;\n"
        ));
        text.push_str(&format!(
            "N{i}: X in Obj, X.name = N, X.{attr} = ins_no() <= S in Src, S.name = N, S.{flag} = false;\n"
        ));
    }
    text.push_str("K: X = Mk_Obj(N) <= X in Obj, N = X.name;\n");
    Program::new(
        format!("variants_{k}"),
        vec![SchemaBinding::new(source_schema(k))],
        SchemaBinding::new(target_schema(k)),
    )
    .with_text(&text)
}

/// The number of clauses a complete-clause language needs for V(k): one per
/// combination of alternatives.
pub fn complete_clause_count(k: usize) -> u64 {
    1u64 << k
}

/// Generate a V(k) source instance with `items` objects and pseudo-random
/// flags.
pub fn generate_source(k: usize, items: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = Instance::new(format!("variant_source_{k}"));
    let class = ClassName::new("Src");
    for n in 0..items {
        let mut fields = vec![("name".to_string(), Value::str(format!("item{n}")))];
        for i in 0..k {
            fields.push((flag_attr(i), Value::bool(rng.gen_bool(0.5))));
        }
        inst.insert_fresh(&class, Value::Record(fields.into_iter().collect()));
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_engine::{execute, normalize, NormalizeOptions};

    #[test]
    fn schemas_and_programs_validate_for_small_k() {
        for k in 1..=4 {
            assert!(source_schema(k).validate().is_ok());
            assert!(target_schema(k).validate().is_ok());
            wol_program(k).validate().unwrap();
        }
    }

    #[test]
    fn wol_clause_count_is_linear_and_complete_count_exponential() {
        for k in 1..=6 {
            let program = wol_program(k);
            assert_eq!(program.clauses.len(), 2 * k + 1);
            assert_eq!(complete_clause_count(k), 1 << k);
        }
        assert!(complete_clause_count(8) > 8 * 2 + 1);
    }

    #[test]
    fn transformation_fills_every_variant_attribute() {
        let k = 3;
        let program = wol_program(k);
        let source = generate_source(k, 10, 42);
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let target = execute(&normal, &[&source][..], "target").unwrap();
        assert_eq!(target.extent_size(&ClassName::new("Obj")), 10);
        for (_, value) in target.objects(&ClassName::new("Obj")) {
            for i in 0..k {
                let attr = value.project(&variant_attr(i)).expect("attribute present");
                assert!(
                    matches!(attr, Value::Variant(label, _) if label == "yes" || label == "no")
                );
            }
        }
    }

    #[test]
    fn generated_sources_validate_and_are_deterministic() {
        let k = 4;
        let source = generate_source(k, 20, 7);
        wol_model::validate::check_instance(&source, &source_schema(k)).unwrap();
        assert_eq!(generate_source(k, 20, 7), generate_source(k, 20, 7));
    }
}
