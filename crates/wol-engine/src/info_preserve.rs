//! Information-preservation analysis (Section 4.3).
//!
//! A transformation is *information preserving* when it is injective: distinct
//! source instances map to distinct target instances. The paper's Example 4.2
//! (the Person/Marriage schema evolution) shows a transformation that is *not*
//! information preserving on arbitrary instances, but *is* on instances
//! satisfying the spouse constraints (C9)–(C11) — constraints that cannot be
//! expressed in standard constraint languages but can in WOL.
//!
//! Exact injectivity over all instances is undecidable; this module provides
//! the empirical check used by the reproduction: transform a family of source
//! instances and verify that non-equivalent sources map to non-equivalent
//! targets. Instances are compared *up to renaming of object identities* via a
//! canonical form that replaces identities by the values reachable from them.

use std::collections::{BTreeMap, BTreeSet};

use wol_model::{ClassName, Instance, Value};

use crate::Result;

/// A canonical, identity-free description of an instance: for each class, the
/// multiset of object descriptions with identities expanded to the values they
/// reach (up to `depth` dereferences).
pub type CanonicalForm = BTreeMap<ClassName, Vec<String>>;

fn canonical_value(value: &Value, instance: &Instance, depth: usize) -> String {
    match value {
        Value::Oid(oid) => {
            if depth == 0 {
                format!("<{}>", oid.class())
            } else {
                match instance.value(oid) {
                    Some(inner) => format!(
                        "<{}:{}>",
                        oid.class(),
                        canonical_value(inner, instance, depth - 1)
                    ),
                    None => format!("<{}:dangling>", oid.class()),
                }
            }
        }
        Value::Record(fields) => {
            let parts: Vec<String> = fields
                .iter()
                .map(|(l, v)| format!("{l}={}", canonical_value(v, instance, depth)))
                .collect();
            format!("({})", parts.join(","))
        }
        Value::Set(items) => {
            let mut parts: Vec<String> = items
                .iter()
                .map(|v| canonical_value(v, instance, depth))
                .collect();
            parts.sort();
            format!("{{{}}}", parts.join(","))
        }
        Value::List(items) => {
            let parts: Vec<String> = items
                .iter()
                .map(|v| canonical_value(v, instance, depth))
                .collect();
            format!("[{}]", parts.join(","))
        }
        Value::Variant(label, payload) => {
            format!("ins_{label}({})", canonical_value(payload, instance, depth))
        }
        other => wol_model::display::render_value(other),
    }
}

/// Compute the canonical form of an instance.
pub fn canonical_form(instance: &Instance, depth: usize) -> CanonicalForm {
    let mut out = CanonicalForm::new();
    for class in instance.populated_classes() {
        let mut descriptions: Vec<String> = instance
            .objects(&class)
            .map(|(_, value)| canonical_value(value, instance, depth))
            .collect();
        descriptions.sort();
        out.insert(class, descriptions);
    }
    out
}

/// Are two instances equivalent up to renaming of object identities (to the
/// chosen dereference depth)?
pub fn instances_equivalent(a: &Instance, b: &Instance, depth: usize) -> bool {
    canonical_form(a, depth) == canonical_form(b, depth)
}

/// The result of an empirical injectivity check.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InjectivityReport {
    /// Number of source instances transformed.
    pub sources: usize,
    /// Pairs of source indices that are distinguishable as sources but mapped
    /// to equivalent targets — witnesses that information was lost.
    pub collisions: Vec<(usize, usize)>,
}

impl InjectivityReport {
    /// True when no collision was found (the transformation is injective on
    /// the tested family).
    pub fn is_injective(&self) -> bool {
        self.collisions.is_empty()
    }
}

/// Empirically check that `transform` is injective on the given family of
/// source instances: every pair of non-equivalent sources must map to
/// non-equivalent targets.
pub fn check_injective<F>(
    sources: &[Instance],
    transform: F,
    depth: usize,
) -> Result<InjectivityReport>
where
    F: Fn(&Instance) -> Result<Instance>,
{
    let mut targets = Vec::with_capacity(sources.len());
    for source in sources {
        targets.push(transform(source)?);
    }
    let source_forms: Vec<CanonicalForm> =
        sources.iter().map(|s| canonical_form(s, depth)).collect();
    let target_forms: Vec<CanonicalForm> =
        targets.iter().map(|t| canonical_form(t, depth)).collect();
    let mut collisions = Vec::new();
    for i in 0..sources.len() {
        for j in (i + 1)..sources.len() {
            let sources_differ = source_forms[i] != source_forms[j];
            let targets_equal = target_forms[i] == target_forms[j];
            if sources_differ && targets_equal {
                collisions.push((i, j));
            }
        }
    }
    Ok(InjectivityReport {
        sources: sources.len(),
        collisions,
    })
}

/// Filter a family of instances to those satisfying the given constraints —
/// the paper's point being that the Person/Marriage transformation is
/// information preserving *on the instances satisfying (C9)–(C11)*.
pub fn satisfying_instances<'a>(
    instances: &'a [Instance],
    constraints: &[&wol_lang::Clause],
) -> Result<Vec<&'a Instance>> {
    let mut out = Vec::new();
    for instance in instances {
        let refs = [instance];
        let dbs = crate::env::Databases::new(&refs);
        let violations = crate::constraints::check_constraints(constraints, &dbs)?;
        if violations.is_empty() {
            out.push(instance);
        }
    }
    Ok(out)
}

/// Count, for reporting, how many distinct canonical targets a family of
/// sources produces — a crude measure of how much information survives.
pub fn distinct_targets<F>(sources: &[Instance], transform: F, depth: usize) -> Result<usize>
where
    F: Fn(&Instance) -> Result<Instance>,
{
    let mut forms = BTreeSet::new();
    for source in sources {
        let target = transform(source)?;
        forms.insert(format!("{:?}", canonical_form(&target, depth)));
    }
    Ok(forms.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_model::Oid;

    fn person_instance(pairs: &[(&str, &str)], extra_single: Option<&str>) -> Instance {
        // People with spouses: each pair (husband, wife) points at each other.
        let mut inst = Instance::new("people");
        let class = ClassName::new("Person");
        let mut oids: Vec<(Oid, Oid)> = Vec::new();
        for (i, (h, w)) in pairs.iter().enumerate() {
            let hid = Oid::new(class.clone(), (i * 2) as u64);
            let wid = Oid::new(class.clone(), (i * 2 + 1) as u64);
            inst.insert(
                hid.clone(),
                Value::record([
                    ("name", Value::str(*h)),
                    ("sex", Value::tag("male")),
                    ("spouse", Value::oid(wid.clone())),
                ]),
            )
            .unwrap();
            inst.insert(
                wid.clone(),
                Value::record([
                    ("name", Value::str(*w)),
                    ("sex", Value::tag("female")),
                    ("spouse", Value::oid(hid.clone())),
                ]),
            )
            .unwrap();
            oids.push((hid, wid));
        }
        if let Some(name) = extra_single {
            let id = Oid::new(class.clone(), 1000);
            inst.insert(
                id.clone(),
                Value::record([
                    ("name", Value::str(name)),
                    ("sex", Value::tag("male")),
                    ("spouse", Value::oid(id)),
                ]),
            )
            .unwrap();
        }
        inst
    }

    #[test]
    fn canonical_form_is_oid_invariant() {
        // The same data with different object identifiers is equivalent.
        let a = person_instance(&[("Adam", "Beth")], None);
        let mut b = Instance::new("people");
        let class = ClassName::new("Person");
        let h = Oid::new(class.clone(), 77);
        let w = Oid::new(class.clone(), 99);
        b.insert(
            h.clone(),
            Value::record([
                ("name", Value::str("Adam")),
                ("sex", Value::tag("male")),
                ("spouse", Value::oid(w.clone())),
            ]),
        )
        .unwrap();
        b.insert(
            w,
            Value::record([
                ("name", Value::str("Beth")),
                ("sex", Value::tag("female")),
                ("spouse", Value::oid(h)),
            ]),
        )
        .unwrap();
        assert!(instances_equivalent(&a, &b, 2));
    }

    #[test]
    fn canonical_form_distinguishes_different_data() {
        let a = person_instance(&[("Adam", "Beth")], None);
        let b = person_instance(&[("Adam", "Carol")], None);
        assert!(!instances_equivalent(&a, &b, 2));
        assert!(!instances_equivalent(
            &a,
            &person_instance(&[("Adam", "Beth")], Some("Dan")),
            2
        ));
    }

    #[test]
    fn depth_zero_hides_referenced_values() {
        let a = person_instance(&[("Adam", "Beth")], None);
        let b = person_instance(&[("Adam", "Carol")], None);
        // At depth 0 spouses are opaque; names still differ though (Beth/Carol
        // appear as top-level objects), so instances differ even at depth 0.
        assert!(!instances_equivalent(&a, &b, 0));
        // But a cycle does not cause non-termination at any depth.
        let _ = canonical_form(&a, 5);
    }

    #[test]
    fn injectivity_detected_for_lossless_transform() {
        // Identity transformation is trivially injective.
        let family = vec![
            person_instance(&[("Adam", "Beth")], None),
            person_instance(&[("Adam", "Carol")], None),
            person_instance(&[("Evan", "Faye"), ("Gus", "Hana")], None),
        ];
        let report = check_injective(&family, |i| Ok(i.clone()), 2).unwrap();
        assert!(report.is_injective());
        assert_eq!(report.sources, 3);
        assert_eq!(distinct_targets(&family, |i| Ok(i.clone()), 2).unwrap(), 3);
    }

    #[test]
    fn lossy_transform_detected() {
        // A transformation that forgets everyone's spouse maps the two
        // different pairings below to the same target.
        let family = vec![
            person_instance(&[("Adam", "Beth"), ("Carl", "Dana")], None),
            person_instance(&[("Adam", "Dana"), ("Carl", "Beth")], None),
        ];
        let forgetful = |source: &Instance| -> Result<Instance> {
            let mut out = Instance::new("names_only");
            for (oid, value) in source.all_objects() {
                let name = value.project("name").cloned().unwrap();
                let sex = value.project("sex").cloned().unwrap();
                out.insert(oid.clone(), Value::record([("name", name), ("sex", sex)]))?;
            }
            Ok(out)
        };
        let report = check_injective(&family, forgetful, 2).unwrap();
        assert!(!report.is_injective());
        assert_eq!(report.collisions, vec![(0, 1)]);
        assert_eq!(distinct_targets(&family, forgetful, 2).unwrap(), 1);
    }

    #[test]
    fn constraint_filtering_keeps_only_satisfying_instances() {
        // (C11): Y = X.spouse <= Y in Person, X = Y.spouse — spouse is symmetric.
        let c11 = wol_lang::parse_clause("C11: Y = X.spouse <= Y in Person, X = Y.spouse").unwrap();
        let symmetric = person_instance(&[("Adam", "Beth")], None);
        // Break symmetry: Beth's spouse points at herself.
        let mut asymmetric = person_instance(&[("Adam", "Beth")], None);
        let class = ClassName::new("Person");
        let beth = Oid::new(class.clone(), 1);
        let mut beth_value = asymmetric.value(&beth).unwrap().clone();
        if let Value::Record(ref mut fields) = beth_value {
            fields.insert("spouse".into(), Value::oid(beth.clone()));
        }
        asymmetric.update(&beth, beth_value).unwrap();

        let family = vec![symmetric, asymmetric];
        let satisfying = satisfying_instances(&family, &[&c11]).unwrap();
        assert_eq!(satisfying.len(), 1);
    }
}
