//! # wol-model
//!
//! The complex-object data model underlying the WOL transformation language
//! (Davidson & Kosky, *WOL: A Language for Database Transformations and
//! Constraints*, ICDE 1997, Section 2).
//!
//! The model provides:
//!
//! * **Types** ([`Type`]): base types, class types, set types, record types,
//!   variant types, lists and optional fields, nested arbitrarily deep.
//! * **Values** ([`Value`]): structural values of those types, including opaque
//!   object identities ([`Oid`]).
//! * **Schemas** ([`Schema`]): a finite set of classes together with the type of
//!   the value associated with each class.
//! * **Instances** ([`Instance`]): finite extents of object identities per class
//!   plus a mapping from each identity to its value.
//! * **Surrogate keys** ([`KeySpec`], [`KeyExpr`]): value-based handles on object
//!   identities, and a deterministic Skolem factory ([`SkolemFactory`]) used to
//!   create identities from key values (the `Mk_C` functions of the paper).
//!
//! ## Storage layout
//!
//! An [`Instance`] stores its objects row-major — `Oid → Value` — because
//! mutation, validation and the API boundary all speak whole complex values.
//! Underneath, the lazy cache on each instance *derives* column-major views
//! for the hot read paths: per-(class, attribute) typed column chunks with
//! missing-value bitmaps and a shared string dictionary ([`column`],
//! [`Instance::attr_column`]), per-attribute hash indexes, and equi-depth
//! histograms (sampled above [`histogram::SAMPLE_THRESHOLD`] rows). All of
//! them hang off the same [`index::IndexCache`] and are invalidated together
//! on mutation, so a derived view can never outlive the rows it was built
//! from. Row-major remains the source of truth; the columns are a cache.
//!
//! The crate is self-contained and has no dependency on the WOL language itself;
//! it is the substrate every other crate in the workspace builds on.

pub mod column;
pub mod display;
pub mod error;
pub mod histogram;
pub mod index;
pub mod instance;
pub mod keys;
pub mod mutate;
pub mod oid;
pub mod parallel;
pub mod path;
pub mod schema;
pub mod types;
pub mod validate;
pub mod values;

pub use column::{AttrColumn, ColumnChunk, ColumnData, ColumnKind, StringInterner, CHUNK_ROWS};
pub use error::ModelError;
pub use histogram::{AttrHistogram, HistogramBucket};
pub use instance::{AttrStats, Instance, Mutation};
pub use keys::{rewrite_resolved, KeyExpr, KeySpec, SkolemClaims, SkolemFactory, SkolemState};
pub use mutate::{BatchDelta, ClassDelta, MutationBatch, SourceOp};
pub use oid::Oid;
pub use parallel::{chunk_ranges, Job, Parallelism, WorkerPool};
pub use path::Path;
pub use schema::Schema;
pub use types::{BaseType, ClassName, Label, Type};
pub use values::{RealVal, SharedValue, Value};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;
