//! Error type for the data model.

use std::fmt;

use crate::types::{ClassName, Label};

/// Errors raised while building or validating schemas, instances and keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A class referenced by a type or value is not declared in the schema.
    UnknownClass(ClassName),
    /// A class was declared twice in a schema.
    DuplicateClass(ClassName),
    /// The value type associated with a class is itself a class type, which the
    /// model forbids (Section 2.1: "where `τ^C` is not a class type").
    ClassTypedClass(ClassName),
    /// A record or variant type declares the same label twice.
    DuplicateLabel {
        /// The offending label.
        label: Label,
        /// Human readable description of where it occurred.
        context: String,
    },
    /// A variant type with no alternatives, or a set of a non-base/non-class
    /// element where the model requires one.
    MalformedType(String),
    /// A value did not conform to the expected type.
    TypeMismatch {
        /// What the schema required.
        expected: String,
        /// What the value actually was.
        found: String,
        /// Where in the value tree the mismatch happened.
        context: String,
    },
    /// An object identity appears in a value but is not present in any extent.
    DanglingOid(String),
    /// An object identity was inserted into the extent of a class it does not
    /// belong to.
    WrongClass {
        /// Class of the identity.
        oid_class: ClassName,
        /// Extent it was inserted into.
        extent: ClassName,
    },
    /// The same object identity was inserted twice.
    DuplicateOid(String),
    /// Key evaluation failed (missing attribute, unexpected value shape, ...).
    KeyEvaluation(String),
    /// A key specification is violated: two distinct objects share a key value.
    KeyViolation {
        /// Class whose key is violated.
        class: ClassName,
        /// Rendering of the shared key value.
        key: String,
    },
    /// A key specification produced a value that still contains object
    /// identities (the paper requires key types not to involve classes).
    KeyContainsOid(ClassName),
    /// A projection path could not be followed.
    PathError(String),
    /// Generic invariant violation with a description.
    Invalid(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            ModelError::DuplicateClass(c) => write!(f, "class `{c}` declared more than once"),
            ModelError::ClassTypedClass(c) => {
                write!(
                    f,
                    "class `{c}` has a class type as its associated value type"
                )
            }
            ModelError::DuplicateLabel { label, context } => {
                write!(f, "duplicate label `{label}` in {context}")
            }
            ModelError::MalformedType(msg) => write!(f, "malformed type: {msg}"),
            ModelError::TypeMismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch at {context}: expected {expected}, found {found}"
            ),
            ModelError::DanglingOid(o) => write!(f, "dangling object identity {o}"),
            ModelError::WrongClass { oid_class, extent } => write!(
                f,
                "object identity of class `{oid_class}` inserted into extent of `{extent}`"
            ),
            ModelError::DuplicateOid(o) => write!(f, "object identity {o} inserted twice"),
            ModelError::KeyEvaluation(msg) => write!(f, "key evaluation failed: {msg}"),
            ModelError::KeyViolation { class, key } => {
                write!(
                    f,
                    "key violation in class `{class}`: key value {key} is shared"
                )
            }
            ModelError::KeyContainsOid(c) => write!(
                f,
                "key specification for class `{c}` produced a value containing object identities"
            ),
            ModelError::PathError(msg) => write!(f, "path error: {msg}"),
            ModelError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClassName;

    #[test]
    fn display_unknown_class() {
        let e = ModelError::UnknownClass(ClassName::new("CityA"));
        assert_eq!(e.to_string(), "unknown class `CityA`");
    }

    #[test]
    fn display_type_mismatch() {
        let e = ModelError::TypeMismatch {
            expected: "int".into(),
            found: "str".into(),
            context: "CityA.name".into(),
        };
        assert!(e.to_string().contains("expected int"));
        assert!(e.to_string().contains("found str"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ModelError>();
    }
}
