//! A small rule-based plan optimiser.
//!
//! The paper relies on "the Kleisli optimizer [rewriting] the CPL code to a
//! more efficient form" (Section 6). This substitute implements the two
//! rewrites that matter for the workloads in this repository:
//!
//! * **filter push-down**: a filter over a join is pushed to the side that
//!   produces all of the predicate's variables;
//! * **hash-join upgrade**: a nested-loop join whose predicate is a
//!   conjunction containing an equality between one-side-only expressions is
//!   replaced by a hash join on that equality (remaining conjuncts stay as a
//!   residual filter).

use crate::expr::Expr;
use crate::plan::Plan;

/// Optimise a plan by repeatedly applying the rewrite rules until they no
/// longer change the plan.
pub fn optimize(plan: Plan) -> Plan {
    let mut current = plan;
    for _ in 0..16 {
        let next = rewrite(current.clone());
        if next == current {
            return next;
        }
        current = next;
    }
    current
}

fn rewrite(plan: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = rewrite(*input);
            push_filter(input, predicate)
        }
        Plan::Map { input, bindings } => Plan::Map {
            input: Box::new(rewrite(*input)),
            bindings,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(rewrite(*input)),
        },
        Plan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let left = rewrite(*left);
            let right = rewrite(*right);
            match predicate {
                Some(p) => upgrade_join(left, right, p),
                None => Plan::NestedLoopJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                    predicate: None,
                },
            }
        }
        Plan::HashJoin {
            left,
            right,
            left_key,
            right_key,
        } => Plan::HashJoin {
            left: Box::new(rewrite(*left)),
            right: Box::new(rewrite(*right)),
            left_key,
            right_key,
        },
        scan @ Plan::Scan { .. } => scan,
    }
}

/// Push a filter as close to the scans as possible.
fn push_filter(input: Plan, predicate: Expr) -> Plan {
    let needed = predicate.var_set();
    match input {
        Plan::NestedLoopJoin {
            left,
            right,
            predicate: join_pred,
        } => {
            let left_vars = left.produced_vars();
            let right_vars = right.produced_vars();
            if needed.iter().all(|v| left_vars.contains(v)) {
                return Plan::NestedLoopJoin {
                    left: Box::new(push_filter(*left, predicate)),
                    right,
                    predicate: join_pred,
                };
            }
            if needed.iter().all(|v| right_vars.contains(v)) {
                return Plan::NestedLoopJoin {
                    left,
                    right: Box::new(push_filter(*right, predicate)),
                    predicate: join_pred,
                };
            }
            // The predicate spans both sides: fold it into the join predicate
            // and try to turn the result into a hash join.
            let mut all = conjuncts(predicate);
            if let Some(existing) = join_pred {
                all.extend(conjuncts(existing));
            }
            let combined = conjunction(all).expect("at least one conjunct");
            upgrade_join(*left, *right, combined)
        }
        Plan::HashJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let left_vars = left.produced_vars();
            let right_vars = right.produced_vars();
            if needed.iter().all(|v| left_vars.contains(v)) {
                return Plan::HashJoin {
                    left: Box::new(push_filter(*left, predicate)),
                    right,
                    left_key,
                    right_key,
                };
            }
            if needed.iter().all(|v| right_vars.contains(v)) {
                return Plan::HashJoin {
                    left,
                    right: Box::new(push_filter(*right, predicate)),
                    left_key,
                    right_key,
                };
            }
            Plan::Filter {
                input: Box::new(Plan::HashJoin {
                    left,
                    right,
                    left_key,
                    right_key,
                }),
                predicate,
            }
        }
        other => Plan::Filter {
            input: Box::new(other),
            predicate,
        },
    }
}

/// Split a predicate into its conjuncts.
fn conjuncts(expr: Expr) -> Vec<Expr> {
    match expr {
        Expr::And(es) => es.into_iter().flat_map(conjuncts).collect(),
        other => vec![other],
    }
}

/// Rebuild a conjunction (or `None` for the empty conjunction).
fn conjunction(mut exprs: Vec<Expr>) -> Option<Expr> {
    match exprs.len() {
        0 => None,
        1 => Some(exprs.remove(0)),
        _ => Some(Expr::And(exprs)),
    }
}

/// Turn a nested-loop join into a hash join when an equality conjunct splits
/// cleanly across the two sides.
fn upgrade_join(left: Plan, right: Plan, predicate: Expr) -> Plan {
    let left_vars = left.produced_vars();
    let right_vars = right.produced_vars();
    let mut equality: Option<(Expr, Expr)> = None;
    let mut residual = Vec::new();
    for conjunct in conjuncts(predicate) {
        if equality.is_none() {
            if let Expr::Eq(a, b) = &conjunct {
                let a_vars = a.var_set();
                let b_vars = b.var_set();
                let a_left = a_vars.iter().all(|v| left_vars.contains(v));
                let a_right = a_vars.iter().all(|v| right_vars.contains(v));
                let b_left = b_vars.iter().all(|v| left_vars.contains(v));
                let b_right = b_vars.iter().all(|v| right_vars.contains(v));
                if a_left && b_right && !a_vars.is_empty() && !b_vars.is_empty() {
                    equality = Some(((**a).clone(), (**b).clone()));
                    continue;
                }
                if a_right && b_left && !a_vars.is_empty() && !b_vars.is_empty() {
                    equality = Some(((**b).clone(), (**a).clone()));
                    continue;
                }
            }
        }
        residual.push(conjunct);
    }
    match equality {
        Some((left_key, right_key)) => {
            let join = Plan::HashJoin {
                left: Box::new(left),
                right: Box::new(right),
                left_key,
                right_key,
            };
            match conjunction(residual) {
                Some(residual_pred) => Plan::Filter {
                    input: Box::new(join),
                    predicate: residual_pred,
                },
                None => join,
            }
        }
        None => Plan::NestedLoopJoin {
            left: Box::new(left),
            right: Box::new(right),
            predicate: conjunction(residual),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_plan, ExecStats};
    use crate::expr::EvalCtx;
    use wol_model::{ClassName, Instance, Value};

    fn instance() -> Instance {
        let mut inst = Instance::new("euro");
        let fr = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("France")),
                ("language", Value::str("French")),
            ]),
        );
        let de = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("Germany")),
                ("language", Value::str("German")),
            ]),
        );
        for (name, capital, c) in [
            ("Paris", true, &fr),
            ("Lyon", false, &fr),
            ("Berlin", true, &de),
        ] {
            inst.insert_fresh(
                &ClassName::new("CityE"),
                Value::record([
                    ("name", Value::str(name)),
                    ("is_capital", Value::bool(capital)),
                    ("country", Value::oid(c.clone())),
                ]),
            );
        }
        inst
    }

    #[test]
    fn nested_loop_with_equality_becomes_hash_join() {
        let plan = Plan::scan("CityE", "E").join(
            Plan::scan("CountryE", "C"),
            Some(
                Expr::var("E")
                    .path("country.name")
                    .eq(Expr::var("C").proj("name")),
            ),
        );
        let optimised = optimize(plan);
        assert!(matches!(optimised, Plan::HashJoin { .. }));
    }

    #[test]
    fn residual_conjuncts_preserved_as_filter() {
        let plan = Plan::scan("CityE", "E").join(
            Plan::scan("CountryE", "C"),
            Some(Expr::and(vec![
                Expr::var("E")
                    .path("country.name")
                    .eq(Expr::var("C").proj("name")),
                Expr::var("E").proj("is_capital"),
            ])),
        );
        let optimised = optimize(plan);
        // The capital test only needs E, so it is pushed below the join.
        match &optimised {
            Plan::HashJoin { left, .. } => {
                assert!(matches!(**left, Plan::Filter { .. }));
            }
            other => panic!("expected a hash join, got {other:?}"),
        }
    }

    #[test]
    fn filter_pushed_below_join() {
        let plan = Plan::scan("CityE", "E")
            .join(Plan::scan("CountryE", "C"), None)
            .filter(Expr::var("E").proj("is_capital"));
        let optimised = optimize(plan);
        match optimised {
            Plan::NestedLoopJoin { left, .. } => assert!(matches!(*left, Plan::Filter { .. })),
            other => panic!("expected join at the top, got {other:?}"),
        }
    }

    #[test]
    fn optimised_plans_produce_the_same_rows() {
        let inst = instance();
        let refs = [&inst];
        let original = Plan::scan("CityE", "E")
            .join(
                Plan::scan("CountryE", "C"),
                Some(Expr::and(vec![
                    Expr::var("E")
                        .path("country.name")
                        .eq(Expr::var("C").proj("name")),
                    Expr::var("E").proj("is_capital"),
                ])),
            )
            .map(vec![("N".to_string(), Expr::var("C").proj("language"))]);
        let optimised = optimize(original.clone());
        assert_ne!(original, optimised);
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let mut a = run_plan(&original, &mut ctx, &mut stats).unwrap();
        let mut ctx = EvalCtx::new(&refs);
        let mut b = run_plan(&optimised, &mut ctx, &mut stats).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn join_without_usable_equality_stays_nested_loop() {
        let plan = Plan::scan("CityE", "E").join(
            Plan::scan("CountryE", "C"),
            Some(Expr::var("E").proj("is_capital")),
        );
        let optimised = optimize(plan);
        match optimised {
            Plan::NestedLoopJoin {
                left, predicate, ..
            } => {
                // The one-sided predicate is pushed down; no residual remains.
                assert!(matches!(*left, Plan::Filter { .. }) || predicate.is_some());
            }
            other => panic!("expected nested loop join, got {other:?}"),
        }
    }

    #[test]
    fn optimize_is_idempotent() {
        let plan = Plan::scan("CityE", "E").join(
            Plan::scan("CountryE", "C"),
            Some(
                Expr::var("E")
                    .path("country.name")
                    .eq(Expr::var("C").proj("name")),
            ),
        );
        let once = optimize(plan);
        let twice = optimize(once.clone());
        assert_eq!(once, twice);
    }
}
