//! Errors raised by the storage adapters and the persistence layer.

use std::fmt;

/// Errors from loading or dumping data through the storage substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A row has the wrong number of values or a value of the wrong type.
    BadRow(String),
    /// A referenced table, column or object does not exist.
    Missing(String),
    /// A foreign-key-style reference could not be resolved while importing.
    UnresolvedReference(String),
    /// An error bubbled up from the data model.
    Model(String),
    /// Truncated or malformed input, with position context: where the bytes
    /// came from, how far in the failure was detected, and what was expected
    /// versus actually found there. Raised by the text loaders (CSV, ACeDB,
    /// relational) and by the binary WAL/snapshot decoders.
    Corrupt {
        /// The source of the bytes: a file path, or a pseudo-path such as
        /// `"<memory>"` for in-memory input.
        path: String,
        /// 1-based line number, for line-oriented text formats.
        line: Option<usize>,
        /// Byte offset from the start of the input, for binary formats.
        offset: Option<u64>,
        /// What a well-formed input would have contained here.
        expected: String,
        /// What was actually found.
        found: String,
    },
    /// An I/O failure, wrapped with the path being accessed.
    Io {
        /// The path the failing operation was addressing.
        path: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
}

impl StorageError {
    /// Construct a [`StorageError::Corrupt`] for line-oriented text input.
    pub fn corrupt_at_line(
        path: impl Into<String>,
        line: usize,
        expected: impl Into<String>,
        found: impl Into<String>,
    ) -> Self {
        StorageError::Corrupt {
            path: path.into(),
            line: Some(line),
            offset: None,
            expected: expected.into(),
            found: found.into(),
        }
    }

    /// Construct a [`StorageError::Corrupt`] for binary input.
    pub fn corrupt_at_offset(
        path: impl Into<String>,
        offset: u64,
        expected: impl Into<String>,
        found: impl Into<String>,
    ) -> Self {
        StorageError::Corrupt {
            path: path.into(),
            line: None,
            offset: Some(offset),
            expected: expected.into(),
            found: found.into(),
        }
    }

    /// Wrap an I/O error with the path it was addressing.
    pub fn io(path: impl Into<String>, err: std::io::Error) -> Self {
        StorageError::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::BadRow(m) => write!(f, "bad row: {m}"),
            StorageError::Missing(m) => write!(f, "missing: {m}"),
            StorageError::UnresolvedReference(m) => write!(f, "unresolved reference: {m}"),
            StorageError::Model(m) => write!(f, "data model error: {m}"),
            StorageError::Corrupt {
                path,
                line,
                offset,
                expected,
                found,
            } => {
                write!(f, "{path}: corrupt input")?;
                if let Some(line) = line {
                    write!(f, " at line {line}")?;
                }
                if let Some(offset) = offset {
                    write!(f, " at byte {offset}")?;
                }
                write!(f, ": expected {expected}, found {found}")
            }
            StorageError::Io { path, message } => write!(f, "{path}: i/o error: {message}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<wol_model::ModelError> for StorageError {
    fn from(e: wol_model::ModelError) -> Self {
        StorageError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(StorageError::BadRow("x".into())
            .to_string()
            .contains("bad row"));
        let e: StorageError = wol_model::ModelError::Invalid("z".into()).into();
        assert!(matches!(e, StorageError::Model(_)));
    }

    #[test]
    fn corrupt_errors_carry_position_context() {
        let line = StorageError::corrupt_at_line("data.csv", 3, "4 fields", "2 fields");
        assert_eq!(
            line.to_string(),
            "data.csv: corrupt input at line 3: expected 4 fields, found 2 fields"
        );
        let byte = StorageError::corrupt_at_offset("wal.log", 128, "8-byte header", "5 bytes");
        assert_eq!(
            byte.to_string(),
            "wal.log: corrupt input at byte 128: expected 8-byte header, found 5 bytes"
        );
    }

    #[test]
    fn io_errors_carry_the_path() {
        let e = StorageError::io(
            "/tmp/wal.log",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        let rendered = e.to_string();
        assert!(rendered.contains("/tmp/wal.log"), "{rendered}");
        assert!(rendered.contains("gone"), "{rendered}");
    }
}
