//! Property-based tests over the core invariants of the reproduction.

use proptest::prelude::*;

use wol_repro::cpl::{self, Expr, Plan};
use wol_repro::morphase::Morphase;
use wol_repro::wol_engine::{
    execute, instances_equivalent, match_body_reference, match_body_with_stats, normalize,
    Bindings, Databases, MatchStats, NormalizeOptions,
};
use wol_repro::wol_lang::{parse_clause, render_clause};
use wol_repro::wol_model::{ClassName, Instance, SkolemFactory, Value};
use wol_repro::workloads::cities::{generate_euro, CitiesWorkload};
use wol_repro::workloads::skewed::{self, SkewedParams};
use wol_repro::workloads::{variants, wide};

/// Clause bodies (over the Cities schemas) that exercise scans, index probes,
/// filters, pattern equalities and inequality joins.
const MATCHER_BODIES: &[&str] = &[
    "Z = 1 <= X in CountryE",
    "Z = 1 <= X in CountryE, X.language = \"French\"",
    "Z = 1 <= X in CountryE, Y in CityE, Y.country = X, Y.is_capital = true",
    "Z = 1 <= E in CityE, X in CountryE, X.name = E.country.name",
    "Z = 1 <= X in CountryE, Y in CountryE, X != Y, X.language = Y.language",
    "Z = 1 <= E in CityE, X in CountryE, X.name = E.country.name, \
             Y in CityE, Y.country = X, Y.is_capital = true",
];

/// Match `body` with both matchers against `dbs`, returning the sorted
/// binding multisets and the two stats blocks.
fn match_both(
    body: &str,
    dbs: &Databases<'_>,
) -> (Vec<Bindings>, Vec<Bindings>, MatchStats, MatchStats) {
    let clause = parse_clause(body).expect("body parses");
    let mut factory = SkolemFactory::new();
    let mut indexed_stats = MatchStats::default();
    let mut indexed = match_body_with_stats(
        &clause.body,
        dbs,
        &mut factory,
        Bindings::new(),
        &mut indexed_stats,
    )
    .expect("indexed matcher succeeds");
    let mut factory = SkolemFactory::new();
    let mut reference_stats = MatchStats::default();
    let mut reference = match_body_reference(
        &clause.body,
        dbs,
        &mut factory,
        Bindings::new(),
        &mut reference_stats,
    )
    .expect("reference matcher succeeds");
    indexed.sort();
    reference.sort();
    (indexed, reference, indexed_stats, reference_stats)
}

/// The tentpole regression: on a three-way join over a generated instance the
/// indexed matcher must do at least 5x less binding enumeration than the
/// naive generate-and-test matcher, while producing the identical multiset.
#[test]
fn indexed_matcher_reduces_bindings_considered_at_least_5x_on_three_way_join() {
    let source = generate_euro(30, 30, 7); // 30 countries, 900 cities
    let refs = [&source];
    let dbs = Databases::new(&refs[..]);
    let body = "Z = 1 <= E in CityE, X in CountryE, X.name = E.country.name, \
                        Y in CityE, Y.country = X, Y.is_capital = true";
    let (indexed, reference, indexed_stats, reference_stats) = match_both(body, &dbs);
    assert_eq!(indexed, reference);
    assert_eq!(indexed.len(), 900); // every city joined to its country's capital
    assert!(indexed_stats.index_probes > 0);
    assert!(
        reference_stats.bindings_considered >= 5 * indexed_stats.bindings_considered,
        "expected a >=5x reduction, got reference={} indexed={}",
        reference_stats.bindings_considered,
        indexed_stats.bindings_considered
    );
}

/// A raw (unoptimised) chain-join plan over `k` scans alternating between
/// `CityE` and `CountryE`, listed in an arbitrary rotation of the scan order:
/// scans are cross-joined in that order, one join variable (`N`) is defined
/// by a `Map`, and every join edge and filter sits at the very top — the
/// worst shape the translator can hand the planner.
fn chain_join_raw_plan(k: usize, rotation: usize) -> Plan {
    let class_of = |i: usize| {
        if i.is_multiple_of(2) {
            "CityE"
        } else {
            "CountryE"
        }
    };
    let var_of = |i: usize| format!("V{i}");
    let mut plan: Option<Plan> = None;
    for step in 0..k {
        let i = (step + rotation) % k;
        let scan = Plan::scan(class_of(i), var_of(i));
        plan = Some(match plan {
            None => scan,
            Some(p) => p.join(scan, None),
        });
    }
    let mut plan = plan.expect("at least two scans").map(vec![(
        "N".to_string(),
        Expr::var(var_of(0)).proj("country"),
    )]);
    plan = plan.filter(Expr::var(var_of(0)).proj("is_capital"));
    for i in 1..k {
        let edge = if i % 2 == 1 {
            if i == 1 {
                // This edge goes through the Map-defined variable: the
                // planner must inline the definition to see the equality.
                Expr::var("N").eq(Expr::var(var_of(1)))
            } else {
                Expr::var(var_of(i - 1))
                    .proj("country")
                    .eq(Expr::var(var_of(i)))
            }
        } else {
            Expr::var(var_of(i))
                .path("country.name")
                .eq(Expr::var(var_of(i - 1)).proj("name"))
        };
        plan = plan.filter(edge);
    }
    plan
}

/// A raw chain-join plan over the *skewed* schema: `k` scans cycling
/// MarkerS → ProbeS → LaneS in an arbitrary rotation, cross-joined, with one
/// join variable defined by a `Map` and every join edge left at the very
/// top. Edges join adjacent classes on their shared attribute (clone_name /
/// lane / bin), so the planner has real skew to estimate through.
fn skew_chain_raw_plan(k: usize, rotation: usize) -> Plan {
    let class_of = |i: usize| ["MarkerS", "ProbeS", "LaneS"][i % 3];
    let var_of = |i: usize| format!("V{i}");
    let mut plan: Option<Plan> = None;
    for step in 0..k {
        let i = (step + rotation) % k;
        let scan = Plan::scan(class_of(i), var_of(i));
        plan = Some(match plan {
            None => scan,
            Some(p) => p.join(scan, None),
        });
    }
    // V0 is always a MarkerS scan; N goes through a Map definition so the
    // planner must inline it to see the first join edge.
    let mut plan = plan.expect("at least two scans").map(vec![(
        "N".to_string(),
        Expr::var(var_of(0)).proj("clone_name"),
    )]);
    plan = plan.filter(Expr::Leq(
        Box::new(Expr::var(var_of(0)).proj("bin")),
        Box::new(Expr::Const(wol_repro::wol_model::Value::int(64))),
    ));
    for i in 1..k {
        let (prev, this) = (var_of(i - 1), var_of(i));
        let edge = match (class_of(i - 1), class_of(i)) {
            ("MarkerS", "ProbeS") if i == 1 => {
                Expr::var("N").eq(Expr::var(this).proj("clone_name"))
            }
            ("MarkerS", "ProbeS") => Expr::var(prev)
                .proj("clone_name")
                .eq(Expr::var(this).proj("clone_name")),
            ("ProbeS", "LaneS") => Expr::var(prev)
                .proj("lane")
                .eq(Expr::var(this).proj("lane")),
            ("LaneS", "MarkerS") => Expr::var(prev).proj("bin").eq(Expr::var(this).proj("bin")),
            other => unreachable!("unexpected class pair {other:?}"),
        };
        plan = plan.filter(edge);
    }
    plan
}

/// Run a plan and return its sorted row multiset.
fn sorted_rows(plan: &Plan, refs: &[&wol_repro::wol_model::Instance]) -> Vec<cpl::Row> {
    let mut ctx = cpl::expr::EvalCtx::new(refs).with_parallelism(cpl::Parallelism::sequential());
    let mut stats = cpl::ExecStats::default();
    let mut rows = cpl::run_plan(plan, &mut ctx, &mut stats).expect("plan runs");
    rows.sort();
    rows
}

/// Wrap the planned chain join in a Skolem-heavy shape: a `Map` minting a
/// clone-group identity per row (duplicate keys across rows, hence across
/// worker chunks) and two insert actions — one keyed by the *duplicated*
/// clone name (partial inserts merging under the key, with a Skolem-valued
/// attribute functionally dependent on it) and one keyed per marker object
/// with a nested Skolem reference to the group. This is the insertion shape
/// the two-phase key-claim protocol exists for.
fn skolem_heavy_query(plan: &Plan) -> cpl::Query {
    let mapped = plan.clone().map(vec![(
        "GRP".to_string(),
        Expr::Skolem(
            ClassName::new("GroupT"),
            Box::new(Expr::var("V0").proj("clone_name")),
        ),
    )]);
    cpl::Query {
        name: "skolem_soak".to_string(),
        plan: mapped,
        inserts: vec![
            cpl::InsertAction {
                class: ClassName::new("CloneT"),
                // Duplicate keys across rows and workers: every row of one
                // clone merges into one object.
                key: Expr::var("V0").proj("clone_name"),
                attrs: vec![
                    ("name".to_string(), Expr::var("V0").proj("clone_name")),
                    // Functionally dependent on the key, so merges agree.
                    ("group".to_string(), Expr::var("GRP")),
                ],
            },
            cpl::InsertAction {
                class: ClassName::new("MarkerT"),
                key: Expr::var("V0"),
                attrs: vec![
                    ("marker".to_string(), Expr::var("V0").proj("name")),
                    (
                        // A fresh Skolem per insert evaluation, interleaved
                        // with the key mints of both actions.
                        "entry".to_string(),
                        Expr::Skolem(
                            ClassName::new("EntryT"),
                            Box::new(Expr::var("V0").proj("name")),
                        ),
                    ),
                    ("group".to_string(), Expr::var("GRP")),
                ],
            },
        ],
    }
}

/// Run a Skolem-heavy query end to end at one thread count, with the
/// parallel threshold at one row, returning everything determinism is judged
/// on: the produced rows, the target instance, and the merged [`ExecStats`].
fn run_skolem_query(
    query: &cpl::Query,
    refs: &[&Instance],
    threads: usize,
) -> (Vec<cpl::Row>, Instance, cpl::ExecStats) {
    let parallelism = cpl::Parallelism::new(threads);
    let mut ctx = cpl::expr::EvalCtx::new(refs).with_parallelism(parallelism);
    ctx.set_parallel_min_rows(1);
    let mut stats = cpl::ExecStats::default();
    let rows = cpl::run_plan(&query.plan, &mut ctx, &mut stats).expect("plan runs");
    let mut ctx = cpl::expr::EvalCtx::new(refs).with_parallelism(parallelism);
    ctx.set_parallel_min_rows(1);
    let mut stats = cpl::ExecStats::default();
    let mut target = Instance::new("target");
    cpl::execute_query(query, &mut ctx, &mut target, &mut stats).expect("query executes");
    (rows, target, stats)
}

/// Execute `plan` at the given thread count — both bare (for the row stream)
/// and as a full query whose Skolem-keyed insert actions build a target
/// instance from the rows (so the *identity numbering*, which depends on row
/// order, is part of what is compared). The parallel threshold is lowered to
/// one row so even tiny generated instances exercise the partitioned paths.
fn run_query_with_threads(
    plan: &Plan,
    refs: &[&wol_repro::wol_model::Instance],
    threads: usize,
) -> (Vec<cpl::Row>, wol_repro::wol_model::Instance) {
    let parallelism = cpl::Parallelism::new(threads);
    let mut ctx = cpl::expr::EvalCtx::new(refs).with_parallelism(parallelism);
    ctx.set_parallel_min_rows(1);
    let mut stats = cpl::ExecStats::default();
    let rows = cpl::run_plan(plan, &mut ctx, &mut stats).expect("plan runs");

    let query = cpl::Query {
        name: "thread_matrix".to_string(),
        plan: plan.clone(),
        inserts: vec![cpl::InsertAction {
            class: ClassName::new("OutT"),
            // Keyed by the V0 marker object: join multiplicity makes partial
            // inserts merge, exactly like compiled normal-form clauses.
            key: Expr::var("V0"),
            attrs: vec![
                ("marker".to_string(), Expr::var("V0").proj("name")),
                ("clone".to_string(), Expr::var("V0").proj("clone_name")),
            ],
        }],
    };
    let mut ctx = cpl::expr::EvalCtx::new(refs).with_parallelism(parallelism);
    ctx.set_parallel_min_rows(1);
    let mut stats = cpl::ExecStats::default();
    let mut target = wol_repro::wol_model::Instance::new("target");
    cpl::execute_query(&query, &mut ctx, &mut target, &mut stats).expect("query executes");
    (rows, target)
}

/// A scan→filter→project tower over the skewed `MarkerS` class — the plan
/// shape the columnar executor answers batch-at-a-time. Mixes an integer
/// range predicate, an optional dictionary-string equality and a negation,
/// and projects through a `Map` so late materialization is exercised.
fn marker_tower_plan(bin_cut: i64, with_str_eq: bool, negate: bool) -> Plan {
    let mut plan = Plan::scan("MarkerS", "M").filter(Expr::Leq(
        Box::new(Expr::var("M").proj("bin")),
        Box::new(Expr::Const(Value::int(bin_cut))),
    ));
    if with_str_eq {
        let eq = Expr::var("M")
            .proj("clone_name")
            .eq(Expr::Const(Value::str("clone0")));
        plan = plan.filter(if negate { Expr::Not(Box::new(eq)) } else { eq });
    }
    plan.map(vec![
        ("V0".to_string(), Expr::var("M")),
        ("NAME".to_string(), Expr::var("M").proj("name")),
        ("BIN".to_string(), Expr::var("M").proj("bin")),
    ])
}

/// Run `plan` bare and as an insert-action query with the columnar executor
/// forced on or off, returning the row stream, the built target and the
/// merged stats the differential is judged on.
fn run_with_columnar(
    plan: &Plan,
    refs: &[&Instance],
    threads: usize,
    columnar: bool,
) -> (Vec<cpl::Row>, Instance, cpl::ExecStats, cpl::ColumnarStats) {
    let parallelism = cpl::Parallelism::new(threads);
    let mut ctx = cpl::expr::EvalCtx::new(refs).with_parallelism(parallelism);
    ctx.set_parallel_min_rows(1);
    ctx.set_columnar(columnar);
    let mut stats = cpl::ExecStats::default();
    let rows = cpl::run_plan(plan, &mut ctx, &mut stats).expect("plan runs");
    let columnar_stats = ctx.take_columnar_stats();
    let query = cpl::Query {
        name: "columnar_diff".to_string(),
        plan: plan.clone(),
        inserts: vec![cpl::InsertAction {
            class: ClassName::new("OutT"),
            key: Expr::var("V0"),
            attrs: vec![
                ("marker".to_string(), Expr::var("NAME")),
                ("bin".to_string(), Expr::var("BIN")),
            ],
        }],
    };
    let mut ctx = cpl::expr::EvalCtx::new(refs).with_parallelism(parallelism);
    ctx.set_parallel_min_rows(1);
    ctx.set_columnar(columnar);
    let mut stats = cpl::ExecStats::default();
    let mut target = Instance::new("target");
    cpl::execute_query(&query, &mut ctx, &mut target, &mut stats).expect("query executes");
    (rows, target, stats, columnar_stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The columnar differential: on scan→filter→project towers over
    /// zipf-skewed instances, the batch-at-a-time columnar executor and the
    /// row-at-a-time executor produce the identical row stream (order
    /// included), the bit-identical target instance and equal merged
    /// `ExecStats`, at every thread count in {1, 2, 4, 8} and under both
    /// planner cost models. The columnar path must actually engage — a
    /// silently disqualified pipeline would make this test vacuous.
    #[test]
    fn columnar_execution_matches_row_major_across_the_thread_matrix(
        bin_cut in 0i64..6,
        with_str_eq in 0usize..2,
        negate in 0usize..2,
        clones in 1usize..5,
        markers in 2usize..11,
        probes in 1usize..7,
        seed in 0u64..500,
    ) {
        let params = SkewedParams {
            clones,
            markers,
            probes,
            lanes: 4,
            bins: 3,
            zipf_exponent: 1.3,
            seed,
        };
        let source = skewed::generate_source(&params);
        let refs = [&source];
        let tower = marker_tower_plan(bin_cut, with_str_eq == 1, negate == 1);
        for cost_model in [cpl::CostModel::Histogram, cpl::CostModel::FlatNdv] {
            let stats = cpl::Statistics::from_instances(&refs[..]).with_cost_model(cost_model);
            let planned = cpl::optimize_with_stats(tower.clone(), &stats);
            let (base_rows, base_target, base_stats, _) =
                run_with_columnar(&planned, &refs[..], 1, false);
            for threads in [1usize, 2, 4, 8] {
                let (rows, target, stats, columnar_stats) =
                    run_with_columnar(&planned, &refs[..], threads, true);
                prop_assert!(columnar_stats.pipelines > 0,
                    "the columnar path never engaged on:\n{}", planned.render());
                prop_assert_eq!(&rows, &base_rows);
                prop_assert_eq!(&target, &base_target);
                prop_assert_eq!(&stats, &base_stats);
                // The row path itself is thread-invariant too.
                let (rows, target, stats, _) =
                    run_with_columnar(&planned, &refs[..], threads, false);
                prop_assert_eq!(&rows, &base_rows);
                prop_assert_eq!(&target, &base_target);
                prop_assert_eq!(&stats, &base_stats);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The join-graph planner (with live statistics) and the legacy
    /// rule-based rewriter both produce exactly the raw plan's row multiset,
    /// for every scan order of 2-5 scans over generated instances.
    #[test]
    fn planner_and_reference_preserve_raw_row_multisets(
        k in 2usize..6,
        rotation in 0usize..6,
        countries in 1usize..4,
        cities in 1usize..4,
        seed in 0u64..500,
    ) {
        let source = generate_euro(countries, cities, seed);
        let refs = [&source];
        let stats = cpl::Statistics::from_instances(&refs[..]);
        let raw = chain_join_raw_plan(k, rotation % k);
        let expected = sorted_rows(&raw, &refs[..]);
        let planned = cpl::optimize_with_stats(raw.clone(), &stats);
        prop_assert_eq!(&sorted_rows(&planned, &refs[..]), &expected);
        let reference = cpl::optimize_reference(raw.clone());
        prop_assert_eq!(&sorted_rows(&reference, &refs[..]), &expected);
        // The planner never leaves a product behind on this connected graph.
        let rendered = planned.render();
        prop_assert!(!rendered.contains("CrossJoin") && !rendered.contains("NestedLoopJoin"),
            "a product survived planning:\n{}", rendered);
    }

    /// The histogram-driven planner is differentially verified, not just
    /// benchmarked: over zipfian-skewed instances, for every scan order of
    /// 2-5 scans, planning with histogram statistics, planning with flat
    /// `1/ndv` statistics, and the legacy rule-based rewriter all produce
    /// exactly the raw plan's row multiset — and the planner leaves no
    /// product behind on these connected graphs under either cost model.
    #[test]
    fn histogram_and_flat_planners_preserve_raw_row_multisets_on_skew(
        k in 2usize..6,
        rotation in 0usize..6,
        clones in 1usize..5,
        markers in 2usize..11,
        probes in 1usize..7,
        seed in 0u64..500,
    ) {
        let params = SkewedParams {
            clones,
            markers,
            probes,
            lanes: 4,
            bins: 3,
            zipf_exponent: 1.3,
            seed,
        };
        let source = skewed::generate_source(&params);
        let refs = [&source];
        let raw = skew_chain_raw_plan(k, rotation % k);
        let expected = sorted_rows(&raw, &refs[..]);
        for cost_model in [cpl::CostModel::Histogram, cpl::CostModel::FlatNdv] {
            let stats = cpl::Statistics::from_instances(&refs[..]).with_cost_model(cost_model);
            let planned = cpl::optimize_with_stats(raw.clone(), &stats);
            prop_assert_eq!(&sorted_rows(&planned, &refs[..]), &expected);
            let rendered = planned.render();
            prop_assert!(!rendered.contains("CrossJoin") && !rendered.contains("NestedLoopJoin"),
                "a product survived planning under {:?}:\n{}", cost_model, rendered);
        }
        let reference = cpl::optimize_reference(raw.clone());
        prop_assert_eq!(&sorted_rows(&reference, &refs[..]), &expected);
    }

    /// The thread-matrix differential: over zipf-skewed E7-style instances,
    /// parallel execution at every thread count in {1, 2, 4, 8} produces the
    /// *identical row stream and target instance* as the sequential executor
    /// — for the cost-based plan under both cost models *and* for the legacy
    /// `optimize_reference` plan — and the row multiset always equals the raw
    /// plan's. Identity numbering in the target depends on row order, so
    /// target equality here proves parallel row order is exactly sequential.
    #[test]
    fn parallel_execution_is_deterministic_across_the_thread_matrix(
        k in 2usize..5,
        rotation in 0usize..6,
        clones in 1usize..5,
        markers in 2usize..11,
        probes in 1usize..7,
        seed in 0u64..500,
    ) {
        let params = SkewedParams {
            clones,
            markers,
            probes,
            lanes: 4,
            bins: 3,
            zipf_exponent: 1.3,
            seed,
        };
        let source = skewed::generate_source(&params);
        let refs = [&source];
        let raw = skew_chain_raw_plan(k, rotation % k);
        let raw_multiset = sorted_rows(&raw, &refs[..]);
        let reference = cpl::optimize_reference(raw.clone());
        for cost_model in [cpl::CostModel::Histogram, cpl::CostModel::FlatNdv] {
            let stats = cpl::Statistics::from_instances(&refs[..]).with_cost_model(cost_model);
            let planned = cpl::optimize_with_stats(raw.clone(), &stats);
            for plan in [&planned, &reference] {
                let (base_rows, base_target) = run_query_with_threads(plan, &refs[..], 1);
                for threads in [2usize, 4, 8] {
                    let (rows, target) = run_query_with_threads(plan, &refs[..], threads);
                    // Divergence at any thread count under either cost model
                    // is a determinism bug.
                    prop_assert_eq!(&rows, &base_rows);
                    prop_assert_eq!(&target, &base_target);
                }
                let mut multiset = base_rows;
                multiset.sort();
                prop_assert_eq!(&multiset, &raw_multiset);
            }
        }
    }

    /// The Skolem-insertion determinism **soak**: the primary proof of the
    /// two-phase key-claim protocol. Over zipf-skewed generated instances,
    /// a Skolem-heavy program — a Skolem-minting `Map` over the planned
    /// join, plus insert actions whose keys *duplicate across worker
    /// chunks* (merging partial inserts) and whose attributes mint further
    /// identities interleaved with the key mints — must produce the
    /// bit-identical row stream, bit-identical target instance (identity
    /// numbering included) and equal merged `ExecStats` at every thread
    /// count in {1, 2, 4, 8}, under both cost models. Any divergence means
    /// claims resolved out of input order, or a provisional identity leaked.
    #[test]
    fn skolem_insertion_soak_is_deterministic_across_the_thread_matrix(
        k in 2usize..5,
        rotation in 0usize..6,
        clones in 1usize..5,
        markers in 2usize..11,
        probes in 1usize..7,
        seed in 0u64..500,
    ) {
        let params = SkewedParams {
            clones,
            markers,
            probes,
            lanes: 4,
            bins: 3,
            zipf_exponent: 1.3,
            seed,
        };
        let source = skewed::generate_source(&params);
        let refs = [&source];
        let raw = skew_chain_raw_plan(k, rotation % k);
        for cost_model in [cpl::CostModel::Histogram, cpl::CostModel::FlatNdv] {
            let stats = cpl::Statistics::from_instances(&refs[..]).with_cost_model(cost_model);
            let planned = cpl::optimize_with_stats(raw.clone(), &stats);
            let query = skolem_heavy_query(&planned);
            let (base_rows, base_target, base_stats) = run_skolem_query(&query, &refs[..], 1);
            // Sanity: the generated program really is Skolem-heavy, and its
            // duplicated keys really merge — one CloneT object per distinct
            // group identity, one MarkerT object per distinct driving row.
            prop_assert!(query.plan.expressions().iter().any(|e| e.contains_skolem()));
            let groups: std::collections::BTreeSet<_> =
                base_rows.iter().map(|r| r["GRP"].clone()).collect();
            let drivers: std::collections::BTreeSet<_> =
                base_rows.iter().map(|r| r["V0"].clone()).collect();
            prop_assert_eq!(
                base_target.extent_size(&ClassName::new("CloneT")),
                groups.len()
            );
            prop_assert_eq!(
                base_target.extent_size(&ClassName::new("MarkerT")),
                drivers.len()
            );
            for threads in [2usize, 4, 8] {
                // Divergence at any thread count under either cost model —
                // in the row stream, the target, or the stats — is a bug in
                // the key-claim protocol.
                let (rows, target, stats) = run_skolem_query(&query, &refs[..], threads);
                prop_assert_eq!(&rows, &base_rows);
                prop_assert_eq!(&target, &base_target);
                prop_assert_eq!(&stats, &base_stats);
            }
        }
    }

    /// The Skolem factory is a bijection between key values and identities:
    /// equal keys give equal identities, distinct keys give distinct ones.
    #[test]
    fn skolem_factory_is_injective(keys in proptest::collection::vec("[a-z]{1,8}", 1..20)) {
        let mut factory = SkolemFactory::new();
        let class = ClassName::new("CountryT");
        let mut assigned = std::collections::BTreeMap::new();
        for key in &keys {
            let oid = factory.mk(&class, &Value::str(key.clone()));
            let again = factory.mk(&class, &Value::str(key.clone()));
            prop_assert_eq!(&oid, &again);
            if let Some(previous) = assigned.insert(key.clone(), oid.clone()) {
                prop_assert_eq!(previous, oid);
            }
        }
        let distinct_keys: std::collections::BTreeSet<_> = keys.iter().collect();
        let distinct_oids: std::collections::BTreeSet<_> = assigned.values().collect();
        prop_assert_eq!(distinct_keys.len(), distinct_oids.len());
    }

    /// Pretty-printing and re-parsing a clause is the identity.
    #[test]
    fn clause_round_trip(
        attr in "[a-z]{1,6}",
        class in "[A-Z][a-z]{1,6}",
        constant in "[a-zA-Z]{1,8}",
    ) {
        let text = format!("X in {class}, X.{attr} = \"{constant}\" <= Y in {class}, X = Y");
        let clause = parse_clause(&text).unwrap();
        let reparsed = parse_clause(render_clause(&clause).trim_end_matches(';')).unwrap();
        prop_assert_eq!(clause, reparsed);
    }

    /// The cities transformation scales: extents of the target are determined
    /// by the source sizes, for any generated source.
    #[test]
    fn cities_target_extents_match_source(countries in 1usize..6, cities in 1usize..5, seed in 0u64..500) {
        let workload = CitiesWorkload::new();
        let program = workload.euro_program();
        let source = generate_euro(countries, cities, seed);
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let target = execute(&normal, &[&source][..], "target").unwrap();
        prop_assert_eq!(target.extent_size(&ClassName::new("CountryT")), countries);
        prop_assert_eq!(target.extent_size(&ClassName::new("CityT")), countries * cities);
    }

    /// Normalisation is deterministic and insensitive to re-running.
    #[test]
    fn normalization_is_a_function(k in 1usize..5) {
        let program = variants::wol_program(k);
        let a = normalize(&program, &NormalizeOptions::default()).unwrap();
        let b = normalize(&program, &NormalizeOptions::default()).unwrap();
        prop_assert_eq!(a.clauses, b.clauses);
    }

    /// Splitting the same wide-record transformation into a different number
    /// of partial clauses does not change the produced target (up to renaming
    /// of object identities).
    #[test]
    fn partial_clause_granularity_is_semantically_irrelevant(
        rows in 1usize..6,
        k in 1usize..5,
        seed in 0u64..100,
    ) {
        let n = 8;
        let source = wide::generate_source(n, rows, seed);
        let whole = normalize(&wide::normal_form_program(n), &NormalizeOptions::default()).unwrap();
        let split = normalize(&wide::partial_program(n, k, true), &NormalizeOptions::default()).unwrap();
        let a = execute(&whole, &[&source][..], "t").unwrap();
        let b = execute(&split, &[&source][..], "t").unwrap();
        prop_assert!(instances_equivalent(&a, &b, 2));
    }

    /// The indexed plan-based matcher returns exactly the same binding
    /// multiset as the naive reference matcher on generated instances, for a
    /// family of bodies covering scans, probes, filters and inequality joins
    /// — and never enumerates more candidates doing it.
    #[test]
    fn indexed_matcher_equals_reference_on_generated_instances(
        countries in 1usize..8,
        cities in 1usize..8,
        seed in 0u64..1000,
    ) {
        let source = generate_euro(countries, cities, seed);
        let refs = [&source];
        let dbs = Databases::new(&refs[..]);
        for body in MATCHER_BODIES {
            let (indexed, reference, indexed_stats, reference_stats) = match_both(body, &dbs);
            prop_assert_eq!(&indexed, &reference);
            prop_assert!(
                indexed_stats.bindings_considered <= reference_stats.bindings_considered,
                "indexed matcher considered more bindings on `{}`: {} > {}",
                body,
                indexed_stats.bindings_considered,
                reference_stats.bindings_considered
            );
        }
    }

    /// The Morphase/CPL execution path agrees with the engine's reference
    /// executor on the variant family.
    #[test]
    fn cpl_and_reference_execution_agree(k in 1usize..4, items in 1usize..12, seed in 0u64..100) {
        let program = variants::wol_program(k);
        let source = variants::generate_source(k, items, seed);
        let run = Morphase::new().transform(&program, &[&source][..]).unwrap();
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let reference = execute(&normal, &[&source][..], "target").unwrap();
        prop_assert!(instances_equivalent(&run.target, &reference, 2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The maintenance differential: over generated genome sources and
    /// random mutation streams (inserts, position updates, duplicate Skolem
    /// keys, attribute updates on referenced clones, removals, renames), an
    /// incrementally maintained pipeline's target is bit-identical to a
    /// from-scratch re-run after every batch — and the final target and the
    /// cumulative `MaintainStats` are identical at every thread count in
    /// {1, 2, 4, 8} and the outcome counters under both planner cost models.
    #[test]
    fn incremental_maintenance_matches_from_scratch_reruns(
        clones in 2usize..8,
        markers in 4usize..16,
        density_tenths in 0usize..11,
        seed in 0u64..500,
        stream_seed in 0u64..500,
        batches in 1usize..7,
        ops in 1usize..5,
        mixed in 0usize..2,
    ) {
        use wol_repro::morphase::{MaterializedPipeline, PipelineOptions};
        use wol_repro::workloads::genome::{self, GenomeParams};
        use wol_repro::workloads::traffic::{TrafficGen, TrafficWeights};

        let params = GenomeParams {
            clones,
            markers,
            density: density_tenths as f64 / 10.0,
            seed,
        };
        let program = genome::program();
        let source = genome::generate_source(&params);
        let weights = if mixed == 1 {
            TrafficWeights::mixed()
        } else {
            TrafficWeights::in_place()
        };
        let mut gen = TrafficGen::new(&source, stream_seed, weights);
        let stream: Vec<_> = (0..batches).map(|_| gen.next_batch(ops)).collect();

        // Canonical run: one thread, default cost model, oracle-checked
        // after every single batch.
        let mut canonical = MaterializedPipeline::new(
            &program,
            vec![source.clone()],
            PipelineOptions::default(),
        )
        .unwrap();
        for batch in &stream {
            canonical.apply_batch(batch).unwrap();
            let oracle = canonical.rerun_oracle().unwrap();
            if let Some(report) = canonical.target().deep_eq_report(&oracle.target) {
                prop_assert!(false, "maintained target diverged from the oracle: {}", report);
            }
        }
        let canonical_stats = canonical.stats().clone();

        for cost_model in [cpl::CostModel::Histogram, cpl::CostModel::FlatNdv] {
            for threads in [1usize, 2, 4, 8] {
                let options = PipelineOptions {
                    parallelism: cpl::Parallelism::new(threads),
                    cost_model,
                    ..PipelineOptions::default()
                };
                let mut pipeline =
                    MaterializedPipeline::new(&program, vec![source.clone()], options).unwrap();
                for batch in &stream {
                    pipeline.apply_batch(batch).unwrap();
                }
                if let Some(report) = pipeline.target().deep_eq_report(canonical.target()) {
                    prop_assert!(
                        false,
                        "target diverged at {} threads / {:?}: {}",
                        threads, cost_model, report
                    );
                }
                let stats = pipeline.stats();
                // Outcome counters are plan-shape independent.
                prop_assert_eq!(stats.batches, canonical_stats.batches);
                prop_assert_eq!(stats.inplace_batches, canonical_stats.inplace_batches);
                prop_assert_eq!(stats.rebuild_batches, canonical_stats.rebuild_batches);
                prop_assert_eq!(stats.full_reruns, canonical_stats.full_reruns);
                prop_assert_eq!(stats.rows_removed, canonical_stats.rows_removed);
                prop_assert_eq!(stats.rows_added, canonical_stats.rows_added);
                prop_assert_eq!(stats.objects_repaired, canonical_stats.objects_repaired);
                if cost_model == cpl::CostModel::default() {
                    // Within one cost model the full stats block — execution
                    // counters included — is thread-invariant.
                    prop_assert_eq!(stats, &canonical_stats);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The CSV adapter round-trip (E13 satellite): an arbitrary relational
    /// table — string cells with embedded commas, quotes, CR/LF and
    /// surrounding whitespace, numeric-looking strings, arbitrary integers
    /// and booleans — survives `to_csv` → `parse_csv` bit-identically,
    /// schema included. Because the writer quotes every string field, a
    /// string `"123"` must come back as a *string*, not an integer, and the
    /// all-rows type inference must re-derive exactly the original column
    /// types.
    #[test]
    fn csv_round_trip_preserves_arbitrary_tables(
        col_names in proptest::collection::vec("[a-z]{1,6}", 1..5),
        col_types in proptest::collection::vec(0usize..3, 4..5),
        nrows in 1usize..8,
        // Fixed-size 7x4 cell grids (the shim has no tuple strategies);
        // the first `nrows` x `col_names.len()` cells are used. Strings
        // draw from printable ASCII — commas, quotes and spaces included —
        // plus tab, newline and carriage return.
        strs in proptest::collection::vec("[ -~\t\n\r]{0,12}", 28..29),
        ints in proptest::collection::vec(i64::MIN..i64::MAX, 28..29),
        bools in proptest::collection::vec(0usize..2, 28..29),
    ) {
        use wol_repro::storage::csv::{parse_csv, to_csv};
        use wol_repro::storage::relational::{Column, Table, TableSchema};

        let columns: Vec<Column> = col_names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                // Suffix with the index so names stay distinct.
                let name = format!("{name}_{i}");
                match col_types[i] {
                    0 => Column::str(name),
                    1 => Column::int(name),
                    _ => Column::bool(name),
                }
            })
            .collect();
        let mut table = Table::new(TableSchema {
            name: "RoundTrip".to_string(),
            key_column: columns[0].name.clone(),
            columns,
        });
        for r in 0..nrows {
            let row: Vec<Value> = (0..col_names.len())
                .map(|c| {
                    let cell = r * 4 + c;
                    match col_types[c] {
                        0 => Value::str(strs[cell].clone()),
                        1 => Value::Int(ints[cell]),
                        _ => Value::Bool(bools[cell] == 1),
                    }
                })
                .collect();
            table.push_row(row).expect("generated row matches the schema");
        }

        let text = to_csv(&table);
        let reparsed = parse_csv("RoundTrip", &text).expect("rendered CSV re-parses");
        prop_assert_eq!(&reparsed, &table);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The federated pushdown differential (E13): over generated federated
    /// sources — relational clones, ACeDB-style markers, an assay CSV — the
    /// pipeline with planner pushdown produces the bit-identical target
    /// instance (identity numbering included) and the same row/object
    /// counters as the pushdown-off full-ingest run, and within each mode
    /// the target and the merged `ExecStats` are invariant across every
    /// thread count in {1, 2, 4, 8}. The pushdown must actually engage —
    /// all three backend guards push — or the differential is vacuous.
    #[test]
    fn federated_pushdown_is_bit_identical_across_modes_and_threads(
        clones in 2usize..10,
        markers in 4usize..20,
        assays in 20usize..120,
        seed in 0u64..500,
    ) {
        use wol_repro::morphase::{MorphaseRun, PipelineOptions};
        use wol_repro::storage::ScanProvider;
        use wol_repro::workloads::federated::{self, FederatedParams};

        let params = FederatedParams { clones, markers, assays, seed };
        let (csv, ace, rel) = federated::providers(&params);
        let providers: [&dyn ScanProvider; 3] = [&csv, &ace, &rel];
        let program = federated::program();
        let run = |pushdown: bool, threads: usize| -> MorphaseRun {
            Morphase::with_options(PipelineOptions {
                pushdown,
                parallelism: cpl::Parallelism::new(threads),
                ..PipelineOptions::default()
            })
            .transform_federated(&program, &providers)
            .expect("federated pipeline runs")
        };

        let base_on = run(true, 1);
        let base_off = run(false, 1);
        prop_assert!(
            base_on.exec.pushed_filters == 3,
            "all three guards must push, got {}",
            base_on.exec.pushed_filters
        );
        prop_assert!(base_on.exec.provider_rows_out <= base_on.exec.provider_rows_in);
        prop_assert_eq!(base_off.exec.pushed_filters, 0);
        prop_assert_eq!(
            base_off.exec.provider_rows_in,
            base_off.exec.provider_rows_out
        );
        // The cross-mode differential: bit-identical targets, identical
        // execution row/object counters.
        if let Some(diff) = base_on.target.deep_eq_report(&base_off.target) {
            prop_assert!(false, "pushdown changed the produced target: {}", diff);
        }
        prop_assert_eq!(base_on.exec.rows_output, base_off.exec.rows_output);
        prop_assert_eq!(base_on.exec.objects_written, base_off.exec.objects_written);

        // Within each mode, the thread matrix changes nothing.
        for threads in [2usize, 4, 8] {
            let on = run(true, threads);
            prop_assert!(on.target == base_on.target,
                "pushdown-on target diverged at {} threads", threads);
            prop_assert!(on.exec == base_on.exec,
                "pushdown-on ExecStats diverged at {} threads", threads);
            let off = run(false, threads);
            prop_assert!(off.target == base_off.target,
                "pushdown-off target diverged at {} threads", threads);
            prop_assert!(off.exec == base_off.exec,
                "pushdown-off ExecStats diverged at {} threads", threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The constraint-checking differential (E12): over generated constrained
    /// sources and random mutation streams — optionally poisoned by a
    /// committed merge-key violation — the incremental batch checker's
    /// violation list is identical (set *and* order) to a full
    /// `check_constraints` rescan after every batch, its certificate replays
    /// cleanly through `recheck`, and both the violations and the *encoded
    /// certificate bytes* are identical at every thread count in {1, 2, 4, 8}
    /// under both planner cost models.
    #[test]
    fn incremental_constraint_checks_match_full_rescans(
        users in 3usize..12,
        profiles in 3usize..16,
        accounts in 2usize..10,
        seed in 0u64..500,
        stream_seed in 0u64..500,
        batches in 1usize..6,
        ops in 1usize..6,
        violate_at in 0usize..8,
    ) {
        use wol_repro::morphase::{
            BatchConstraintMode, MaterializedPipeline, PipelineOptions,
        };
        use wol_repro::wol_engine::{check_constraints, recheck};
        use wol_repro::wol_lang::Clause;
        use wol_repro::workloads::constrained::{self, ConstrainedParams};

        let params = ConstrainedParams { users, profiles, accounts, seed };
        let program = constrained::program();
        let source = constrained::generate_source(&params);
        let mut gen = constrained::ConstrainedGen::new(&source, stream_seed);
        let mut stream = Vec::new();
        for i in 0..batches {
            if i == violate_at {
                // Committed in Report mode: later batches run with S1 as a
                // suspect until the state is repaired (it never is here).
                stream.push(gen.violating_batch());
            }
            stream.push(gen.next_batch(ops));
        }

        // Canonical run: one thread, default cost model, Report mode. After
        // every batch the attached check must agree with a from-scratch
        // rescan of the post-batch source, and its certificate must replay.
        let canonical_options = PipelineOptions {
            batch_constraints: BatchConstraintMode::Report,
            parallelism: cpl::Parallelism::new(1),
            ..PipelineOptions::default()
        };
        let mut canonical =
            MaterializedPipeline::new(&program, vec![source.clone()], canonical_options).unwrap();
        let mut checks = Vec::new();
        for batch in &stream {
            let report = canonical.apply_batch(batch).unwrap();
            let check = report.constraints.expect("report mode attaches a check");
            let clauses: Vec<&Clause> = canonical.constraints().iter().collect();
            let insts = [canonical.source(0).unwrap()];
            let dbs = Databases::new(&insts);
            let oracle = check_constraints(&clauses, &dbs).unwrap();
            prop_assert!(
                check.violations == oracle,
                "incremental violations diverge from the full rescan: {:?} vs {:?}",
                check.violations,
                oracle
            );
            let replay = recheck(&check.certificate, &clauses, &dbs).unwrap();
            prop_assert_eq!(replay.violations as u64, check.certificate.violation_count());
            checks.push(check);
        }
        let canonical_stats = canonical.stats().clone();

        for cost_model in [cpl::CostModel::Histogram, cpl::CostModel::FlatNdv] {
            for threads in [1usize, 2, 4, 8] {
                let options = PipelineOptions {
                    batch_constraints: BatchConstraintMode::Report,
                    parallelism: cpl::Parallelism::new(threads),
                    cost_model,
                    ..PipelineOptions::default()
                };
                let mut pipeline =
                    MaterializedPipeline::new(&program, vec![source.clone()], options).unwrap();
                for (i, batch) in stream.iter().enumerate() {
                    let report = pipeline.apply_batch(batch).unwrap();
                    let check = report.constraints.expect("report mode attaches a check");
                    prop_assert!(
                        check.violations == checks[i].violations,
                        "violations diverged at {} threads / {:?}",
                        threads,
                        cost_model
                    );
                    prop_assert!(
                        check.certificate.encode() == checks[i].certificate.encode(),
                        "certificate bytes diverged at {} threads / {:?}",
                        threads,
                        cost_model
                    );
                }
                let stats = pipeline.stats();
                prop_assert_eq!(stats.constraints_checked, canonical_stats.constraints_checked);
                prop_assert_eq!(stats.constraints_skipped, canonical_stats.constraints_skipped);
                prop_assert_eq!(stats.constraint_objects, canonical_stats.constraint_objects);
                prop_assert_eq!(stats.constraint_probes, canonical_stats.constraint_probes);
                prop_assert_eq!(
                    stats.constraint_violations,
                    canonical_stats.constraint_violations
                );
                prop_assert_eq!(stats.rejected_batches, 0u64);
            }
        }
    }
}
