//! E11: sustained mutation traffic over the genome warehouse.
//!
//! The maintenance experiments need *streams* of mutation batches, not single
//! instances: a deterministic, seeded generator that keeps producing
//! well-formed [`MutationBatch`]es against a [`genome`](crate::genome)-shaped
//! source as it evolves. [`TrafficGen`] owns a shadow copy of the source that
//! it advances batch by batch, so every generated operation is valid against
//! the state the consumer's pipeline is in when the batch arrives (victims of
//! updates and removals exist; duplicate-key inserts duplicate a *live*
//! object).
//!
//! The operation mix is weighted ([`TrafficWeights`]); two presets matter:
//!
//! * [`TrafficWeights::in_place`] — inserts and position updates only, the
//!   traffic an incremental maintainer absorbs without rebuilding; used by
//!   the E11 bench's steady-state phase and the perf-regression guard.
//! * [`TrafficWeights::mixed`] — adds duplicate Skolem keys (two source
//!   markers with the same name feeding one warehouse object), attribute
//!   updates on referenced clones (foreign-read churn), removals and renames
//!   of minted keys (rebuild escalations); used by the differential and soak
//!   suites to hit every maintenance path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wol_model::{ClassName, Instance, MutationBatch, Oid, Value};

/// Relative operation weights; a weight of zero disables the operation.
#[derive(Clone, Copy, Debug)]
pub struct TrafficWeights {
    /// Insert a fresh `CloneS` with a new name.
    pub insert_clone: u32,
    /// Insert a fresh `MarkerS` with a new name (maybe position, clone ref).
    pub insert_marker: u32,
    /// Re-insert an existing `MarkerS` value verbatim: a duplicate Skolem
    /// key whose contributions agree with the original's.
    pub duplicate_marker: u32,
    /// Update an existing marker's `position`.
    pub update_position: u32,
    /// Update an existing clone's `length` (a foreign read of `G7`).
    pub update_clone: u32,
    /// Remove an existing marker (displaces its warehouse mint).
    pub remove_marker: u32,
    /// Rename an existing clone (moves its Skolem key).
    pub rename_clone: u32,
}

impl TrafficWeights {
    /// Traffic an incremental maintainer absorbs in place.
    pub fn in_place() -> TrafficWeights {
        TrafficWeights {
            insert_clone: 1,
            insert_marker: 4,
            duplicate_marker: 0,
            update_position: 5,
            update_clone: 0,
            remove_marker: 0,
            rename_clone: 0,
        }
    }

    /// Every maintenance path, rebuild escalations included.
    pub fn mixed() -> TrafficWeights {
        TrafficWeights {
            insert_clone: 2,
            insert_marker: 6,
            duplicate_marker: 1,
            update_position: 6,
            update_clone: 2,
            remove_marker: 1,
            rename_clone: 1,
        }
    }

    fn total(&self) -> u32 {
        self.insert_clone
            + self.insert_marker
            + self.duplicate_marker
            + self.update_position
            + self.update_clone
            + self.remove_marker
            + self.rename_clone
    }
}

/// Deterministic mutation-stream generator over a genome-shaped source.
pub struct TrafficGen {
    shadow: Instance,
    rng: StdRng,
    weights: TrafficWeights,
    fresh: u64,
    /// Seed-derived tag embedded in generated names, so streams with
    /// distinct seeds over the same source never collide on a Skolem key.
    tag: String,
    clone_s: ClassName,
    marker_s: ClassName,
}

impl TrafficGen {
    /// Start a stream against (a shadow copy of) `source`. The same
    /// `(source, seed, weights)` triple always yields the same batches.
    pub fn new(source: &Instance, seed: u64, weights: TrafficWeights) -> TrafficGen {
        assert!(weights.total() > 0, "all traffic weights are zero");
        TrafficGen {
            shadow: source.clone(),
            rng: StdRng::seed_from_u64(seed),
            weights,
            fresh: 0,
            tag: format!("{seed:x}"),
            clone_s: ClassName::new("CloneS"),
            marker_s: ClassName::new("MarkerS"),
        }
    }

    /// The stream's view of the source after every batch produced so far.
    pub fn shadow(&self) -> &Instance {
        &self.shadow
    }

    /// Produce the next batch of up to `ops` operations and advance the
    /// shadow past it. Operations touching existing objects pick their
    /// victims deterministically; one object (and one marker *name* — the
    /// warehouse key shared by duplicate markers) is touched at most once
    /// per batch, so every batch validates against the pre-batch state and
    /// duplicate-keyed markers always keep agreeing attributes.
    pub fn next_batch(&mut self, ops: usize) -> MutationBatch {
        let mut batch = MutationBatch::new();
        let mut used = BatchGuard::default();
        for _ in 0..ops {
            batch = self.push_op(batch, &mut used);
        }
        self.shadow
            .apply_batch(&batch)
            .expect("generated batch applies to its own shadow");
        batch
    }

    fn push_op(&mut self, batch: MutationBatch, used: &mut BatchGuard) -> MutationBatch {
        let w = self.weights;
        let mut roll = self.rng.gen_range(0..w.total());
        let mut hit = |weight: u32| {
            if roll < weight {
                true
            } else {
                roll -= weight;
                false
            }
        };
        if hit(w.insert_clone) {
            let n = self.next_fresh();
            let mut fields = vec![("name", Value::from(format!("tCln-{}-{n}", self.tag)))];
            if self.rng.gen_bool(0.6) {
                fields.push(("length", Value::int(self.rng.gen_range(10_000..200_000))));
            }
            return batch.insert(self.clone_s.clone(), Value::record(fields));
        }
        if hit(w.insert_marker) {
            let n = self.next_fresh();
            let mut fields = vec![("name", Value::from(format!("tMrk-{}-{n}", self.tag)))];
            if self.rng.gen_bool(0.6) {
                fields.push(("position", Value::int(self.rng.gen_range(0..50_000_000))));
            }
            if self.rng.gen_bool(0.5) {
                if let Some(clone) = self.pick(&self.clone_s.clone(), used) {
                    fields.push(("clone", Value::Oid(clone)));
                }
            }
            return batch.insert(self.marker_s.clone(), Value::record(fields));
        }
        if hit(w.duplicate_marker) {
            if let Some((name, group)) = self.pick_marker_group(used) {
                let value = self.shadow.value(&group[0]).expect("picked live").clone();
                // Guard the name: a later op in this batch must not update
                // one copy of the key without the other, or the duplicates
                // would contribute conflicting attributes.
                used.marker_names.push(name);
                used.oids.extend(group);
                return batch.insert(self.marker_s.clone(), value);
            }
            return batch;
        }
        if hit(w.update_position) {
            if let Some((name, group)) = self.pick_marker_group(used) {
                // Duplicate-keyed markers feed one warehouse object, so a
                // position update must move every holder of the name alike.
                let position = Value::int(self.rng.gen_range(0..50_000_000));
                let mut updated = batch;
                for oid in &group {
                    let mut value = self.shadow.value(oid).expect("picked live").clone();
                    if let Value::Record(fields) = &mut value {
                        fields.insert("position".into(), position.clone());
                    }
                    updated = updated.update(oid.clone(), value);
                }
                used.marker_names.push(name);
                used.oids.extend(group);
                return updated;
            }
            return batch;
        }
        if hit(w.update_clone) {
            if let Some(victim) = self.pick_unused(&self.clone_s.clone(), used) {
                let mut value = self.shadow.value(&victim).expect("picked live").clone();
                if let Value::Record(fields) = &mut value {
                    fields.insert(
                        "length".into(),
                        Value::int(self.rng.gen_range(10_000..200_000)),
                    );
                }
                used.oids.push(victim.clone());
                return batch.update(victim, value);
            }
            return batch;
        }
        if hit(w.remove_marker) {
            // Removing one holder of a duplicated name is safe (the
            // survivors still agree); the name guard only has to prevent a
            // same-batch divergence of the remaining copies.
            if let Some((name, group)) = self.pick_marker_group(used) {
                let victim = group[0].clone();
                used.marker_names.push(name);
                used.oids.push(victim.clone());
                return batch.remove(victim);
            }
            return batch;
        }
        // Rename a clone: move its Skolem key.
        if let Some(victim) = self.pick_unused(&self.clone_s.clone(), used) {
            let n = self.next_fresh();
            let mut value = self.shadow.value(&victim).expect("picked live").clone();
            if let Value::Record(fields) = &mut value {
                fields.insert("name".into(), Value::from(format!("tRen-{}-{n}", self.tag)));
            }
            used.oids.push(victim.clone());
            return batch.update(victim, value);
        }
        batch
    }

    fn next_fresh(&mut self) -> u64 {
        self.fresh += 1;
        self.fresh
    }

    /// A deterministic pick from the class extent, victims already mutated
    /// this batch included (safe for reads: clone refs).
    fn pick(&mut self, class: &ClassName, _used: &BatchGuard) -> Option<Oid> {
        let count = self.shadow.extent_size(class);
        if count == 0 {
            return None;
        }
        let index = self.rng.gen_range(0..count);
        self.shadow.extent(class).nth(index).cloned()
    }

    /// A deterministic pick excluding objects already mutated this batch, so
    /// the batch never updates or removes the same victim twice.
    fn pick_unused(&mut self, class: &ClassName, used: &BatchGuard) -> Option<Oid> {
        let candidates: Vec<&Oid> = self
            .shadow
            .extent(class)
            .filter(|oid| !used.oids.contains(oid))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let index = self.rng.gen_range(0..candidates.len());
        Some(candidates[index].clone())
    }

    /// Pick an untouched marker *name* and return every live holder of it.
    /// Duplicate-keyed markers share a warehouse object, so mutations are
    /// planned per name group, never per lone copy.
    fn pick_marker_group(&mut self, used: &BatchGuard) -> Option<(String, Vec<Oid>)> {
        let class = self.marker_s.clone();
        let named: Vec<(String, Oid)> = self
            .shadow
            .objects(&class)
            .filter_map(|(oid, value)| match value.project("name") {
                Some(Value::Str(name)) => Some((name.clone(), oid.clone())),
                _ => None,
            })
            .collect();
        let candidates: Vec<&(String, Oid)> = named
            .iter()
            .filter(|(name, oid)| !used.marker_names.contains(name) && !used.oids.contains(oid))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let (name, _) = candidates[self.rng.gen_range(0..candidates.len())].clone();
        let group: Vec<Oid> = named
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, oid)| oid.clone())
            .collect();
        Some((name, group))
    }
}

/// Per-batch mutation guards: objects touched, and marker names whose copies
/// must not diverge within the batch.
#[derive(Default)]
struct BatchGuard {
    oids: Vec<Oid>,
    marker_names: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{self, GenomeParams};

    #[test]
    fn streams_are_deterministic() {
        let source = genome::generate_source(&GenomeParams::default());
        let mut a = TrafficGen::new(&source, 7, TrafficWeights::mixed());
        let mut b = TrafficGen::new(&source, 7, TrafficWeights::mixed());
        for _ in 0..20 {
            assert_eq!(a.next_batch(5).ops, b.next_batch(5).ops);
        }
        assert!(a.shadow().deep_eq_report(b.shadow()).is_none());
    }

    #[test]
    fn batches_apply_cleanly_to_an_independent_copy() {
        let source = genome::generate_source(&GenomeParams::default());
        let mut external = source.clone();
        let mut gen = TrafficGen::new(&source, 3, TrafficWeights::mixed());
        for _ in 0..50 {
            let batch = gen.next_batch(4);
            external.apply_batch(&batch).expect("batch is well-formed");
        }
        assert!(external.deep_eq_report(gen.shadow()).is_none());
    }

    #[test]
    fn in_place_preset_never_stales_clone_keys() {
        let source = genome::generate_source(&GenomeParams::default());
        let clone_s = ClassName::new("CloneS");
        let before: Vec<Oid> = source.extent(&clone_s).cloned().collect();
        let mut gen = TrafficGen::new(&source, 11, TrafficWeights::in_place());
        for _ in 0..30 {
            gen.next_batch(6);
        }
        // Every pre-existing clone survives with its original value: the
        // in-place preset only appends and touches marker positions.
        for oid in &before {
            assert_eq!(gen.shadow().value(oid), source.value(oid));
        }
    }
}
