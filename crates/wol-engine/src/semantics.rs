//! Naive (direct) and semi-naive evaluation of transformation programs.
//!
//! Section 5 opens: "Implementing a transformation directly using clauses such
//! as (T1), (T2) and (T3) would be inefficient: to infer the structure of a
//! single object we would have to apply multiple clauses ... Further, since
//! some of the transformation clauses involve target classes and objects in
//! their bodies, we would have to apply the clauses recursively."
//!
//! This module implements that direct fixpoint strategy: clauses are applied
//! repeatedly against the source databases *and* the target built so far,
//! until a fixpoint is reached. It serves two purposes: it is the reference
//! semantics the normalised/compiled execution path is tested against, and it
//! is the baseline that benchmark E4 compares single-pass execution with.
//!
//! Two refinements over the textbook strategy are available through
//! [`NaiveOptions`] (both on by default):
//!
//! * **indexed matching** — clause bodies are matched with the plan-based
//!   indexed matcher ([`crate::env::match_body`]) instead of the naive
//!   generate-and-test reference matcher;
//! * **semi-naive passes** — after the first full pass, clauses that read
//!   only source classes are never re-run (their matches cannot change), and
//!   clauses that read target classes are re-matched only against bindings
//!   that touch the previous pass's *delta* (the target objects created or
//!   updated in that pass). Because attribute values can also be reached
//!   through projection chains that the delta restriction does not see, a
//!   fixpoint is only declared after one unrestricted pass confirms that
//!   nothing changes.

use std::collections::{BTreeMap, BTreeSet};

use wol_lang::ast::{Atom, Term, Var};
use wol_lang::program::Program;
use wol_lang::typecheck::check_clause_types;
use wol_model::{chunk_ranges, ClassName, Instance, Label, Oid, Parallelism, SkolemFactory, Value};

use crate::constraints::{extract_object_keys, ObjectKey};
use crate::env::{
    eval_skolem_key, eval_term, match_body_partitioned, match_body_reference, Bindings, Databases,
    MatchStats,
};
use crate::error::EngineError;
use crate::headform::{analyze_head, HeadAnalysis};
use crate::Result;

/// Options for the naive evaluator.
#[derive(Clone, Copy, Debug)]
pub struct NaiveOptions {
    /// Maximum number of passes over the clause set before giving up.
    pub max_passes: usize,
    /// Use semi-naive delta passes after the first full pass. Turning this
    /// off re-runs every clause unrestricted in every pass (the paper's
    /// "apply the clauses recursively" strategy).
    pub semi_naive: bool,
    /// Match clause bodies with the indexed plan-based matcher. Turning this
    /// off uses the naive generate-and-test reference matcher, the pre-index
    /// baseline the benchmarks compare against.
    pub use_indexed_matching: bool,
    /// Worker threads for partitioned body matching and the semi-naive delta
    /// passes. Defaults to the environment ([`Parallelism::from_env`]:
    /// available cores, overridable via `WOL_THREADS`). Parallelism never
    /// changes the produced target — Skolem-bearing clause bodies pin
    /// themselves to the sequential path, and delta matches are collected
    /// into an ordered set before updates apply.
    pub parallelism: Parallelism,
}

impl Default for NaiveOptions {
    fn default() -> Self {
        NaiveOptions {
            max_passes: 64,
            semi_naive: true,
            use_indexed_matching: true,
            parallelism: Parallelism::from_env(),
        }
    }
}

/// Statistics about a naive evaluation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NaiveReport {
    /// Number of passes over the clause set until the fixpoint.
    pub passes: usize,
    /// Candidate bindings enumerated by body matching across all passes.
    pub bindings_considered: usize,
    /// Full extent enumerations performed by body matching.
    pub extents_scanned: usize,
    /// Attribute-index probes performed by body matching.
    pub index_probes: usize,
    /// Clause evaluations skipped entirely by the semi-naive strategy.
    pub clauses_skipped: usize,
}

/// A transformation clause, pre-analysed for the pass loop.
struct AnalysedClause {
    analysis: HeadAnalysis,
    body: Vec<Atom>,
    /// `Member(Var v, C)` body atoms over target classes: the hooks the
    /// semi-naive delta restriction attaches to.
    target_member_vars: Vec<(Var, ClassName)>,
    /// Whether the body mentions any target class at all.
    reads_target: bool,
}

/// Match one clause body, honouring the matcher choice. The indexed matcher
/// partitions its extent scan over `parallelism` workers; the reference
/// matcher is the sequential baseline and ignores the knob.
fn match_clause_body(
    body: &[Atom],
    dbs: &Databases<'_>,
    factory: &mut SkolemFactory,
    initial: Bindings,
    indexed: bool,
    stats: &mut MatchStats,
    parallelism: Parallelism,
) -> Result<Vec<Bindings>> {
    if indexed {
        match_body_partitioned(body, dbs, factory, initial, stats, parallelism)
    } else {
        match_body_reference(body, dbs, factory, initial, stats)
    }
}

/// Apply the program's transformation clauses directly, repeatedly, until the
/// target instance stops changing. Returns the target and run statistics.
pub fn naive_transform_with_report(
    program: &Program,
    sources: &[&Instance],
    target_name: &str,
    options: &NaiveOptions,
) -> Result<(Instance, NaiveReport)> {
    let schemas = program.schemas();
    let target_classes = program.target_classes();
    let target_constraints: Vec<_> = program
        .target_constraints()
        .into_iter()
        .map(|(_, c)| c)
        .collect();
    let keys = extract_object_keys(&target_constraints);

    // Pre-analyse every transformation clause.
    let mut analysed: Vec<AnalysedClause> = Vec::new();
    for (_, clause) in program.transformation_clauses() {
        let env = check_clause_types(clause, &schemas)?;
        let analysis = analyze_head(clause, &env, &target_classes)?;
        let target_member_vars = clause
            .body
            .iter()
            .filter_map(|atom| match atom {
                Atom::Member(Term::Var(v), class) if target_classes.contains(class) => {
                    Some((v.clone(), class.clone()))
                }
                _ => None,
            })
            .collect();
        let reads_target = clause
            .body_classes()
            .iter()
            .any(|c| target_classes.contains(c));
        analysed.push(AnalysedClause {
            analysis,
            body: clause.body.clone(),
            target_member_vars,
            reads_target,
        });
    }

    let mut factory = SkolemFactory::new();
    let mut target = Instance::new(target_name);
    let mut report = NaiveReport::default();
    let mut stats = MatchStats::default();

    // The delta: target objects created or updated in the previous pass.
    let mut delta: BTreeSet<Oid> = BTreeSet::new();
    // Whether the next pass must run unrestricted (the first pass always
    // does; so does the certification pass after a delta pass goes quiet).
    let mut run_full = true;

    let mut pass = 0usize;
    while pass < options.max_passes {
        pass += 1;
        report.passes = pass;
        let full_pass = run_full || !options.semi_naive;
        let mut pass_delta: BTreeSet<Oid> = BTreeSet::new();
        // Each pass evaluates every clause against the target as it stood at
        // the *start* of the pass (the clause-at-a-time recursive application
        // the paper describes); updates become visible in the next pass.
        let snapshot = target.clone();
        for clause in &analysed {
            // Gather the updates with an immutable view of the target, then apply.
            let updates = {
                let mut all: Vec<&Instance> = sources.to_vec();
                all.push(&snapshot);
                let dbs = Databases::new(&all);
                let bindings: Vec<Bindings> = if full_pass {
                    match_clause_body(
                        &clause.body,
                        &dbs,
                        &mut factory,
                        Bindings::new(),
                        options.use_indexed_matching,
                        &mut stats,
                        options.parallelism,
                    )?
                } else if !clause.reads_target {
                    // A source-only clause matches exactly what it matched in
                    // the first pass; its updates are already applied.
                    report.clauses_skipped += 1;
                    continue;
                } else if clause.target_member_vars.is_empty() {
                    // Reads the target, but not through a plain variable
                    // membership the delta restriction can attach to: fall
                    // back to an unrestricted match.
                    match_clause_body(
                        &clause.body,
                        &dbs,
                        &mut factory,
                        Bindings::new(),
                        options.use_indexed_matching,
                        &mut stats,
                        options.parallelism,
                    )?
                } else {
                    // Semi-naive: only bindings in which at least one target
                    // membership variable is bound to a delta object can be
                    // new. Seed each target membership variable with each
                    // delta object of its class and take the union. The
                    // per-seed matches are independent read-only queries, so
                    // they run over scoped workers (each with its own binding
                    // frame) when the clause body is Skolem-free; the union
                    // is an ordered set, so the merge order cannot matter.
                    let mut seeds: Vec<(Var, Oid)> = Vec::new();
                    for (var, class) in &clause.target_member_vars {
                        for oid in delta.iter().filter(|oid| oid.class() == class) {
                            seeds.push((var.clone(), oid.clone()));
                        }
                    }
                    let collected = match_delta_seeds(
                        &clause.body,
                        &dbs,
                        &mut factory,
                        seeds,
                        options,
                        &mut stats,
                    )?;
                    collected.into_iter().collect()
                };
                let mut updates: Vec<(Oid, Label, Value)> = Vec::new();
                let mut creations: Vec<Oid> = Vec::new();
                for binding in &bindings {
                    for object in &clause.analysis.objects {
                        let oid = identify_object(object, binding, &dbs, &keys, &mut factory)?;
                        let Some(oid) = oid else { continue };
                        if object.member_in_head {
                            creations.push(oid.clone());
                        }
                        for (label, term) in &object.attrs {
                            let value = eval_term(term, binding, &dbs, &mut factory)?;
                            updates.push((oid.clone(), label.clone(), value));
                        }
                    }
                }
                (creations, updates)
            };
            let (creations, updates) = updates;
            for oid in creations {
                if !target.contains(&oid) {
                    target.insert(oid.clone(), Value::Record(BTreeMap::new()))?;
                    pass_delta.insert(oid);
                }
            }
            for (oid, label, value) in updates {
                if !target.contains(&oid) {
                    target.insert(oid.clone(), Value::Record(BTreeMap::new()))?;
                    pass_delta.insert(oid.clone());
                }
                let existing = target.value(&oid).expect("just ensured").clone();
                let Value::Record(mut fields) = existing else {
                    return Err(EngineError::Invalid(format!(
                        "target object {oid} does not hold a record value"
                    )));
                };
                match fields.get(&label) {
                    Some(previous) if previous == &value => {}
                    Some(previous) => {
                        return Err(EngineError::Invalid(format!(
                            "ambiguous transformation: {oid}.{label} receives both {} and {}",
                            wol_model::display::render_value(previous),
                            wol_model::display::render_value(&value)
                        )))
                    }
                    None => {
                        fields.insert(label.clone(), value);
                        target.update(&oid, Value::Record(fields))?;
                        pass_delta.insert(oid.clone());
                    }
                }
            }
        }
        if pass_delta.is_empty() {
            if full_pass {
                // An unrestricted pass changed nothing: certified fixpoint.
                break;
            }
            // The delta pass went quiet, but delta restriction can miss
            // bindings reached through projection chains; certify with one
            // unrestricted pass.
            run_full = true;
            delta.clear();
        } else {
            run_full = false;
            delta = pass_delta;
        }
    }
    report.extents_scanned = stats.extents_scanned;
    report.index_probes = stats.index_probes;
    report.bindings_considered = stats.bindings_considered;
    Ok((target, report))
}

/// Match one clause body once per delta seed and take the union. Runs the
/// seeds over contiguous chunks on the persistent [`wol_model::WorkerPool`]
/// when the options allow it (a worker budget above one, at least two seeds,
/// the indexed matcher, and a Skolem-free body — Skolem terms would mutate
/// the shared factory in first-call order); otherwise matches the seeds
/// sequentially. Either way the result is an ordered set, so the produced
/// fixpoint is identical.
fn match_delta_seeds(
    body: &[Atom],
    dbs: &Databases<'_>,
    factory: &mut SkolemFactory,
    seeds: Vec<(Var, Oid)>,
    options: &NaiveOptions,
    stats: &mut MatchStats,
) -> Result<BTreeSet<Bindings>> {
    let threads = options.parallelism.threads();
    let parallel_ok = threads > 1
        && seeds.len() >= 2
        && options.use_indexed_matching
        && !body.iter().any(crate::env::atom_contains_skolem);
    if !parallel_ok {
        let mut collected = BTreeSet::new();
        for (var, oid) in seeds {
            let initial = Bindings::from([(var, Value::Oid(oid))]);
            collected.extend(match_clause_body(
                body,
                dbs,
                factory,
                initial,
                options.use_indexed_matching,
                stats,
                Parallelism::sequential(),
            )?);
        }
        return Ok(collected);
    }
    let seeds = &seeds;
    let pool = wol_model::WorkerPool::shared(options.parallelism);
    let jobs: Vec<wol_model::Job<'_, (MatchStats, Result<Vec<Bindings>>)>> =
        chunk_ranges(seeds.len(), threads)
            .into_iter()
            .map(|range| {
                Box::new(move || {
                    // Fresh factory per worker: sound because Skolem-bearing
                    // bodies never get here.
                    let mut worker_factory = SkolemFactory::new();
                    let mut worker_stats = MatchStats::default();
                    let mut out = Vec::new();
                    let result = (|| {
                        for (var, oid) in &seeds[range] {
                            let initial = Bindings::from([(var.clone(), Value::Oid(oid.clone()))]);
                            out.extend(match_body_partitioned(
                                body,
                                dbs,
                                &mut worker_factory,
                                initial,
                                &mut worker_stats,
                                Parallelism::sequential(),
                            )?);
                        }
                        Ok(())
                    })();
                    (worker_stats, result.map(|()| out))
                }) as wol_model::Job<'_, _>
            })
            .collect();
    let outcomes = pool.scope(jobs);
    let mut collected = BTreeSet::new();
    let mut first_err = None;
    for (worker_stats, result) in outcomes {
        stats.absorb(worker_stats);
        match result {
            Ok(bindings) => collected.extend(bindings),
            Err(err) => first_err = first_err.or(Some(err)),
        }
    }
    match first_err {
        Some(err) => Err(err),
        None => Ok(collected),
    }
}

/// Convenience wrapper returning only the target instance.
pub fn naive_transform(
    program: &Program,
    sources: &[&Instance],
    target_name: &str,
) -> Result<Instance> {
    naive_transform_with_report(program, sources, target_name, &NaiveOptions::default())
        .map(|(instance, _)| instance)
}

/// Determine the identity of a head object under a binding: a body-bound
/// object variable, an explicit Skolem key, or a key derived from the object's
/// key attributes. Returns `None` if the clause cannot determine the object
/// for this binding (incomplete description).
fn identify_object(
    object: &crate::headform::HeadObject,
    binding: &Bindings,
    dbs: &Databases<'_>,
    keys: &BTreeMap<wol_model::ClassName, ObjectKey>,
    factory: &mut SkolemFactory,
) -> Result<Option<Oid>> {
    // Bound by the body?
    if let Some(value) = binding.get(&object.var) {
        return match value {
            Value::Oid(oid) => Ok(Some(oid.clone())),
            other => Err(EngineError::Eval(format!(
                "head object variable {} is bound to a non-object value of kind `{}`",
                object.var,
                other.kind()
            ))),
        };
    }
    // Explicit Skolem identity?
    if let Some(args) = &object.explicit_key {
        let key = eval_skolem_key(args, binding, dbs, factory)?;
        return Ok(Some(factory.mk(&object.class, &key)));
    }
    // Key derived from the class's key constraint and the head's attributes.
    if let Some(object_key) = keys.get(&object.class) {
        let mut parts = BTreeMap::new();
        for (label, path) in &object_key.parts {
            if path.len() != 1 {
                return Ok(None);
            }
            let attr = &path.segments()[0];
            let Some(term) = object.attrs.get(attr) else {
                return Ok(None);
            };
            parts.insert(label.clone(), eval_term(term, binding, dbs, factory)?);
        }
        let key = Value::Record(parts);
        return Ok(Some(factory.mk(&object.class, &key)));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_lang::program::{Program, SchemaBinding};
    use wol_model::{ClassName, Schema, Type};

    fn euro_schema() -> Schema {
        Schema::new("euro")
            .with_class(
                "CityE",
                Type::record([
                    ("name", Type::str()),
                    ("is_capital", Type::bool()),
                    ("country", Type::class("CountryE")),
                ]),
            )
            .with_class(
                "CountryE",
                Type::record([
                    ("name", Type::str()),
                    ("language", Type::str()),
                    ("currency", Type::str()),
                ]),
            )
    }

    fn target_schema() -> Schema {
        Schema::new("target")
            .with_class(
                "CityT",
                Type::record([
                    ("name", Type::str()),
                    (
                        "place",
                        Type::variant([("euro_city", Type::class("CountryT"))]),
                    ),
                ]),
            )
            .with_class(
                "CountryT",
                Type::record([
                    ("name", Type::str()),
                    ("language", Type::str()),
                    ("currency", Type::str()),
                    ("capital", Type::optional(Type::class("CityT"))),
                ]),
            )
    }

    fn cities_program() -> Program {
        Program::new(
            "euro_to_target",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            "T1: X in CountryT, X.name = E.name, X.language = E.language, X.currency = E.currency \
                 <= E in CountryE;\n\
             T2: Y in CityT, Y.name = E.name, Y.place = ins_euro_city(X) \
                 <= E in CityE, X in CountryT, X.name = E.country.name;\n\
             T3: X.capital = Y \
                 <= X in CountryT, Y in CityT, Y.place = ins_euro_city(X), \
                    E in CityE, E.name = Y.name, E.country.name = X.name, E.is_capital = true;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;\n\
             C2: X = Mk_CityT(name = N, place = P) <= X in CityT, N = X.name, P = X.place;",
        )
    }

    fn euro_instance() -> Instance {
        let mut inst = Instance::new("euro");
        let uk = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("United Kingdom")),
                ("language", Value::str("English")),
                ("currency", Value::str("sterling")),
            ]),
        );
        let fr = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("France")),
                ("language", Value::str("French")),
                ("currency", Value::str("franc")),
            ]),
        );
        for (name, capital, country) in [
            ("London", true, &uk),
            ("Manchester", false, &uk),
            ("Paris", true, &fr),
        ] {
            inst.insert_fresh(
                &ClassName::new("CityE"),
                Value::record([
                    ("name", Value::str(name)),
                    ("is_capital", Value::bool(capital)),
                    ("country", Value::oid(country.clone())),
                ]),
            );
        }
        inst
    }

    #[test]
    fn naive_evaluation_reaches_the_paper_target() {
        let program = cities_program();
        let source = euro_instance();
        let (target, report) = naive_transform_with_report(
            &program,
            &[&source][..],
            "target",
            &NaiveOptions::default(),
        )
        .unwrap();
        assert_eq!(target.extent_size(&ClassName::new("CountryT")), 2);
        assert_eq!(target.extent_size(&ClassName::new("CityT")), 3);
        // Multiple passes were needed: T2 depends on T1's output and T3 on both
        // (plus a final pass that detects the fixpoint).
        assert!(
            report.passes >= 4,
            "expected several passes, got {}",
            report.passes
        );
        assert!(report.bindings_considered > 0);

        let france = target
            .find_by_field(&ClassName::new("CountryT"), "name", &Value::str("France"))
            .unwrap();
        let capital = target.value(france).unwrap().project("capital").cloned();
        let capital_oid = capital
            .and_then(|v| v.as_oid().cloned())
            .expect("France has a capital");
        assert_eq!(
            target.value(&capital_oid).unwrap().project("name"),
            Some(&Value::str("Paris"))
        );
    }

    #[test]
    fn naive_and_normalized_execution_agree() {
        let program = cities_program();
        let source = euro_instance();
        let naive = naive_transform(&program, &[&source][..], "target").unwrap();
        let normal =
            crate::normalize::normalize(&program, &crate::normalize::NormalizeOptions::default())
                .unwrap();
        let compiled = crate::normalize::execute(&normal, &[&source][..], "target").unwrap();
        for class in ["CountryT", "CityT"] {
            assert_eq!(
                naive.extent_size(&ClassName::new(class)),
                compiled.extent_size(&ClassName::new(class)),
                "extent sizes differ for {class}"
            );
        }
        // Compare the multisets of country descriptions (names + currencies).
        let describe = |inst: &Instance| {
            let mut v: Vec<(Value, Value)> = inst
                .objects(&ClassName::new("CountryT"))
                .map(|(_, value)| {
                    (
                        value.project("name").cloned().unwrap(),
                        value.project("currency").cloned().unwrap(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(describe(&naive), describe(&compiled));
    }

    #[test]
    fn clause_without_key_attributes_is_skipped_not_fatal() {
        // A clause that cannot determine its object's key contributes nothing.
        let program = Program::new(
            "p",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            "T: X in CountryT, X.language = L <= Y in CountryE, Y.language = L;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;",
        );
        let source = euro_instance();
        let target = naive_transform(&program, &[&source][..], "t").unwrap();
        assert_eq!(target.extent_size(&ClassName::new("CountryT")), 0);
    }

    #[test]
    fn fixpoint_terminates_on_empty_sources() {
        let program = cities_program();
        let source = Instance::new("euro");
        let (target, report) =
            naive_transform_with_report(&program, &[&source][..], "t", &NaiveOptions::default())
                .unwrap();
        assert!(target.is_empty());
        assert_eq!(report.passes, 1);
    }

    #[test]
    fn conflicting_updates_detected() {
        let program = Program::new(
            "conflict",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::new(target_schema()),
        )
        .with_text(
            "T1: X in CountryT, X.name = E.name, X.currency = E.currency <= E in CountryE;\n\
             T2: X in CountryT, X.name = E.name, X.currency = \"euro\" <= E in CountryE;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;",
        );
        let source = euro_instance();
        let err = naive_transform(&program, &[&source][..], "t").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn semi_naive_and_full_fixpoint_agree() {
        let program = cities_program();
        let source = euro_instance();
        let semi = NaiveOptions::default();
        let full = NaiveOptions {
            semi_naive: false,
            ..NaiveOptions::default()
        };
        let (a, semi_report) =
            naive_transform_with_report(&program, &[&source][..], "target", &semi).unwrap();
        let (b, full_report) =
            naive_transform_with_report(&program, &[&source][..], "target", &full).unwrap();
        assert_eq!(a, b);
        // The semi-naive run skipped the source-only clause in later passes.
        // (On an instance this small the delta bookkeeping can outweigh the
        // saved matching; the asymptotic win is asserted by the regression
        // test over the generated workloads.)
        assert!(semi_report.clauses_skipped > 0);
        assert!(full_report.clauses_skipped == 0);
        assert!(semi_report.passes >= 4);
    }

    #[test]
    fn indexed_and_reference_matching_agree_under_naive_evaluation() {
        let program = cities_program();
        let source = euro_instance();
        let indexed = NaiveOptions::default();
        let reference = NaiveOptions {
            use_indexed_matching: false,
            semi_naive: false,
            ..NaiveOptions::default()
        };
        let (a, indexed_report) =
            naive_transform_with_report(&program, &[&source][..], "target", &indexed).unwrap();
        let (b, reference_report) =
            naive_transform_with_report(&program, &[&source][..], "target", &reference).unwrap();
        assert_eq!(a, b);
        assert!(indexed_report.index_probes > 0);
        assert_eq!(reference_report.index_probes, 0);
        assert!(indexed_report.extents_scanned <= reference_report.extents_scanned);
        assert!(indexed_report.bindings_considered <= reference_report.bindings_considered);
    }

    /// The parallel fixpoint (partitioned matching + parallel delta passes)
    /// produces the *identical* target instance — same identities, same
    /// values — and the same match statistics as the sequential fixpoint, at
    /// every thread count.
    #[test]
    fn parallel_fixpoint_is_bit_identical_to_sequential() {
        let program = cities_program();
        let source = euro_instance();
        let sequential_options = NaiveOptions {
            parallelism: Parallelism::sequential(),
            ..NaiveOptions::default()
        };
        let (sequential, sequential_report) =
            naive_transform_with_report(&program, &[&source][..], "target", &sequential_options)
                .unwrap();
        for threads in [2, 4, 8] {
            let options = NaiveOptions {
                parallelism: Parallelism::new(threads),
                ..NaiveOptions::default()
            };
            let (parallel, report) =
                naive_transform_with_report(&program, &[&source][..], "target", &options).unwrap();
            assert_eq!(parallel, sequential, "target diverged at {threads} threads");
            assert_eq!(
                report, sequential_report,
                "report diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn max_passes_caps_runaway_programs() {
        let program = cities_program();
        let source = euro_instance();
        let options = NaiveOptions {
            max_passes: 1,
            ..NaiveOptions::default()
        };
        let (target, report) =
            naive_transform_with_report(&program, &[&source][..], "t", &options).unwrap();
        assert_eq!(report.passes, 1);
        // After a single pass the capital attribute cannot have been filled in.
        let france =
            target.find_by_field(&ClassName::new("CountryT"), "name", &Value::str("France"));
        if let Some(fr) = france {
            assert_eq!(target.value(fr).unwrap().project("capital"), None);
        }
    }
}
