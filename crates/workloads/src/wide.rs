//! The wide-record family W(n, k): the knob behind the compile-time
//! experiments E1 and E2.
//!
//! The paper's genome schemas have records with "tens of fields", and target
//! objects are described piecemeal by several partial clauses. `W(n, k)` is a
//! synthetic version of that: a source class `Wide` and a target class `Tgt`
//! with `n` data attributes each; the transformation is written either as one
//! already-normal-form clause per class, or split into `k` partial clauses
//! (each defining a contiguous chunk of the attributes), with or without the
//! key constraint that lets the normaliser merge them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wol_lang::program::{Program, SchemaBinding};
use wol_model::{ClassName, Instance, Schema, Type, Value};

/// The name of the i-th data attribute.
pub fn attr(i: usize) -> String {
    format!("f{i}")
}

/// The source schema: `Wide(name, f0, ..., f{n-1})`.
pub fn source_schema(n: usize) -> Schema {
    let mut fields = vec![("name".to_string(), Type::str())];
    for i in 0..n {
        fields.push((attr(i), Type::str()));
    }
    Schema::new(format!("wide_source_{n}")).with_class("Wide", Type::Record(fields))
}

/// The target schema: `Tgt(name, f0, ..., f{n-1})` with every data attribute
/// optional (partial clauses need not cover all of them).
pub fn target_schema(n: usize) -> Schema {
    let mut fields = vec![("name".to_string(), Type::str())];
    for i in 0..n {
        fields.push((attr(i), Type::optional(Type::str())));
    }
    Schema::new(format!("wide_target_{n}")).with_class("Tgt", Type::Record(fields))
}

fn key_constraint_text() -> &'static str {
    "K: X = Mk_Tgt(N) <= X in Tgt, N = X.name;\n"
}

/// A program consisting of a single already-normal-form clause copying all `n`
/// attributes, plus the key constraint. This is the "already in normal form"
/// program the paper uses as its compile-time baseline (Section 6).
pub fn normal_form_program(n: usize) -> Program {
    let mut head = String::from("T: X in Tgt, X.name = N");
    let mut body = String::from(" <= S in Wide, S.name = N");
    for i in 0..n {
        head.push_str(&format!(", X.{} = V{i}", attr(i)));
        body.push_str(&format!(", S.{} = V{i}", attr(i)));
    }
    let text = format!("{head}{body};\n{}", key_constraint_text());
    Program::new(
        format!("wide_normal_{n}"),
        vec![SchemaBinding::new(source_schema(n))],
        SchemaBinding::new(target_schema(n)),
    )
    .with_text(&text)
}

/// A program that splits the description of `Tgt` over `k` partial clauses
/// (each covering a contiguous chunk of the `n` attributes), optionally with
/// the key constraint. Without the key constraint the normaliser must consider
/// every combination of the partial clauses — the exponential case of the
/// paper's evaluation.
pub fn partial_program(n: usize, k: usize, with_key: bool) -> Program {
    assert!(k >= 1, "at least one partial clause is required");
    let mut text = String::new();
    let chunk = n.div_ceil(k.max(1));
    for j in 0..k {
        let lo = j * chunk;
        let hi = ((j + 1) * chunk).min(n);
        let mut head = format!("P{j}: X in Tgt, X.name = N");
        let mut body = String::from(" <= S in Wide, S.name = N");
        for i in lo..hi {
            head.push_str(&format!(", X.{} = V{i}", attr(i)));
            body.push_str(&format!(", S.{} = V{i}", attr(i)));
        }
        text.push_str(&format!("{head}{body};\n"));
    }
    if with_key {
        text.push_str(key_constraint_text());
    }
    Program::new(
        format!("wide_partial_{n}_{k}_{with_key}"),
        vec![SchemaBinding::new(source_schema(n))],
        SchemaBinding::new(target_schema(n)),
    )
    .with_text(&text)
}

/// Generate a `Wide` source instance with `rows` objects.
pub fn generate_source(n: usize, rows: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = Instance::new(format!("wide_source_{n}"));
    let class = ClassName::new("Wide");
    for r in 0..rows {
        let mut fields = vec![("name".to_string(), Value::str(format!("row{r}")))];
        for i in 0..n {
            fields.push((
                attr(i),
                Value::str(format!("v{}_{}", i, rng.gen_range(0..1000))),
            ));
        }
        inst.insert_fresh(&class, Value::Record(fields.into_iter().collect()));
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_engine::{execute, normalize, NormalizeOptions};

    #[test]
    fn programs_validate() {
        normal_form_program(6).validate().unwrap();
        partial_program(6, 3, true).validate().unwrap();
        partial_program(6, 3, false).validate().unwrap();
    }

    #[test]
    fn partial_and_normal_form_programs_compute_the_same_target() {
        let n = 8;
        let source = generate_source(n, 5, 3);
        let normal_a = normalize(&normal_form_program(n), &NormalizeOptions::default()).unwrap();
        let normal_b =
            normalize(&partial_program(n, 4, true), &NormalizeOptions::default()).unwrap();
        let a = execute(&normal_a, &[&source][..], "t").unwrap();
        let b = execute(&normal_b, &[&source][..], "t").unwrap();
        assert!(wol_engine::instances_equivalent(&a, &b, 2));
        assert_eq!(a.extent_size(&ClassName::new("Tgt")), 5);
    }

    #[test]
    fn without_keys_the_normal_form_is_exponential_in_k() {
        let n = 8;
        let with_keys =
            normalize(&partial_program(n, 4, true), &NormalizeOptions::default()).unwrap();
        let without_keys = normalize(
            &partial_program(n, 4, false),
            &NormalizeOptions {
                use_target_keys: false,
                ..NormalizeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(with_keys.len(), 4);
        assert_eq!(without_keys.len(), (1 << 4) - 1);
        assert!(without_keys.size() > with_keys.size());
    }

    #[test]
    fn already_normal_form_programs_normalise_to_one_clause() {
        let normal = normalize(&normal_form_program(10), &NormalizeOptions::default()).unwrap();
        assert_eq!(normal.len(), 1);
        assert_eq!(normal.clauses[0].attrs.len(), 11);
    }

    #[test]
    fn chunking_covers_all_attributes() {
        let n = 10;
        let k = 3;
        let normal = normalize(&partial_program(n, k, true), &NormalizeOptions::default()).unwrap();
        let mut covered: std::collections::BTreeSet<String> = Default::default();
        for clause in &normal.clauses {
            covered.extend(clause.attrs.keys().cloned());
        }
        for i in 0..n {
            assert!(
                covered.contains(&attr(i)),
                "attribute {} not covered",
                attr(i)
            );
        }
    }

    #[test]
    fn generated_sources_validate() {
        let n = 6;
        let source = generate_source(n, 4, 9);
        wol_model::validate::check_instance(&source, &source_schema(n)).unwrap();
    }
}
